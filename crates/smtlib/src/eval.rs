//! The golden evaluator: the single source of truth for the *intended*
//! bounded semantics of the supported SMT-LIB fragment.
//!
//! Both simulated solvers in `o4a-solvers` are written against this
//! contract, and the differential oracle in `o4a-core` uses it to re-check
//! models (the paper's `get-model` + re-evaluation step).
//!
//! ## Totalization conventions
//!
//! SMT-LIB leaves several operations under-specified; this crate fixes them
//! so that all components agree (internal consistency is what differential
//! testing needs, not agreement with any particular real solver):
//!
//! | operation | convention |
//! |---|---|
//! | `(div x 0)`, `(/ x 0)` | `0` |
//! | `(mod x 0)` | `x` |
//! | `bvudiv` by zero | all-ones |
//! | `bvurem` by zero | first operand |
//! | `seq.nth` out of range | element-sort default |
//! | `str.at`/`str.substr` out of range | `""` |
//! | `str.to_int` of non-numeral | `-1` |
//! | `set.complement` | only over exhaustible element sorts, else incomplete |
//!
//! ## Quantifier bounding
//!
//! Quantified variables range over *candidate domains* derived from
//! [`DomainConfig`]. A quantifier evaluates to a definite truth value when a
//! witness/counterexample is found, or when the candidate domain provably
//! covers the whole sort ([`Sort::is_exhaustible`]); otherwise evaluation
//! reports [`EvalError::Incomplete`] and solvers answer `unknown`.

use crate::arena::{ANode, TermArena, TermId};
use crate::{
    BitVecValue, EvalError, FiniteFieldValue, Model, Op, Quantifier, Rational, Sort, Symbol, Term,
    Value,
};
use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet};

/// Bounds for candidate domains used in quantifier expansion and model
/// search.
#[derive(Clone, Debug)]
pub struct DomainConfig {
    /// Integers range over `-int_radius ..= int_radius` plus `extra_ints`.
    pub int_radius: i64,
    /// Additional interesting integers (typically constants from the
    /// formula).
    pub extra_ints: Vec<i128>,
    /// Alphabet used to build candidate strings.
    pub str_alphabet: Vec<char>,
    /// Maximum candidate string length.
    pub str_max_len: usize,
    /// Maximum candidate sequence length.
    pub seq_max_len: usize,
    /// Maximum number of candidates per sort.
    pub max_candidates: usize,
    /// Maximum quantifier instantiations per quantifier node.
    pub quant_budget: usize,
}

impl Default for DomainConfig {
    fn default() -> Self {
        DomainConfig {
            int_radius: 3,
            extra_ints: Vec::new(),
            str_alphabet: vec!['a', 'b'],
            str_max_len: 2,
            seq_max_len: 2,
            max_candidates: 64,
            quant_budget: 1024,
        }
    }
}

/// Candidate values for a sort plus whether they cover it exhaustively.
#[derive(Clone, Debug)]
pub struct Candidates {
    /// The candidate values.
    pub values: Vec<Value>,
    /// True when `values` contains *every* inhabitant of the sort.
    pub complete: bool,
}

/// Enumerates candidate values for `sort` under `cfg`.
///
/// Guaranteed non-empty for every supported sort. `complete` is only set
/// when the enumeration provably covers the sort.
pub fn candidates(sort: &Sort, cfg: &DomainConfig) -> Candidates {
    let cap = cfg.max_candidates.max(2);
    match sort {
        Sort::Bool => Candidates {
            values: vec![Value::Bool(false), Value::Bool(true)],
            complete: true,
        },
        Sort::Int => {
            let mut vals: BTreeSet<i128> = (-cfg.int_radius..=cfg.int_radius)
                .map(|i| i as i128)
                .collect();
            vals.extend(cfg.extra_ints.iter().copied());
            Candidates {
                values: vals.into_iter().take(cap).map(Value::Int).collect(),
                complete: false,
            }
        }
        Sort::Real => {
            let mut vals: BTreeSet<Rational> = BTreeSet::new();
            for i in -cfg.int_radius..=cfg.int_radius {
                vals.insert(Rational::from_int(i as i128));
                if let Some(h) = Rational::new(2 * i as i128 + 1, 2) {
                    vals.insert(h);
                }
            }
            for &i in &cfg.extra_ints {
                vals.insert(Rational::from_int(i));
            }
            Candidates {
                values: vals.into_iter().take(cap).map(Value::Real).collect(),
                complete: false,
            }
        }
        Sort::String => {
            let mut vals = vec![String::new()];
            let mut frontier = vec![String::new()];
            for _ in 0..cfg.str_max_len {
                let mut next = Vec::new();
                for base in &frontier {
                    for &c in &cfg.str_alphabet {
                        let mut s = base.clone();
                        s.push(c);
                        next.push(s);
                    }
                }
                vals.extend(next.iter().cloned());
                frontier = next;
                if vals.len() >= cap {
                    break;
                }
            }
            Candidates {
                values: vals.into_iter().take(cap).map(Value::Str).collect(),
                complete: false,
            }
        }
        Sort::BitVec(w) => {
            if *w <= 4 {
                let n = 1u128 << w;
                Candidates {
                    values: (0..n)
                        .map(|b| Value::BitVec(BitVecValue::new(*w, b)))
                        .collect(),
                    complete: true,
                }
            } else {
                let max = if *w >= 128 {
                    u128::MAX
                } else {
                    (1u128 << w) - 1
                };
                let picks: BTreeSet<u128> = [
                    0u128,
                    1,
                    2,
                    3,
                    5,
                    7,
                    max,
                    max - 1,
                    max / 2,
                    1u128 << (w - 1),
                ]
                .into_iter()
                .map(|b| b & max)
                .collect();
                Candidates {
                    values: picks
                        .into_iter()
                        .take(cap)
                        .map(|b| Value::BitVec(BitVecValue::new(*w, b)))
                        .collect(),
                    complete: false,
                }
            }
        }
        Sort::FiniteField(p) => {
            if *p <= 11 {
                Candidates {
                    values: (0..*p)
                        .map(|v| Value::FiniteField(FiniteFieldValue::new(*p, v as i128)))
                        .collect(),
                    complete: true,
                }
            } else {
                let picks: BTreeSet<u64> = [0, 1, 2, p / 2, p - 1].into_iter().collect();
                Candidates {
                    values: picks
                        .into_iter()
                        .take(cap)
                        .map(|v| Value::FiniteField(FiniteFieldValue::new(*p, v as i128)))
                        .collect(),
                    complete: false,
                }
            }
        }
        Sort::Seq(e) => {
            let elems = candidates(e, cfg);
            let mut vals = vec![Value::Seq((**e).clone(), Vec::new())];
            for v in elems.values.iter().take(4) {
                vals.push(Value::Seq((**e).clone(), vec![v.clone()]));
            }
            for a in elems.values.iter().take(2) {
                for b in elems.values.iter().take(2) {
                    if cfg.seq_max_len >= 2 {
                        vals.push(Value::Seq((**e).clone(), vec![a.clone(), b.clone()]));
                    }
                }
            }
            vals.truncate(cap);
            Candidates {
                values: vals,
                complete: false,
            }
        }
        Sort::Set(e) => {
            let elems = candidates(e, cfg);
            if elems.complete && elems.values.len() <= 4 {
                // Full powerset.
                let n = elems.values.len();
                let mut vals = Vec::with_capacity(1 << n);
                for mask in 0u32..(1 << n) {
                    let mut s = BTreeSet::new();
                    for (i, v) in elems.values.iter().enumerate() {
                        if mask & (1 << i) != 0 {
                            s.insert(v.clone());
                        }
                    }
                    vals.push(Value::Set((**e).clone(), s));
                }
                vals.truncate(cap);
                Candidates {
                    values: vals,
                    complete: true,
                }
            } else {
                let mut vals = vec![Value::Set((**e).clone(), BTreeSet::new())];
                for v in elems.values.iter().take(4) {
                    let mut s = BTreeSet::new();
                    s.insert(v.clone());
                    vals.push(Value::Set((**e).clone(), s));
                }
                if elems.values.len() >= 2 {
                    let mut s = BTreeSet::new();
                    s.insert(elems.values[0].clone());
                    s.insert(elems.values[1].clone());
                    vals.push(Value::Set((**e).clone(), s));
                }
                vals.truncate(cap);
                Candidates {
                    values: vals,
                    complete: false,
                }
            }
        }
        Sort::Bag(e) => {
            let elems = candidates(e, cfg);
            let mut vals = vec![Value::Bag((**e).clone(), BTreeMap::new())];
            for v in elems.values.iter().take(3) {
                for count in [1u64, 2] {
                    let mut b = BTreeMap::new();
                    b.insert(v.clone(), count);
                    vals.push(Value::Bag((**e).clone(), b));
                }
            }
            vals.truncate(cap);
            Candidates {
                values: vals,
                complete: false,
            }
        }
        Sort::Array(k, v) => {
            let vals_v = candidates(v, cfg);
            let keys = candidates(k, cfg);
            let mut vals = Vec::new();
            for d in vals_v.values.iter().take(3) {
                vals.push(Value::Array {
                    key: (**k).clone(),
                    default: Box::new(d.clone()),
                    table: BTreeMap::new(),
                });
            }
            if let (Some(k0), Some(v1)) = (keys.values.first(), vals_v.values.get(1)) {
                let mut table = BTreeMap::new();
                table.insert(k0.clone(), v1.clone());
                vals.push(Value::Array {
                    key: (**k).clone(),
                    default: Box::new(vals_v.values[0].clone()),
                    table,
                });
            }
            vals.truncate(cap);
            Candidates {
                values: vals,
                complete: false,
            }
        }
        Sort::Tuple(es) => {
            let mut vals = vec![Vec::new()];
            let mut complete = true;
            for e in es {
                let c = candidates(e, cfg);
                complete &= c.complete;
                let mut next = Vec::new();
                for base in &vals {
                    for v in c.values.iter() {
                        let mut t = base.clone();
                        t.push(v.clone());
                        next.push(t);
                        if next.len() >= cap {
                            break;
                        }
                    }
                    if next.len() >= cap {
                        complete = false;
                        break;
                    }
                }
                vals = next;
            }
            Candidates {
                values: vals.into_iter().map(Value::Tuple).collect(),
                complete,
            }
        }
        Sort::Uninterpreted(name) => Candidates {
            values: (0..3).map(|k| Value::Unin(name.clone(), k)).collect(),
            complete: false,
        },
    }
}

/// Defined functions from `define-fun`: name → (parameters, body).
pub type FunDefs = BTreeMap<Symbol, (Vec<(Symbol, Sort)>, Term)>;

/// Evaluation environment: model, defined functions, domain bounds, budget.
pub struct Evaluator<'a> {
    model: &'a Model,
    defs: &'a FunDefs,
    cfg: &'a DomainConfig,
    steps: Cell<u64>,
}

/// An empty defined-function map, for convenience when a formula has no
/// `define-fun` commands.
pub fn no_defs() -> &'static FunDefs {
    use std::sync::OnceLock;
    static EMPTY: OnceLock<FunDefs> = OnceLock::new();
    EMPTY.get_or_init(BTreeMap::new)
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator with a step budget (AST-node visits).
    pub fn new(
        model: &'a Model,
        defs: &'a FunDefs,
        cfg: &'a DomainConfig,
        budget: u64,
    ) -> Evaluator<'a> {
        Evaluator {
            model,
            defs,
            cfg,
            steps: Cell::new(budget),
        }
    }

    /// Evaluates a term to a concrete value.
    ///
    /// # Errors
    ///
    /// See [`EvalError`]; in particular [`EvalError::Incomplete`] when a
    /// quantifier cannot be decided within the bounded domain.
    pub fn eval(&self, term: &Term) -> Result<Value, EvalError> {
        let mut scope = Vec::new();
        self.eval_in(term, &mut scope)
    }

    fn tick(&self) -> Result<(), EvalError> {
        let s = self.steps.get();
        if s == 0 {
            return Err(EvalError::BudgetExhausted);
        }
        self.steps.set(s - 1);
        Ok(())
    }

    fn eval_in(&self, term: &Term, scope: &mut Vec<(Symbol, Value)>) -> Result<Value, EvalError> {
        self.tick()?;
        match term {
            Term::Const(v) => Ok(v.clone()),
            Term::Placeholder(_) => Err(EvalError::Placeholder),
            Term::Var(name) => {
                if let Some((_, v)) = scope.iter().rev().find(|(n, _)| n == name) {
                    return Ok(v.clone());
                }
                if let Some(v) = self.model.get_const(name) {
                    return Ok(v.clone());
                }
                if let Some((params, body)) = self.defs.get(name) {
                    if params.is_empty() {
                        return self.eval_in(&body.clone(), scope);
                    }
                }
                Err(EvalError::UnassignedSymbol(name.clone()))
            }
            Term::Let(binds, body) => {
                let mut bound = Vec::with_capacity(binds.len());
                for (name, value) in binds {
                    bound.push((name.clone(), self.eval_in(value, scope)?));
                }
                let n = scope.len();
                scope.extend(bound);
                let out = self.eval_in(body, scope);
                scope.truncate(n);
                out
            }
            Term::Quant(q, vars, body) => self.eval_quant(*q, vars, body, scope),
            Term::App(op, args) => match op {
                // Short-circuiting connectives need special treatment so a
                // decisive child dominates an incomplete sibling.
                Op::And => self.eval_connective(args, scope, false),
                Op::Or => self.eval_connective(args, scope, true),
                Op::Ite => {
                    let c = self.eval_in(&args[0], scope)?;
                    match c.as_bool() {
                        Some(true) => self.eval_in(&args[1], scope),
                        Some(false) => self.eval_in(&args[2], scope),
                        None => Err(EvalError::IllSorted("ite condition not Bool".into())),
                    }
                }
                Op::Uf(name) => {
                    let mut vals = Vec::with_capacity(args.len());
                    for a in args {
                        vals.push(self.eval_in(a, scope)?);
                    }
                    if let Some((params, body)) = self.defs.get(name) {
                        let n = scope.len();
                        scope.extend(
                            params
                                .iter()
                                .map(|(p, _)| p.clone())
                                .zip(vals.iter().cloned()),
                        );
                        let out = self.eval_in(&body.clone(), scope);
                        scope.truncate(n);
                        return out;
                    }
                    self.model
                        .apply_fun(name, &vals)
                        .ok_or_else(|| EvalError::UnassignedSymbol(name.clone()))
                }
                _ => {
                    let mut vals = Vec::with_capacity(args.len());
                    for a in args {
                        vals.push(self.eval_in(a, scope)?);
                    }
                    apply_op(op, &vals)
                }
            },
        }
    }

    /// `and` (decisive = false) / `or` (decisive = true) with incomplete
    /// tolerance: a decisive child answers even if a sibling is incomplete.
    fn eval_connective(
        &self,
        args: &[Term],
        scope: &mut Vec<(Symbol, Value)>,
        decisive: bool,
    ) -> Result<Value, EvalError> {
        let mut pending_incomplete = false;
        for a in args {
            match self.eval_in(a, scope) {
                Ok(Value::Bool(b)) => {
                    if b == decisive {
                        return Ok(Value::Bool(decisive));
                    }
                }
                Ok(_) => return Err(EvalError::IllSorted("connective over non-Bool".into())),
                Err(EvalError::Incomplete) => pending_incomplete = true,
                Err(e) => return Err(e),
            }
        }
        if pending_incomplete {
            Err(EvalError::Incomplete)
        } else {
            Ok(Value::Bool(!decisive))
        }
    }

    fn eval_quant(
        &self,
        q: Quantifier,
        vars: &[(Symbol, Sort)],
        body: &Term,
        scope: &mut Vec<(Symbol, Value)>,
    ) -> Result<Value, EvalError> {
        let decisive = match q {
            Quantifier::Forall => false, // a false instance decides forall
            Quantifier::Exists => true,  // a true instance decides exists
        };
        let doms: Vec<Candidates> = vars.iter().map(|(_, s)| candidates(s, self.cfg)).collect();
        let complete = doms.iter().all(|d| d.complete);
        let mut total: usize = 1;
        for d in &doms {
            total = total.saturating_mul(d.values.len().max(1));
        }
        let capped = total > self.cfg.quant_budget;
        let mut saw_incomplete = false;

        let mut idx = vec![0usize; vars.len()];
        let mut visited = 0usize;
        'outer: loop {
            if visited >= self.cfg.quant_budget {
                break;
            }
            visited += 1;
            let n = scope.len();
            for (k, (name, _)) in vars.iter().enumerate() {
                scope.push((name.clone(), doms[k].values[idx[k]].clone()));
            }
            let res = self.eval_in(body, scope);
            scope.truncate(n);
            match res {
                Ok(Value::Bool(b)) => {
                    if b == decisive {
                        return Ok(Value::Bool(decisive));
                    }
                }
                Ok(_) => return Err(EvalError::IllSorted("quantifier body not Bool".into())),
                Err(EvalError::Incomplete) => saw_incomplete = true,
                Err(e) => return Err(e),
            }
            // Advance the odometer.
            let mut k = 0;
            loop {
                if k == vars.len() {
                    break 'outer;
                }
                idx[k] += 1;
                if idx[k] < doms[k].values.len() {
                    break;
                }
                idx[k] = 0;
                k += 1;
            }
        }

        if complete && !capped && !saw_incomplete {
            Ok(Value::Bool(!decisive))
        } else {
            Err(EvalError::Incomplete)
        }
    }

    // ---- arena evaluation (the zero-copy hot path) ----

    /// Evaluates an arena term to a concrete value. Semantics — including
    /// step-budget accounting — are identical to [`Evaluator::eval`] on the
    /// extracted boxed term.
    ///
    /// # Errors
    ///
    /// See [`EvalError`]; identical to the boxed path.
    pub fn eval_arena(&self, id: TermId, arena: &TermArena) -> Result<Value, EvalError> {
        let mut scope = Vec::new();
        self.eval_arena_in(id, arena, &mut scope)
    }

    fn eval_arena_in(
        &self,
        id: TermId,
        arena: &TermArena,
        scope: &mut Vec<(Symbol, Value)>,
    ) -> Result<Value, EvalError> {
        self.tick()?;
        match arena.node(id) {
            ANode::Const(vi) => Ok(arena.value(vi).clone()),
            ANode::Placeholder(_) => Err(EvalError::Placeholder),
            ANode::Var(sid) => {
                let name = arena.symbol(sid);
                if let Some((_, v)) = scope.iter().rev().find(|(n, _)| n == name) {
                    return Ok(v.clone());
                }
                if let Some(v) = self.model.get_const(name) {
                    return Ok(v.clone());
                }
                if let Some((params, body)) = self.defs.get(name) {
                    if params.is_empty() {
                        return self.eval_in(&body.clone(), scope);
                    }
                }
                Err(EvalError::UnassignedSymbol(name.clone()))
            }
            ANode::Let(start, len, body) => {
                let mut bound = Vec::with_capacity(len as usize);
                for &(sid, value) in arena.let_binds(start, len) {
                    bound.push((
                        arena.symbol(sid).clone(),
                        self.eval_arena_in(value, arena, scope)?,
                    ));
                }
                let n = scope.len();
                scope.extend(bound);
                let out = self.eval_arena_in(body, arena, scope);
                scope.truncate(n);
                out
            }
            ANode::Quant(q, start, len, body) => {
                self.eval_quant_arena(q, start, len, body, arena, scope)
            }
            ANode::App(opid, start, len) => {
                let args = arena.args(start, len);
                match arena.op(opid) {
                    // Short-circuiting connectives need special treatment so a
                    // decisive child dominates an incomplete sibling.
                    Op::And => self.eval_connective_arena(args, arena, scope, false),
                    Op::Or => self.eval_connective_arena(args, arena, scope, true),
                    Op::Ite => {
                        let c = self.eval_arena_in(args[0], arena, scope)?;
                        match c.as_bool() {
                            Some(true) => self.eval_arena_in(args[1], arena, scope),
                            Some(false) => self.eval_arena_in(args[2], arena, scope),
                            None => Err(EvalError::IllSorted("ite condition not Bool".into())),
                        }
                    }
                    Op::Uf(name) => {
                        let mut vals = Vec::with_capacity(args.len());
                        for &a in args {
                            vals.push(self.eval_arena_in(a, arena, scope)?);
                        }
                        if let Some((params, body)) = self.defs.get(name) {
                            let n = scope.len();
                            scope.extend(
                                params
                                    .iter()
                                    .map(|(p, _)| p.clone())
                                    .zip(vals.iter().cloned()),
                            );
                            let out = self.eval_in(&body.clone(), scope);
                            scope.truncate(n);
                            return out;
                        }
                        self.model
                            .apply_fun(name, &vals)
                            .ok_or_else(|| EvalError::UnassignedSymbol(name.clone()))
                    }
                    op => {
                        let mut vals = Vec::with_capacity(args.len());
                        for &a in args {
                            vals.push(self.eval_arena_in(a, arena, scope)?);
                        }
                        apply_op(op, &vals)
                    }
                }
            }
        }
    }

    /// Arena twin of [`Evaluator::eval_connective`].
    fn eval_connective_arena(
        &self,
        args: &[TermId],
        arena: &TermArena,
        scope: &mut Vec<(Symbol, Value)>,
        decisive: bool,
    ) -> Result<Value, EvalError> {
        let mut pending_incomplete = false;
        for &a in args {
            match self.eval_arena_in(a, arena, scope) {
                Ok(Value::Bool(b)) => {
                    if b == decisive {
                        return Ok(Value::Bool(decisive));
                    }
                }
                Ok(_) => return Err(EvalError::IllSorted("connective over non-Bool".into())),
                Err(EvalError::Incomplete) => pending_incomplete = true,
                Err(e) => return Err(e),
            }
        }
        if pending_incomplete {
            Err(EvalError::Incomplete)
        } else {
            Ok(Value::Bool(!decisive))
        }
    }

    /// Arena twin of [`Evaluator::eval_quant`]: same candidate domains, same
    /// odometer order, same budget caps.
    fn eval_quant_arena(
        &self,
        q: Quantifier,
        start: u32,
        len: u32,
        body: TermId,
        arena: &TermArena,
        scope: &mut Vec<(Symbol, Value)>,
    ) -> Result<Value, EvalError> {
        let vars = arena.quant_vars(start, len);
        let decisive = match q {
            Quantifier::Forall => false, // a false instance decides forall
            Quantifier::Exists => true,  // a true instance decides exists
        };
        let doms: Vec<Candidates> = vars
            .iter()
            .map(|&(_, srt)| candidates(arena.sort(srt), self.cfg))
            .collect();
        let complete = doms.iter().all(|d| d.complete);
        let mut total: usize = 1;
        for d in &doms {
            total = total.saturating_mul(d.values.len().max(1));
        }
        let capped = total > self.cfg.quant_budget;
        let mut saw_incomplete = false;

        let mut idx = vec![0usize; vars.len()];
        let mut visited = 0usize;
        'outer: loop {
            if visited >= self.cfg.quant_budget {
                break;
            }
            visited += 1;
            let n = scope.len();
            for (k, &(sid, _)) in vars.iter().enumerate() {
                scope.push((arena.symbol(sid).clone(), doms[k].values[idx[k]].clone()));
            }
            let res = self.eval_arena_in(body, arena, scope);
            scope.truncate(n);
            match res {
                Ok(Value::Bool(b)) => {
                    if b == decisive {
                        return Ok(Value::Bool(decisive));
                    }
                }
                Ok(_) => return Err(EvalError::IllSorted("quantifier body not Bool".into())),
                Err(EvalError::Incomplete) => saw_incomplete = true,
                Err(e) => return Err(e),
            }
            // Advance the odometer.
            let mut k = 0;
            loop {
                if k == vars.len() {
                    break 'outer;
                }
                idx[k] += 1;
                if idx[k] < doms[k].values.len() {
                    break;
                }
                idx[k] = 0;
                k += 1;
            }
        }

        if complete && !capped && !saw_incomplete {
            Ok(Value::Bool(!decisive))
        } else {
            Err(EvalError::Incomplete)
        }
    }
}

// ---------------------------------------------------------------------------
// Concrete operator semantics
// ---------------------------------------------------------------------------

fn bool_arg(v: &Value) -> Result<bool, EvalError> {
    v.as_bool()
        .ok_or_else(|| EvalError::IllSorted("expected Bool".into()))
}

fn int_arg(v: &Value) -> Result<i128, EvalError> {
    v.as_int()
        .ok_or_else(|| EvalError::IllSorted(format!("expected Int, got {}", v.sort())))
}

fn rat_arg(v: &Value) -> Result<Rational, EvalError> {
    match v {
        Value::Real(r) => Ok(*r),
        Value::Int(i) => Ok(Rational::from_int(*i)),
        other => Err(EvalError::IllSorted(format!(
            "expected Real, got {}",
            other.sort()
        ))),
    }
}

fn str_arg(v: &Value) -> Result<&str, EvalError> {
    match v {
        Value::Str(s) => Ok(s),
        other => Err(EvalError::IllSorted(format!(
            "expected String, got {}",
            other.sort()
        ))),
    }
}

fn bv_arg(v: &Value) -> Result<BitVecValue, EvalError> {
    match v {
        Value::BitVec(b) => Ok(*b),
        other => Err(EvalError::IllSorted(format!(
            "expected BitVec, got {}",
            other.sort()
        ))),
    }
}

fn ff_arg(v: &Value) -> Result<FiniteFieldValue, EvalError> {
    match v {
        Value::FiniteField(x) => Ok(*x),
        other => Err(EvalError::IllSorted(format!(
            "expected FiniteField, got {}",
            other.sort()
        ))),
    }
}

fn seq_arg(v: &Value) -> Result<(&Sort, &Vec<Value>), EvalError> {
    match v {
        Value::Seq(e, vs) => Ok((e, vs)),
        other => Err(EvalError::IllSorted(format!(
            "expected Seq, got {}",
            other.sort()
        ))),
    }
}

fn set_arg(v: &Value) -> Result<(&Sort, &BTreeSet<Value>), EvalError> {
    match v {
        Value::Set(e, vs) => Ok((e, vs)),
        other => Err(EvalError::IllSorted(format!(
            "expected Set, got {}",
            other.sort()
        ))),
    }
}

fn bag_arg(v: &Value) -> Result<(&Sort, &BTreeMap<Value, u64>), EvalError> {
    match v {
        Value::Bag(e, vs) => Ok((e, vs)),
        other => Err(EvalError::IllSorted(format!(
            "expected Bag, got {}",
            other.sort()
        ))),
    }
}

/// True when every argument is an integer value (for Int/Real overloading).
fn all_ints(args: &[Value]) -> bool {
    args.iter().all(|v| matches!(v, Value::Int(_)))
}

/// Values equal modulo Int → Real coercion.
fn values_equal(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Int(i), Value::Real(r)) | (Value::Real(r), Value::Int(i)) => {
            *r == Rational::from_int(*i)
        }
        _ => a == b,
    }
}

/// Euclidean division per SMT-LIB: `div(a, b)` rounds so the remainder is
/// non-negative. Totalized: `div(a, 0) = 0`.
fn euclid_div(a: i128, b: i128) -> Result<i128, EvalError> {
    if b == 0 {
        return Ok(0);
    }
    let q = a.checked_div(b).ok_or(EvalError::Overflow)?;
    let r = a - q * b;
    Ok(if r < 0 {
        if b > 0 {
            q - 1
        } else {
            q + 1
        }
    } else {
        q
    })
}

/// Euclidean remainder; totalized `mod(a, 0) = a`.
fn euclid_mod(a: i128, b: i128) -> Result<i128, EvalError> {
    if b == 0 {
        return Ok(a);
    }
    let q = euclid_div(a, b)?;
    a.checked_sub(q.checked_mul(b).ok_or(EvalError::Overflow)?)
        .ok_or(EvalError::Overflow)
}

/// Applies an operator to fully-evaluated arguments.
///
/// This function is the shared "SMT-LIB standard semantics": the golden
/// evaluator and both simulated solvers call it for ground reasoning (their
/// *engines* differ; the value-level math is spec-defined and shared, like
/// the standard both Z3 and cvc5 implement).
///
/// # Errors
///
/// Returns [`EvalError`] for ill-sorted inputs, fixed-precision overflow,
/// and incompletable operations (`set.complement` over unbounded sorts).
pub fn apply_op(op: &Op, args: &[Value]) -> Result<Value, EvalError> {
    use Op::*;
    let ill = |m: &str| EvalError::IllSorted(m.to_string());
    match op {
        // ---- core ----
        Not => Ok(Value::Bool(!bool_arg(&args[0])?)),
        And => {
            let mut acc = true;
            for a in args {
                acc &= bool_arg(a)?;
            }
            Ok(Value::Bool(acc))
        }
        Or => {
            let mut acc = false;
            for a in args {
                acc |= bool_arg(a)?;
            }
            Ok(Value::Bool(acc))
        }
        Xor => {
            let mut acc = false;
            for a in args {
                acc ^= bool_arg(a)?;
            }
            Ok(Value::Bool(acc))
        }
        Implies => {
            // Right-associative: a => b => c  ==  a => (b => c).
            let mut acc = bool_arg(args.last().ok_or_else(|| ill("=> needs args"))?)?;
            for a in args[..args.len() - 1].iter().rev() {
                acc = !bool_arg(a)? || acc;
            }
            Ok(Value::Bool(acc))
        }
        Eq => {
            let first = &args[0];
            Ok(Value::Bool(
                args[1..].iter().all(|a| values_equal(first, a)),
            ))
        }
        Distinct => {
            for i in 0..args.len() {
                for j in i + 1..args.len() {
                    if values_equal(&args[i], &args[j]) {
                        return Ok(Value::Bool(false));
                    }
                }
            }
            Ok(Value::Bool(true))
        }
        Ite => {
            if bool_arg(&args[0])? {
                Ok(args[1].clone())
            } else {
                Ok(args[2].clone())
            }
        }

        // ---- arithmetic ----
        Add | Mul | Sub => {
            if all_ints(args) {
                let mut acc = int_arg(&args[0])?;
                if args.len() == 1 && matches!(op, Sub) {
                    return Ok(Value::Int(acc.checked_neg().ok_or(EvalError::Overflow)?));
                }
                for a in &args[1..] {
                    let v = int_arg(a)?;
                    acc = match op {
                        Add => acc.checked_add(v),
                        Mul => acc.checked_mul(v),
                        Sub => acc.checked_sub(v),
                        _ => unreachable!(),
                    }
                    .ok_or(EvalError::Overflow)?;
                }
                Ok(Value::Int(acc))
            } else {
                let mut acc = rat_arg(&args[0])?;
                if args.len() == 1 && matches!(op, Sub) {
                    return Ok(Value::Real(acc.neg().ok_or(EvalError::Overflow)?));
                }
                for a in &args[1..] {
                    let v = rat_arg(a)?;
                    acc = match op {
                        Add => acc.add(v),
                        Mul => acc.mul(v),
                        Sub => acc.sub(v),
                        _ => unreachable!(),
                    }
                    .ok_or(EvalError::Overflow)?;
                }
                Ok(Value::Real(acc))
            }
        }
        Neg => match &args[0] {
            Value::Int(i) => Ok(Value::Int(i.checked_neg().ok_or(EvalError::Overflow)?)),
            Value::Real(r) => Ok(Value::Real(r.neg().ok_or(EvalError::Overflow)?)),
            _ => Err(ill("neg over non-numeric")),
        },
        IntDiv => Ok(Value::Int(euclid_div(
            int_arg(&args[0])?,
            int_arg(&args[1])?,
        )?)),
        Mod => Ok(Value::Int(euclid_mod(
            int_arg(&args[0])?,
            int_arg(&args[1])?,
        )?)),
        RealDiv => {
            let mut acc = rat_arg(&args[0])?;
            for a in &args[1..] {
                let d = rat_arg(a)?;
                acc = if d == Rational::ZERO {
                    Rational::ZERO // totalization: x / 0 = 0
                } else {
                    acc.div(d).ok_or(EvalError::Overflow)?
                };
            }
            Ok(Value::Real(acc))
        }
        Abs => Ok(Value::Int(
            int_arg(&args[0])?
                .checked_abs()
                .ok_or(EvalError::Overflow)?,
        )),
        Divisible(n) => Ok(Value::Bool(
            euclid_mod(int_arg(&args[0])?, *n as i128)? == 0,
        )),
        Le | Lt | Ge | Gt => {
            let mut ok = true;
            for w in args.windows(2) {
                let a = rat_arg(&w[0])?;
                let b = rat_arg(&w[1])?;
                ok &= match op {
                    Le => a <= b,
                    Lt => a < b,
                    Ge => a >= b,
                    Gt => a > b,
                    _ => unreachable!(),
                };
            }
            Ok(Value::Bool(ok))
        }
        ToReal => Ok(Value::Real(rat_arg(&args[0])?)),
        ToInt => Ok(Value::Int(rat_arg(&args[0])?.floor())),
        IsInt => Ok(Value::Bool(rat_arg(&args[0])?.is_integer())),

        // ---- bit-vectors ----
        BvNot => {
            let b = bv_arg(&args[0])?;
            Ok(Value::BitVec(BitVecValue::new(b.width(), !b.bits())))
        }
        BvNeg => {
            let b = bv_arg(&args[0])?;
            Ok(Value::BitVec(BitVecValue::new(
                b.width(),
                b.bits().wrapping_neg(),
            )))
        }
        BvAnd | BvOr | BvXor | BvNand | BvNor | BvAdd | BvSub | BvMul => {
            let mut acc = bv_arg(&args[0])?;
            for a in &args[1..] {
                let b = bv_arg(a)?;
                if b.width() != acc.width() {
                    return Err(ill("bit-width mismatch"));
                }
                let w = acc.width();
                let bits = match op {
                    BvAnd => acc.bits() & b.bits(),
                    BvOr => acc.bits() | b.bits(),
                    BvXor => acc.bits() ^ b.bits(),
                    BvNand => !(acc.bits() & b.bits()),
                    BvNor => !(acc.bits() | b.bits()),
                    BvAdd => acc.bits().wrapping_add(b.bits()),
                    BvSub => acc.bits().wrapping_sub(b.bits()),
                    BvMul => acc.bits().wrapping_mul(b.bits()),
                    _ => unreachable!(),
                };
                acc = BitVecValue::new(w, bits);
            }
            Ok(Value::BitVec(acc))
        }
        BvUdiv => {
            let a = bv_arg(&args[0])?;
            let b = bv_arg(&args[1])?;
            let bits = if b.bits() == 0 {
                u128::MAX // all-ones per SMT-LIB
            } else {
                a.bits() / b.bits()
            };
            Ok(Value::BitVec(BitVecValue::new(a.width(), bits)))
        }
        BvUrem => {
            let a = bv_arg(&args[0])?;
            let b = bv_arg(&args[1])?;
            let bits = if b.bits() == 0 {
                a.bits()
            } else {
                a.bits() % b.bits()
            };
            Ok(Value::BitVec(BitVecValue::new(a.width(), bits)))
        }
        BvSdiv => {
            let a = bv_arg(&args[0])?;
            let b = bv_arg(&args[1])?;
            let w = a.width();
            let bits = if b.bits() == 0 {
                if a.signed() >= 0 {
                    u128::MAX
                } else {
                    1
                }
            } else {
                let q = a.signed().wrapping_div(b.signed());
                q as u128
            };
            Ok(Value::BitVec(BitVecValue::new(w, bits)))
        }
        BvSrem => {
            let a = bv_arg(&args[0])?;
            let b = bv_arg(&args[1])?;
            let w = a.width();
            let bits = if b.bits() == 0 {
                a.bits()
            } else {
                a.signed().wrapping_rem(b.signed()) as u128
            };
            Ok(Value::BitVec(BitVecValue::new(w, bits)))
        }
        BvShl | BvLshr | BvAshr => {
            let a = bv_arg(&args[0])?;
            let b = bv_arg(&args[1])?;
            let w = a.width();
            let sh = b.bits().min(256) as u32;
            let bits = if sh >= w {
                match op {
                    BvAshr if a.signed() < 0 => u128::MAX,
                    _ => 0,
                }
            } else {
                match op {
                    BvShl => a.bits() << sh,
                    BvLshr => a.bits() >> sh,
                    BvAshr => {
                        if a.signed() < 0 {
                            let shifted = a.bits() >> sh;
                            let fill = !0u128 << (w - sh);
                            shifted | fill
                        } else {
                            a.bits() >> sh
                        }
                    }
                    _ => unreachable!(),
                }
            };
            Ok(Value::BitVec(BitVecValue::new(w, bits)))
        }
        Concat => {
            let mut width = 0u32;
            let mut bits = 0u128;
            for a in args {
                let b = bv_arg(a)?;
                width += b.width();
                if width > 128 {
                    return Err(EvalError::Overflow);
                }
                bits = (bits << b.width()) | b.bits();
            }
            Ok(Value::BitVec(BitVecValue::new(width, bits)))
        }
        Extract(i, j) => {
            let b = bv_arg(&args[0])?;
            if *i >= b.width() || i < j {
                return Err(ill("extract indices out of range"));
            }
            let w = i - j + 1;
            Ok(Value::BitVec(BitVecValue::new(w, b.bits() >> j)))
        }
        ZeroExtend(k) => {
            let b = bv_arg(&args[0])?;
            Ok(Value::BitVec(BitVecValue::new(b.width() + k, b.bits())))
        }
        SignExtend(k) => {
            let b = bv_arg(&args[0])?;
            let w = b.width() + k;
            let bits = if b.signed() < 0 {
                let fill = if w >= 128 {
                    !0u128 << b.width()
                } else {
                    ((1u128 << w) - 1) & (!0u128 << b.width())
                };
                b.bits() | fill
            } else {
                b.bits()
            };
            Ok(Value::BitVec(BitVecValue::new(w, bits)))
        }
        RotateLeft(k) => {
            let b = bv_arg(&args[0])?;
            let w = b.width();
            let k = k % w;
            let bits = if k == 0 {
                b.bits()
            } else {
                (b.bits() << k) | (b.bits() >> (w - k))
            };
            Ok(Value::BitVec(BitVecValue::new(w, bits)))
        }
        RotateRight(k) => {
            let b = bv_arg(&args[0])?;
            let w = b.width();
            let k = k % w;
            let bits = if k == 0 {
                b.bits()
            } else {
                (b.bits() >> k) | (b.bits() << (w - k))
            };
            Ok(Value::BitVec(BitVecValue::new(w, bits)))
        }
        Repeat(k) => {
            let b = bv_arg(&args[0])?;
            let mut bits = 0u128;
            let mut width = 0u32;
            for _ in 0..*k {
                width += b.width();
                if width > 128 {
                    return Err(EvalError::Overflow);
                }
                bits = (bits << b.width()) | b.bits();
            }
            Ok(Value::BitVec(BitVecValue::new(width, bits)))
        }
        BvUlt | BvUle | BvUgt | BvUge => {
            let a = bv_arg(&args[0])?;
            let b = bv_arg(&args[1])?;
            Ok(Value::Bool(match op {
                BvUlt => a.bits() < b.bits(),
                BvUle => a.bits() <= b.bits(),
                BvUgt => a.bits() > b.bits(),
                BvUge => a.bits() >= b.bits(),
                _ => unreachable!(),
            }))
        }
        BvSlt | BvSle | BvSgt | BvSge => {
            let a = bv_arg(&args[0])?;
            let b = bv_arg(&args[1])?;
            Ok(Value::Bool(match op {
                BvSlt => a.signed() < b.signed(),
                BvSle => a.signed() <= b.signed(),
                BvSgt => a.signed() > b.signed(),
                BvSge => a.signed() >= b.signed(),
                _ => unreachable!(),
            }))
        }

        // ---- strings ----
        StrConcat => {
            let mut s = String::new();
            for a in args {
                s.push_str(str_arg(a)?);
            }
            Ok(Value::Str(s))
        }
        StrLen => Ok(Value::Int(str_arg(&args[0])?.chars().count() as i128)),
        StrAt => {
            let s = str_arg(&args[0])?;
            let i = int_arg(&args[1])?;
            let out = if i < 0 {
                String::new()
            } else {
                s.chars()
                    .nth(i as usize)
                    .map(String::from)
                    .unwrap_or_default()
            };
            Ok(Value::Str(out))
        }
        StrSubstr => {
            let s: Vec<char> = str_arg(&args[0])?.chars().collect();
            let off = int_arg(&args[1])?;
            let len = int_arg(&args[2])?;
            let out = if off < 0 || len <= 0 || off as usize >= s.len() {
                String::new()
            } else {
                let start = off as usize;
                let end = (start + len as usize).min(s.len());
                s[start..end].iter().collect()
            };
            Ok(Value::Str(out))
        }
        StrContains => Ok(Value::Bool(str_arg(&args[0])?.contains(str_arg(&args[1])?))),
        StrPrefixof => Ok(Value::Bool(
            str_arg(&args[1])?.starts_with(str_arg(&args[0])?),
        )),
        StrSuffixof => Ok(Value::Bool(
            str_arg(&args[1])?.ends_with(str_arg(&args[0])?),
        )),
        StrIndexof => {
            let s: Vec<char> = str_arg(&args[0])?.chars().collect();
            let needle: Vec<char> = str_arg(&args[1])?.chars().collect();
            let start = int_arg(&args[2])?;
            if start < 0 || start as usize > s.len() {
                return Ok(Value::Int(-1));
            }
            let start = start as usize;
            let idx = (start..=s.len().saturating_sub(needle.len()).max(start))
                .find(|&i| i + needle.len() <= s.len() && s[i..i + needle.len()] == needle[..]);
            Ok(Value::Int(idx.map(|i| i as i128).unwrap_or(-1)))
        }
        StrReplace => {
            let s = str_arg(&args[0])?;
            let from = str_arg(&args[1])?;
            let to = str_arg(&args[2])?;
            let out = if from.is_empty() {
                format!("{to}{s}")
            } else {
                s.replacen(from, to, 1)
            };
            Ok(Value::Str(out))
        }
        StrReplaceAll => {
            let s = str_arg(&args[0])?;
            let from = str_arg(&args[1])?;
            let to = str_arg(&args[2])?;
            let out = if from.is_empty() {
                s.to_string()
            } else {
                s.replace(from, to)
            };
            Ok(Value::Str(out))
        }
        StrLt | StrLe => {
            let mut ok = true;
            for w in args.windows(2) {
                let a = str_arg(&w[0])?;
                let b = str_arg(&w[1])?;
                ok &= match op {
                    StrLt => a < b,
                    StrLe => a <= b,
                    _ => unreachable!(),
                };
            }
            Ok(Value::Bool(ok))
        }
        StrToInt => {
            let s = str_arg(&args[0])?;
            let out = if !s.is_empty() && s.chars().all(|c| c.is_ascii_digit()) {
                s.parse::<i128>().unwrap_or(-1)
            } else {
                -1
            };
            Ok(Value::Int(out))
        }
        StrFromInt => {
            let i = int_arg(&args[0])?;
            Ok(Value::Str(if i < 0 {
                String::new()
            } else {
                i.to_string()
            }))
        }
        StrToCode => {
            let s = str_arg(&args[0])?;
            let mut chars = s.chars();
            let out = match (chars.next(), chars.next()) {
                (Some(c), None) => c as i128,
                _ => -1,
            };
            Ok(Value::Int(out))
        }
        StrFromCode => {
            let i = int_arg(&args[0])?;
            let out = u32::try_from(i)
                .ok()
                .and_then(char::from_u32)
                .map(String::from)
                .unwrap_or_default();
            Ok(Value::Str(out))
        }
        StrIsDigit => {
            let s = str_arg(&args[0])?;
            let mut chars = s.chars();
            let out = matches!((chars.next(), chars.next()), (Some(c), None) if c.is_ascii_digit());
            Ok(Value::Bool(out))
        }

        // ---- sequences ----
        SeqUnit => Ok(Value::Seq(args[0].sort(), vec![args[0].clone()])),
        SeqConcat => {
            let (e, first) = seq_arg(&args[0])?;
            let mut out = first.clone();
            for a in &args[1..] {
                out.extend(seq_arg(a)?.1.iter().cloned());
            }
            Ok(Value::Seq(e.clone(), out))
        }
        SeqLen => Ok(Value::Int(seq_arg(&args[0])?.1.len() as i128)),
        SeqNth => {
            let (e, vs) = seq_arg(&args[0])?;
            let i = int_arg(&args[1])?;
            let out = if i >= 0 && (i as usize) < vs.len() {
                vs[i as usize].clone()
            } else {
                Value::default_of(e) // totalization
            };
            Ok(out)
        }
        SeqExtract => {
            let (e, vs) = seq_arg(&args[0])?;
            let off = int_arg(&args[1])?;
            let len = int_arg(&args[2])?;
            let out = if off < 0 || len <= 0 || off as usize >= vs.len() {
                Vec::new()
            } else {
                let start = off as usize;
                let end = (start + len as usize).min(vs.len());
                vs[start..end].to_vec()
            };
            Ok(Value::Seq(e.clone(), out))
        }
        SeqContains => {
            let (_, hay) = seq_arg(&args[0])?;
            let (_, needle) = seq_arg(&args[1])?;
            let found =
                needle.is_empty() || hay.windows(needle.len()).any(|w| w == needle.as_slice());
            Ok(Value::Bool(found))
        }
        SeqIndexof => {
            let (_, hay) = seq_arg(&args[0])?;
            let (_, needle) = seq_arg(&args[1])?;
            let start = int_arg(&args[2])?;
            if start < 0 || start as usize > hay.len() {
                return Ok(Value::Int(-1));
            }
            let start = start as usize;
            if needle.is_empty() {
                return Ok(Value::Int(start as i128));
            }
            let idx = (start..hay.len().saturating_sub(needle.len() - 1))
                .find(|&i| hay[i..i + needle.len()] == needle[..]);
            Ok(Value::Int(idx.map(|i| i as i128).unwrap_or(-1)))
        }
        SeqRev => {
            let (e, vs) = seq_arg(&args[0])?;
            let mut out = vs.clone();
            out.reverse();
            Ok(Value::Seq(e.clone(), out))
        }
        SeqUpdate => {
            let (e, vs) = seq_arg(&args[0])?;
            let i = int_arg(&args[1])?;
            let (_, patch) = seq_arg(&args[2])?;
            let mut out = vs.clone();
            if i >= 0 {
                let i = i as usize;
                for (k, p) in patch.iter().enumerate() {
                    if i + k < out.len() {
                        out[i + k] = p.clone();
                    }
                }
            }
            Ok(Value::Seq(e.clone(), out))
        }
        SeqAt => {
            let (e, vs) = seq_arg(&args[0])?;
            let i = int_arg(&args[1])?;
            let out = if i >= 0 && (i as usize) < vs.len() {
                vec![vs[i as usize].clone()]
            } else {
                Vec::new()
            };
            Ok(Value::Seq(e.clone(), out))
        }
        SeqReplace => {
            let (e, vs) = seq_arg(&args[0])?;
            let (_, from) = seq_arg(&args[1])?;
            let (_, to) = seq_arg(&args[2])?;
            if from.is_empty() {
                let mut out = to.clone();
                out.extend(vs.iter().cloned());
                return Ok(Value::Seq(e.clone(), out));
            }
            let mut out = Vec::new();
            let mut i = 0usize;
            let mut replaced = false;
            while i < vs.len() {
                if !replaced && i + from.len() <= vs.len() && vs[i..i + from.len()] == from[..] {
                    out.extend(to.iter().cloned());
                    i += from.len();
                    replaced = true;
                } else {
                    out.push(vs[i].clone());
                    i += 1;
                }
            }
            Ok(Value::Seq(e.clone(), out))
        }
        SeqPrefixof => {
            let (_, p) = seq_arg(&args[0])?;
            let (_, s) = seq_arg(&args[1])?;
            Ok(Value::Bool(s.len() >= p.len() && s[..p.len()] == p[..]))
        }
        SeqSuffixof => {
            let (_, p) = seq_arg(&args[0])?;
            let (_, s) = seq_arg(&args[1])?;
            Ok(Value::Bool(
                s.len() >= p.len() && s[s.len() - p.len()..] == p[..],
            ))
        }

        // ---- sets & relations ----
        SetUnion | SetInter | SetMinus => {
            let (e, first) = set_arg(&args[0])?;
            let mut acc = first.clone();
            for a in &args[1..] {
                let (_, s) = set_arg(a)?;
                acc = match op {
                    SetUnion => acc.union(s).cloned().collect(),
                    SetInter => acc.intersection(s).cloned().collect(),
                    SetMinus => acc.difference(s).cloned().collect(),
                    _ => unreachable!(),
                };
            }
            Ok(Value::Set(e.clone(), acc))
        }
        SetMember => {
            let (_, s) = set_arg(&args[1])?;
            Ok(Value::Bool(s.contains(&args[0])))
        }
        SetSubset => {
            let (_, a) = set_arg(&args[0])?;
            let (_, b) = set_arg(&args[1])?;
            Ok(Value::Bool(a.is_subset(b)))
        }
        SetInsert => {
            let (e, s) = set_arg(args.last().ok_or_else(|| ill("set.insert needs args"))?)?;
            let mut out = s.clone();
            for a in &args[..args.len() - 1] {
                out.insert(a.clone());
            }
            Ok(Value::Set(e.clone(), out))
        }
        SetSingleton => {
            let mut s = BTreeSet::new();
            s.insert(args[0].clone());
            Ok(Value::Set(args[0].sort(), s))
        }
        SetCard => Ok(Value::Int(set_arg(&args[0])?.1.len() as i128)),
        SetComplement => {
            let (e, s) = set_arg(&args[0])?;
            if !e.is_exhaustible() {
                return Err(EvalError::Incomplete);
            }
            let cfg = DomainConfig::default();
            let universe = candidates(e, &cfg);
            if !universe.complete {
                return Err(EvalError::Incomplete);
            }
            let out: BTreeSet<Value> = universe
                .values
                .into_iter()
                .filter(|v| !s.contains(v))
                .collect();
            Ok(Value::Set(e.clone(), out))
        }
        RelJoin => {
            let (ea, a) = set_arg(&args[0])?;
            let (eb, b) = set_arg(&args[1])?;
            let (arity_a, arity_b) = match (ea, eb) {
                (Sort::Tuple(x), Sort::Tuple(y)) => (x.clone(), y.clone()),
                _ => return Err(ill("rel.join over non-relations")),
            };
            if arity_a.is_empty() || arity_b.is_empty() {
                return Err(ill("rel.join requires non-nullary relations"));
            }
            let mut elems = arity_a[..arity_a.len() - 1].to_vec();
            elems.extend_from_slice(&arity_b[1..]);
            let mut out = BTreeSet::new();
            for ta in a {
                let Value::Tuple(xs) = ta else {
                    return Err(ill("relation member not a tuple"));
                };
                for tb in b {
                    let Value::Tuple(ys) = tb else {
                        return Err(ill("relation member not a tuple"));
                    };
                    if xs.last() == ys.first() {
                        let mut joined = xs[..xs.len() - 1].to_vec();
                        joined.extend_from_slice(&ys[1..]);
                        out.insert(Value::Tuple(joined));
                    }
                }
            }
            Ok(Value::Set(Sort::Tuple(elems), out))
        }
        RelProduct => {
            let (ea, a) = set_arg(&args[0])?;
            let (eb, b) = set_arg(&args[1])?;
            let (arity_a, arity_b) = match (ea, eb) {
                (Sort::Tuple(x), Sort::Tuple(y)) => (x.clone(), y.clone()),
                _ => return Err(ill("rel.product over non-relations")),
            };
            let mut elems = arity_a;
            elems.extend(arity_b);
            let mut out = BTreeSet::new();
            for ta in a {
                let Value::Tuple(xs) = ta else {
                    return Err(ill("relation member not a tuple"));
                };
                for tb in b {
                    let Value::Tuple(ys) = tb else {
                        return Err(ill("relation member not a tuple"));
                    };
                    let mut prod = xs.clone();
                    prod.extend(ys.iter().cloned());
                    out.insert(Value::Tuple(prod));
                }
            }
            Ok(Value::Set(Sort::Tuple(elems), out))
        }
        RelTranspose => {
            let (e, s) = set_arg(&args[0])?;
            let Sort::Tuple(elems) = e else {
                return Err(ill("rel.transpose over non-relation"));
            };
            let mut rev_elems = elems.clone();
            rev_elems.reverse();
            let mut out = BTreeSet::new();
            for t in s {
                let Value::Tuple(xs) = t else {
                    return Err(ill("relation member not a tuple"));
                };
                let mut r = xs.clone();
                r.reverse();
                out.insert(Value::Tuple(r));
            }
            Ok(Value::Set(Sort::Tuple(rev_elems), out))
        }

        // ---- bags ----
        BagMake => {
            let count = int_arg(&args[1])?;
            let mut b = BTreeMap::new();
            if count > 0 {
                b.insert(args[0].clone(), count as u64);
            }
            Ok(Value::Bag(args[0].sort(), b))
        }
        BagUnionMax | BagUnionDisjoint | BagInterMin | BagDiffSubtract => {
            let (e, first) = bag_arg(&args[0])?;
            let mut acc = first.clone();
            for a in &args[1..] {
                let (_, b) = bag_arg(a)?;
                let mut out: BTreeMap<Value, u64> = BTreeMap::new();
                let keys: BTreeSet<&Value> = acc.keys().chain(b.keys()).collect();
                for k in keys {
                    let x = acc.get(k).copied().unwrap_or(0);
                    let y = b.get(k).copied().unwrap_or(0);
                    let n = match op {
                        BagUnionMax => x.max(y),
                        BagUnionDisjoint => x.saturating_add(y),
                        BagInterMin => x.min(y),
                        BagDiffSubtract => x.saturating_sub(y),
                        _ => unreachable!(),
                    };
                    if n > 0 {
                        out.insert((*k).clone(), n);
                    }
                }
                acc = out;
            }
            Ok(Value::Bag(e.clone(), acc))
        }
        BagCount => {
            let (_, b) = bag_arg(&args[1])?;
            Ok(Value::Int(b.get(&args[0]).copied().unwrap_or(0) as i128))
        }
        BagCard => {
            let (_, b) = bag_arg(&args[0])?;
            Ok(Value::Int(b.values().map(|&n| n as i128).sum()))
        }
        BagMember => {
            let (_, b) = bag_arg(&args[1])?;
            Ok(Value::Bool(b.contains_key(&args[0])))
        }
        BagSubbag => {
            let (_, a) = bag_arg(&args[0])?;
            let (_, b) = bag_arg(&args[1])?;
            Ok(Value::Bool(
                a.iter().all(|(k, &n)| b.get(k).copied().unwrap_or(0) >= n),
            ))
        }

        // ---- finite fields ----
        FfAdd => {
            let mut acc = ff_arg(&args[0])?;
            for a in &args[1..] {
                acc = acc.add(ff_arg(a)?);
            }
            Ok(Value::FiniteField(acc))
        }
        FfMul => {
            let mut acc = ff_arg(&args[0])?;
            for a in &args[1..] {
                acc = acc.mul(ff_arg(a)?);
            }
            Ok(Value::FiniteField(acc))
        }
        FfNeg => Ok(Value::FiniteField(ff_arg(&args[0])?.neg())),
        FfBitsum => {
            // Positional sum: Σ 2^i * child_i, in the field. The cvc5 bug in
            // the paper (issue #11969) was exactly a missing coefficient
            // multiplication here; the *correct* semantics scales every
            // child, constant or not.
            let first = ff_arg(&args[0])?;
            let p = first.modulus();
            let mut acc = FiniteFieldValue::new(p, 0);
            let mut coeff = FiniteFieldValue::new(p, 1);
            let two = FiniteFieldValue::new(p, 2);
            for a in args {
                let x = ff_arg(a)?;
                acc = acc.add(coeff.mul(x));
                coeff = coeff.mul(two);
            }
            Ok(Value::FiniteField(acc))
        }

        // ---- arrays ----
        Select => match &args[0] {
            Value::Array { default, table, .. } => Ok(table
                .get(&args[1])
                .cloned()
                .unwrap_or_else(|| (**default).clone())),
            other => Err(ill(&format!("select over {}", other.sort()))),
        },
        Store => match &args[0] {
            Value::Array {
                key,
                default,
                table,
            } => {
                let mut t = table.clone();
                if **default == args[2] {
                    t.remove(&args[1]);
                } else {
                    t.insert(args[1].clone(), args[2].clone());
                }
                Ok(Value::Array {
                    key: key.clone(),
                    default: default.clone(),
                    table: t,
                })
            }
            other => Err(ill(&format!("store over {}", other.sort()))),
        },
        ConstArray(sort) => match sort {
            Sort::Array(k, _) => Ok(Value::Array {
                key: (**k).clone(),
                default: Box::new(args[0].clone()),
                table: BTreeMap::new(),
            }),
            _ => Err(ill("as const with non-array sort")),
        },

        // ---- tuples ----
        MkTuple => Ok(Value::Tuple(args.to_vec())),
        TupleSelect(i) => match &args[0] {
            Value::Tuple(vs) => vs
                .get(*i as usize)
                .cloned()
                .ok_or_else(|| ill("tuple index out of range")),
            other => Err(ill(&format!("tuple.select over {}", other.sort()))),
        },

        // ---- UF ----
        Uf(name) => Err(EvalError::UnassignedSymbol(name.clone())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_term, Model};

    fn eval_str(text: &str, model: &Model) -> Result<Value, EvalError> {
        let t = parse_term(text).expect("parse");
        let cfg = DomainConfig::default();
        let ev = Evaluator::new(model, no_defs(), &cfg, 100_000);
        ev.eval(&t)
    }

    fn eval_ok(text: &str) -> Value {
        eval_str(text, &Model::new()).unwrap()
    }

    #[test]
    fn core_semantics() {
        assert_eq!(eval_ok("(and true true false)"), Value::Bool(false));
        assert_eq!(eval_ok("(or false false true)"), Value::Bool(true));
        assert_eq!(eval_ok("(xor true true true)"), Value::Bool(true));
        assert_eq!(eval_ok("(=> true false)"), Value::Bool(false));
        assert_eq!(eval_ok("(=> false false)"), Value::Bool(true));
        assert_eq!(eval_ok("(distinct 1 2 3)"), Value::Bool(true));
        assert_eq!(eval_ok("(distinct 1 2 1)"), Value::Bool(false));
        assert_eq!(eval_ok("(ite false 1 2)"), Value::Int(2));
    }

    #[test]
    fn euclidean_division() {
        assert_eq!(eval_ok("(div 7 2)"), Value::Int(3));
        assert_eq!(eval_ok("(div (- 7) 2)"), Value::Int(-4));
        assert_eq!(eval_ok("(mod (- 7) 2)"), Value::Int(1));
        assert_eq!(eval_ok("(div 7 (- 2))"), Value::Int(-3));
        assert_eq!(eval_ok("(mod 7 (- 2))"), Value::Int(1));
        // Totalization conventions.
        assert_eq!(eval_ok("(div 5 0)"), Value::Int(0));
        assert_eq!(eval_ok("(mod 5 0)"), Value::Int(5));
        assert_eq!(eval_ok("(div 0 0)"), Value::Int(0));
    }

    #[test]
    fn real_arithmetic_with_coercion() {
        assert_eq!(
            eval_ok("(+ 1 0.5)"),
            Value::Real(Rational::new(3, 2).unwrap())
        );
        assert_eq!(eval_ok("(= 2 2.0)"), Value::Bool(true));
        assert_eq!(eval_ok("(< 1 1.5 2)"), Value::Bool(true));
        assert_eq!(eval_ok("(to_int 2.5)"), Value::Int(2));
        assert_eq!(eval_ok("(to_int (- 2.5))"), Value::Int(-3));
        assert_eq!(eval_ok("(is_int 2.0)"), Value::Bool(true));
        // x / 0 = 0 convention.
        assert_eq!(eval_ok("(/ 3.0 0.0)"), Value::Real(Rational::ZERO));
    }

    #[test]
    fn divisible_semantics() {
        assert_eq!(eval_ok("((_ divisible 3) 9)"), Value::Bool(true));
        assert_eq!(eval_ok("((_ divisible 3) 10)"), Value::Bool(false));
        assert_eq!(eval_ok("((_ divisible 3) (- 9))"), Value::Bool(true));
    }

    #[test]
    fn bitvector_semantics() {
        assert_eq!(
            eval_ok("(bvadd #x0f #x01)"),
            Value::BitVec(BitVecValue::new(8, 0x10))
        );
        assert_eq!(
            eval_ok("(bvmul #x10 #x10)"),
            Value::BitVec(BitVecValue::new(8, 0))
        );
        assert_eq!(
            eval_ok("(bvudiv #x05 #x00)"),
            Value::BitVec(BitVecValue::new(8, 0xff))
        );
        assert_eq!(
            eval_ok("(bvurem #x05 #x00)"),
            Value::BitVec(BitVecValue::new(8, 5))
        );
        assert_eq!(
            eval_ok("((_ extract 3 0) #xa5)"),
            Value::BitVec(BitVecValue::new(4, 5))
        );
        assert_eq!(
            eval_ok("(concat #b1 #b0)"),
            Value::BitVec(BitVecValue::new(2, 0b10))
        );
        assert_eq!(
            eval_ok("((_ sign_extend 4) #b1000)"),
            Value::BitVec(BitVecValue::new(8, 0xf8))
        );
        assert_eq!(
            eval_ok("((_ rotate_left 1) #b100)"),
            Value::BitVec(BitVecValue::new(3, 0b001))
        );
        assert_eq!(eval_ok("(bvslt #xff #x01)"), Value::Bool(true));
        assert_eq!(eval_ok("(bvult #xff #x01)"), Value::Bool(false));
        assert_eq!(
            eval_ok("(bvashr #b1000 #b0010)"),
            Value::BitVec(BitVecValue::new(4, 0b1110))
        );
    }

    #[test]
    fn string_semantics() {
        assert_eq!(eval_ok("(str.++ \"ab\" \"cd\")"), Value::Str("abcd".into()));
        assert_eq!(eval_ok("(str.len \"abc\")"), Value::Int(3));
        assert_eq!(eval_ok("(str.at \"abc\" 1)"), Value::Str("b".into()));
        assert_eq!(eval_ok("(str.at \"abc\" 9)"), Value::Str("".into()));
        assert_eq!(
            eval_ok("(str.substr \"hello\" 1 3)"),
            Value::Str("ell".into())
        );
        assert_eq!(
            eval_ok("(str.substr \"hello\" (- 1) 3)"),
            Value::Str("".into())
        );
        assert_eq!(eval_ok("(str.contains \"abc\" \"bc\")"), Value::Bool(true));
        assert_eq!(eval_ok("(str.prefixof \"ab\" \"abc\")"), Value::Bool(true));
        assert_eq!(eval_ok("(str.suffixof \"bc\" \"abc\")"), Value::Bool(true));
        assert_eq!(eval_ok("(str.indexof \"abcabc\" \"bc\" 2)"), Value::Int(4));
        assert_eq!(eval_ok("(str.indexof \"abc\" \"zz\" 0)"), Value::Int(-1));
        assert_eq!(
            eval_ok("(str.replace \"aaa\" \"a\" \"b\")"),
            Value::Str("baa".into())
        );
        assert_eq!(
            eval_ok("(str.replace_all \"aaa\" \"a\" \"b\")"),
            Value::Str("bbb".into())
        );
        assert_eq!(eval_ok("(str.to_int \"42\")"), Value::Int(42));
        assert_eq!(eval_ok("(str.to_int \"4a\")"), Value::Int(-1));
        assert_eq!(eval_ok("(str.from_int 42)"), Value::Str("42".into()));
        assert_eq!(eval_ok("(str.from_int (- 1))"), Value::Str("".into()));
        assert_eq!(eval_ok("(str.to_code \"A\")"), Value::Int(65));
        assert_eq!(eval_ok("(str.to_code \"AB\")"), Value::Int(-1));
        assert_eq!(eval_ok("(str.from_code 97)"), Value::Str("a".into()));
        assert_eq!(eval_ok("(str.is_digit \"7\")"), Value::Bool(true));
        assert_eq!(eval_ok("(str.< \"a\" \"b\")"), Value::Bool(true));
    }

    #[test]
    fn sequence_semantics() {
        assert_eq!(
            eval_ok("(seq.len (seq.++ (seq.unit 1) (seq.unit 2)))"),
            Value::Int(2)
        );
        assert_eq!(
            eval_ok("(seq.nth (seq.++ (seq.unit 1) (seq.unit 2)) 1)"),
            Value::Int(2)
        );
        // Out-of-range nth totalizes to the element default (0 for Int).
        assert_eq!(
            eval_ok("(seq.nth (as seq.empty (Seq Int)) (div 0 0))"),
            Value::Int(0)
        );
        assert_eq!(
            eval_ok("(seq.rev (seq.++ (seq.unit 1) (seq.unit 2)))"),
            eval_ok("(seq.++ (seq.unit 2) (seq.unit 1))")
        );
        assert_eq!(
            eval_ok("(seq.contains (seq.++ (seq.unit 1) (seq.unit 2)) (seq.unit 2))"),
            Value::Bool(true)
        );
        assert_eq!(
            eval_ok("(seq.extract (seq.++ (seq.unit 1) (seq.unit 2) (seq.unit 3)) 1 2)"),
            eval_ok("(seq.++ (seq.unit 2) (seq.unit 3))")
        );
        assert_eq!(
            eval_ok("(seq.update (seq.++ (seq.unit 1) (seq.unit 2)) 0 (seq.unit 9))"),
            eval_ok("(seq.++ (seq.unit 9) (seq.unit 2))")
        );
        assert_eq!(
            eval_ok("(seq.indexof (seq.++ (seq.unit 1) (seq.unit 2)) (seq.unit 2) 0)"),
            Value::Int(1)
        );
        assert_eq!(
            eval_ok("(seq.prefixof (seq.unit 1) (seq.++ (seq.unit 1) (seq.unit 2)))"),
            Value::Bool(true)
        );
    }

    #[test]
    fn set_and_relation_semantics() {
        assert_eq!(
            eval_ok("(set.card (set.union (set.singleton 1) (set.singleton 2)))"),
            Value::Int(2)
        );
        assert_eq!(
            eval_ok("(set.member 2 (set.insert 1 2 (as set.empty (Set Int))))"),
            Value::Bool(true)
        );
        assert_eq!(
            eval_ok("(set.subset (set.singleton 1) (set.insert 1 2 (as set.empty (Set Int))))"),
            Value::Bool(true)
        );
        assert_eq!(
            eval_ok("(set.card (set.minus (set.insert 1 2 (as set.empty (Set Int))) (set.singleton 1)))"),
            Value::Int(1)
        );
        // Complement over Bool is exhaustible.
        assert_eq!(
            eval_ok("(set.card (set.complement (as set.empty (Set Bool))))"),
            Value::Int(2)
        );
        // Complement over Int is not.
        assert_eq!(
            eval_str("(set.complement (as set.empty (Set Int)))", &Model::new()),
            Err(EvalError::Incomplete)
        );
        // Relational join.
        assert_eq!(
            eval_ok(
                "(set.card (rel.join (set.singleton (tuple 1 true)) \
                 (set.singleton (tuple true \"x\"))))"
            ),
            Value::Int(1)
        );
        assert_eq!(
            eval_ok("(set.card (rel.transpose (set.singleton (tuple 1 true))))"),
            Value::Int(1)
        );
        assert_eq!(
            eval_ok("(set.card (rel.product (set.singleton (tuple 1)) (set.singleton (tuple 2))))"),
            Value::Int(1)
        );
    }

    #[test]
    fn bag_semantics() {
        assert_eq!(eval_ok("(bag.count 1 (bag 1 3))"), Value::Int(3));
        assert_eq!(
            eval_ok("(bag.card (bag.union_disjoint (bag 1 2) (bag 1 3)))"),
            Value::Int(5)
        );
        assert_eq!(
            eval_ok("(bag.count 1 (bag.union_max (bag 1 2) (bag 1 3)))"),
            Value::Int(3)
        );
        assert_eq!(
            eval_ok("(bag.count 1 (bag.inter_min (bag 1 2) (bag 1 3)))"),
            Value::Int(2)
        );
        assert_eq!(
            eval_ok("(bag.count 1 (bag.difference_subtract (bag 1 5) (bag 1 3)))"),
            Value::Int(2)
        );
        assert_eq!(eval_ok("(bag.member 1 (bag 1 1))"), Value::Bool(true));
        assert_eq!(
            eval_ok("(bag.subbag (bag 1 2) (bag 1 3))"),
            Value::Bool(true)
        );
        assert_eq!(eval_ok("(bag.card (bag 7 0))"), Value::Int(0));
    }

    #[test]
    fn finite_field_semantics() {
        assert_eq!(
            eval_ok("(ff.add (as ff2 (_ FiniteField 3)) (as ff2 (_ FiniteField 3)))"),
            Value::FiniteField(FiniteFieldValue::new(3, 1))
        );
        assert_eq!(
            eval_ok("(ff.mul (as ff2 (_ FiniteField 5)) (as ff3 (_ FiniteField 5)))"),
            Value::FiniteField(FiniteFieldValue::new(5, 1))
        );
        // bitsum: ff.bitsum(a, b) = a + 2b. With a = 1, b = 2 (mod 3): 1+4 = 5 = 2.
        assert_eq!(
            eval_ok("(ff.bitsum (as ff1 (_ FiniteField 3)) (as ff2 (_ FiniteField 3)))"),
            Value::FiniteField(FiniteFieldValue::new(3, 2))
        );
    }

    #[test]
    fn array_semantics() {
        assert_eq!(
            eval_ok("(select (store ((as const (Array Int Int)) 0) 3 9) 3)"),
            Value::Int(9)
        );
        assert_eq!(
            eval_ok("(select (store ((as const (Array Int Int)) 0) 3 9) 4)"),
            Value::Int(0)
        );
        // Storing the default normalizes away the table entry.
        assert_eq!(
            eval_ok("(store ((as const (Array Int Int)) 0) 3 0)"),
            eval_ok("((as const (Array Int Int)) 0)")
        );
    }

    #[test]
    fn tuple_semantics() {
        assert_eq!(
            eval_ok("((_ tuple.select 1) (tuple 1 true))"),
            Value::Bool(true)
        );
    }

    #[test]
    fn quantifier_bool_complete() {
        assert_eq!(
            eval_ok("(forall ((b Bool)) (or b (not b)))"),
            Value::Bool(true)
        );
        assert_eq!(
            eval_ok("(exists ((b Bool)) (and b (not b)))"),
            Value::Bool(false)
        );
    }

    #[test]
    fn quantifier_int_witness() {
        // exists finds a witness within the radius even though Int is
        // unbounded.
        assert_eq!(
            eval_ok("(exists ((x Int)) (= (* x x) 4))"),
            Value::Bool(true)
        );
        // forall over Int with no counterexample in range is incomplete.
        assert_eq!(
            eval_str("(forall ((x Int)) (< x 100))", &Model::new()),
            Err(EvalError::Incomplete)
        );
        // ... but a counterexample decides it.
        assert_eq!(
            eval_ok("(forall ((x Int)) (distinct x 2))"),
            Value::Bool(false)
        );
    }

    #[test]
    fn connectives_tolerate_incomplete_siblings() {
        // (or true <incomplete>) must be true.
        assert_eq!(
            eval_ok("(or (= 1 1) (forall ((x Int)) (< x 100)))"),
            Value::Bool(true)
        );
        // (and false <incomplete>) must be false.
        assert_eq!(
            eval_ok("(and (= 1 2) (forall ((x Int)) (< x 100)))"),
            Value::Bool(false)
        );
        // (and true <incomplete>) stays incomplete.
        assert_eq!(
            eval_str("(and (= 1 1) (forall ((x Int)) (< x 100)))", &Model::new()),
            Err(EvalError::Incomplete)
        );
    }

    #[test]
    fn model_lookup_and_uf() {
        let mut m = Model::new();
        m.set_const(Symbol::new("x"), Value::Int(5));
        let mut table = BTreeMap::new();
        table.insert(vec![Value::Int(5)], Value::Bool(true));
        m.set_fun(Symbol::new("f"), vec![Sort::Int], table, Value::Bool(false));
        assert_eq!(eval_str("(f x)", &m), Ok(Value::Bool(true)));
        assert_eq!(eval_str("(f (+ x 1))", &m), Ok(Value::Bool(false)));
        assert!(matches!(
            eval_str("(g x)", &m),
            Err(EvalError::UnassignedSymbol(_))
        ));
    }

    #[test]
    fn let_bindings_evaluate() {
        assert_eq!(eval_ok("(let ((a 2) (b 3)) (* a b))"), Value::Int(6));
        // Parallel-let: bindings see the outer scope.
        let mut m = Model::new();
        m.set_const(Symbol::new("a"), Value::Int(10));
        assert_eq!(
            eval_str("(let ((a 1) (b a)) (+ a b))", &m),
            Ok(Value::Int(11))
        );
    }

    #[test]
    fn budget_is_enforced() {
        // No instance is decisive, so the evaluator must walk the whole
        // product and trip the step budget first.
        let t = parse_term("(forall ((x Int) (y Int) (z Int)) (distinct (+ x y z) 100))").unwrap();
        let cfg = DomainConfig::default();
        let m = Model::new();
        let ev = Evaluator::new(&m, no_defs(), &cfg, 10);
        assert_eq!(ev.eval(&t), Err(EvalError::BudgetExhausted));
    }

    #[test]
    fn placeholder_rejected() {
        let cfg = DomainConfig::default();
        let m = Model::new();
        let ev = Evaluator::new(&m, no_defs(), &cfg, 100);
        assert_eq!(ev.eval(&Term::Placeholder(0)), Err(EvalError::Placeholder));
    }

    #[test]
    fn candidates_bool_complete() {
        let cfg = DomainConfig::default();
        let c = candidates(&Sort::Bool, &cfg);
        assert!(c.complete);
        assert_eq!(c.values.len(), 2);
        let ints = candidates(&Sort::Int, &cfg);
        assert!(!ints.complete);
        assert!(ints.values.contains(&Value::Int(0)));
        let bv2 = candidates(&Sort::BitVec(2), &cfg);
        assert!(bv2.complete);
        assert_eq!(bv2.values.len(), 4);
        let ff3 = candidates(&Sort::FiniteField(3), &cfg);
        assert!(ff3.complete);
        assert_eq!(ff3.values.len(), 3);
        let setb = candidates(&Sort::set(Sort::Bool), &cfg);
        assert!(setb.complete);
        assert_eq!(setb.values.len(), 4);
    }

    #[test]
    fn candidates_never_empty() {
        let cfg = DomainConfig::default();
        for sort in [
            Sort::Bool,
            Sort::Int,
            Sort::Real,
            Sort::String,
            Sort::BitVec(8),
            Sort::FiniteField(17),
            Sort::seq(Sort::Int),
            Sort::set(Sort::Int),
            Sort::bag(Sort::Bool),
            Sort::array(Sort::Int, Sort::Int),
            Sort::Tuple(vec![Sort::Bool, Sort::Bool]),
            Sort::unit_tuple(),
            Sort::Uninterpreted(Symbol::new("U")),
        ] {
            let c = candidates(&sort, &cfg);
            assert!(!c.values.is_empty(), "no candidates for {sort}");
            for v in &c.values {
                assert_eq!(v.sort(), sort, "candidate sort mismatch for {sort}");
            }
        }
    }

    #[test]
    fn unit_tuple_candidates_complete() {
        let cfg = DomainConfig::default();
        let c = candidates(&Sort::unit_tuple(), &cfg);
        assert!(c.complete);
        assert_eq!(c.values, vec![Value::Tuple(vec![])]);
    }
}
