//! The worker side of a distributed campaign: a lease-execution loop
//! around [`o4a_exec::run_shard_lease`], over pipes or TCP.
//!
//! A worker process announces its findings journal, then serves leases
//! until told to stop: each `lease` frame names one shard of the
//! campaign plan, the worker runs it with the repo's standard shard
//! engine (every finding fsync'd into the worker's own journal the
//! moment it is recorded), and the `done` frame goes out only **after**
//! the shard's completion record is durable. Heartbeat `progress`
//! frames flow while the shard runs so the coordinator's per-worker
//! deadline can tell a slow worker from a wedged one.
//!
//! Over pipes ([`run_worker`]) the transport is stdin/stdout and EOF is
//! the shutdown signal. Over TCP ([`run_worker_tcp`]) the worker
//! *connects* to the coordinator, introduces itself with `hello`, and
//! treats a dropped connection as a coordinator outage: it finishes any
//! lease in flight (heartbeat writes fail silently — by design), then
//! reconnects and replays its completed-lease list in a `re-adopt`
//! frame so a **restarted** coordinator can credit work finished during
//! the outage. Only an explicit `goodbye` ends the loop.
//!
//! Crash injection (for the recovery gauntlet) lives here too: a worker
//! configured with [`CrashInjection`] dies abruptly — mid-lease, after
//! its journal already holds any findings discovered so far — the first
//! time it reaches the named shard. A token file makes the crash
//! once-per-campaign: the re-issued lease (on this or any other worker)
//! finds the token and runs to completion, which is exactly the
//! kill-mid-lease scenario the merge must absorb losslessly.

use crate::protocol::{CacheCounters, CompletedLease, Frame, TraceBatch};
use crate::transport::connect_with_retry;
use o4a_core::{Fuzzer, TestCase};
use o4a_exec::json::Json;
use o4a_exec::{run_shard_lease, ExecConfig, FindingsStore, StoreSession};
use o4a_obs::metrics::MetricsSnapshot;
use o4a_obs::trace::TraceEvent;
use rand::rngs::StdRng;
use std::collections::{BTreeMap, VecDeque};
use std::io::{self, BufRead, BufReader, Write};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Cases between `progress` heartbeats.
pub const DEFAULT_PROGRESS_EVERY: u64 = 16;

/// Most trace events one `progress` heartbeat carries; the remainder
/// stays queued for later frames (and the `done` frame flushes the
/// queue), so heartbeats stay small no matter how chatty a lease is.
pub const TRACE_BATCH_EVENTS: usize = 2048;

/// Deterministic die-mid-lease injection for the crash-recovery
/// gauntlet.
#[derive(Clone, Debug)]
pub struct CrashInjection {
    /// Crash while running this shard.
    pub shard: u32,
    /// ... after generating this many cases of it (mid-lease).
    pub after_cases: u64,
    /// Once-only latch: the crash fires only if atomically creating this
    /// file succeeds, so a campaign crashes exactly once no matter which
    /// worker (or respawn) reaches the shard first.
    pub token: PathBuf,
}

/// Worker-process configuration (everything the binary's command line
/// carries).
#[derive(Clone, Debug)]
pub struct WorkerConfig {
    /// The findings journal this worker appends to. Unique per worker
    /// *process* — a respawned worker gets a fresh journal, so a crashed
    /// predecessor's torn tail can never sit in the middle of a live
    /// file. (One TCP worker keeps one journal across reconnects: same
    /// process, same `StoreSession`.)
    pub journal: PathBuf,
    /// Worker id, echoed in the `journal-path`/`hello` frames.
    pub worker_id: u32,
    /// Cases between `progress` heartbeats.
    pub progress_every: u64,
    /// Optional die-mid-lease injection.
    pub crash: Option<CrashInjection>,
    /// Artificial per-case latency in milliseconds — the "slow machine"
    /// knob for the heterogeneous-fleet gauntlet. Pure wall-clock drag
    /// on the instrumentation wrapper: the engine's virtual time and RNG
    /// never see it, so a slow worker's shard results stay bit-identical
    /// to a fast worker's.
    pub slow_case_ms: u64,
    /// Elastic scale-in injection: after completing this many leases the
    /// worker sends `goodbye` and exits cleanly, mid-campaign.
    pub leave_after_leases: Option<u32>,
}

impl WorkerConfig {
    /// A worker bound to `journal` with default heartbeat cadence and no
    /// fault injection.
    pub fn new(journal: impl Into<PathBuf>, worker_id: u32) -> WorkerConfig {
        WorkerConfig {
            journal: journal.into(),
            worker_id,
            progress_every: DEFAULT_PROGRESS_EVERY,
            crash: None,
            slow_case_ms: 0,
            leave_after_leases: None,
        }
    }
}

/// Wraps the shard's fuzzer to tap the case stream: heartbeats every
/// `every` cases, the optional crash injection, and the slow-machine
/// latency, all riding `next_case` so no engine code changes. The inner
/// fuzzer's RNG usage is untouched — instrumentation cannot perturb the
/// campaign.
struct Instrumented<'a, W: Write> {
    inner: &'a mut dyn Fuzzer,
    out: &'a mut W,
    shard: u32,
    cases: u64,
    every: u64,
    /// When the lease started, for the live cases/sec in heartbeats.
    /// Wall-clock flows *out* of the engine here, never back in.
    started: Instant,
    crash: Option<&'a CrashInjection>,
    slow_case_ms: u64,
    /// The lease asked for trace piggyback (fleet-merged tracing).
    trace: bool,
    /// Ring drainage waiting for frame space, owned by the lease server
    /// so nothing is lost between heartbeats or leases.
    trace_spill: &'a mut VecDeque<TraceEvent>,
    /// Ring-overflow drops not yet reported in a batch.
    trace_shed: &'a mut u64,
}

/// Throughput over the lease so far; zero before the clock has
/// measurably advanced.
fn rate(cases: u64, since: Instant) -> f64 {
    let secs = since.elapsed().as_secs_f64();
    if secs <= 0.0 {
        0.0
    } else {
        cases as f64 / secs
    }
}

/// The worker's cumulative metrics, attached to outbound frames only
/// when `O4A_METRICS` is on (frames stay small otherwise).
fn metrics_attachment() -> Option<MetricsSnapshot> {
    if o4a_obs::metrics_enabled() {
        Some(o4a_obs::metrics::snapshot())
    } else {
        None
    }
}

/// Cuts the next trace batch for an outbound frame: drains this
/// process's ring into `spill`, then takes up to `limit` events off the
/// front (drain order is the deterministic `(ts, tid)` order). Returns
/// `None` — and touches nothing — unless the lease asked for piggyback,
/// and `None` when there is nothing to report, so scope-off campaigns
/// keep the exact pre-scope wire bytes.
fn trace_attachment(
    requested: bool,
    spill: &mut VecDeque<TraceEvent>,
    shed: &mut u64,
    limit: usize,
) -> Option<TraceBatch> {
    if !requested {
        return None;
    }
    let (events, dropped) = o4a_obs::trace::drain_events();
    spill.extend(events);
    *shed += dropped;
    if spill.is_empty() && *shed == 0 {
        return None;
    }
    let take = spill.len().min(limit);
    Some(TraceBatch {
        pid: u64::from(std::process::id()),
        epoch_unix_micros: o4a_obs::trace::epoch_unix_micros(),
        dropped: std::mem::take(shed),
        events: spill.drain(..take).collect(),
    })
}

impl<W: Write> Fuzzer for Instrumented<'_, W> {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn setup(&mut self, rng: &mut StdRng) -> u64 {
        self.inner.setup(rng)
    }

    fn next_case(&mut self, rng: &mut StdRng) -> TestCase {
        if let Some(crash) = self.crash {
            if crash.shard == self.shard && self.cases == crash.after_cases && latch(crash) {
                // Die like a segfault: no unwinding, no flushes. Findings
                // journaled so far are already fsync'd; the in-flight
                // shard has no completion record and re-runs elsewhere.
                eprintln!(
                    "dist worker: injected crash mid-lease (shard {})",
                    self.shard
                );
                std::process::exit(9);
            }
        }
        if self.slow_case_ms > 0 {
            std::thread::sleep(Duration::from_millis(self.slow_case_ms));
        }
        self.cases += 1;
        if self.cases.is_multiple_of(self.every) {
            // Heartbeat only; a failed write means the coordinator is
            // gone — over pipes the worker will exit on stdin EOF
            // shortly, over TCP it finishes the lease and reconnects.
            // The lease's cache counters live in the shard stats, which
            // only exist once the lease completes — heartbeats carry the
            // zero trio (omitted on the wire), the `done` frame the real
            // one.
            let frame = Frame::Progress {
                shard: self.shard,
                cases: self.cases,
                cases_per_sec: rate(self.cases, self.started),
                metrics: metrics_attachment(),
                cache: CacheCounters::default(),
                trace: trace_attachment(
                    self.trace,
                    self.trace_spill,
                    self.trace_shed,
                    TRACE_BATCH_EVENTS,
                ),
            };
            let _ = writeln!(self.out, "{}", frame.to_line());
            let _ = self.out.flush();
        }
        self.inner.next_case(rng)
    }
}

/// Atomically claims the crash token; true when this process should die.
fn latch(crash: &CrashInjection) -> bool {
    std::fs::OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(&crash.token)
        .is_ok()
}

/// The transport-agnostic lease engine: owns the journal session (one
/// per process, shared across reconnects) and the cumulative
/// completed-lease list that `re-adopt` frames replay.
struct LeaseServer<'f, F> {
    factory: &'f F,
    cfg: &'f WorkerConfig,
    store: FindingsStore,
    session: Option<(Json, StoreSession)>,
    /// Every lease this process completed, in completion order.
    completed: Vec<CompletedLease>,
    /// Drained-but-unsent trace events (see [`trace_attachment`]).
    trace_spill: VecDeque<TraceEvent>,
    /// Ring drops not yet reported in a batch.
    trace_shed: u64,
}

impl<F> LeaseServer<'_, F>
where
    F: Fn(u32) -> Box<dyn Fuzzer>,
{
    /// Serves one lease to completion and returns its `done` frame
    /// (already recorded in [`Self::completed`]); the caller owns
    /// sending it.
    ///
    /// # Errors
    ///
    /// Journal I/O errors and leases from a different campaign than this
    /// worker's journal.
    fn serve(
        &mut self,
        shard: u32,
        plan: &crate::protocol::CampaignPlan,
        trace_requested: bool,
        out: &mut impl Write,
    ) -> io::Result<Frame> {
        let plan_fingerprint = plan.to_json();
        let sink = match &self.session {
            Some((known, sink)) => {
                if *known != plan_fingerprint {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "lease belongs to a different campaign than this worker's journal",
                    ));
                }
                sink
            }
            None => {
                let (sink, _completed) = self.store.resume_or_create(&plan.config, plan.shards)?;
                &self.session.insert((plan_fingerprint, sink)).1
            }
        };

        // Transport knobs (inflight, external solver command) come from
        // this worker's environment — the overlap/pipe equivalence laws
        // guarantee they cannot change results, only throughput.
        let exec = ExecConfig {
            shards: plan.shards,
            ..ExecConfig::from_env()
        };
        let mut fuzzer = (self.factory)(shard);
        let started = Instant::now();
        let result = {
            let _span = o4a_obs::trace::span("dist", "lease.serve").arg("shard", u64::from(shard));
            let mut instrumented = Instrumented {
                inner: fuzzer.as_mut(),
                out,
                shard,
                cases: 0,
                every: self.cfg.progress_every.max(1),
                started,
                crash: self.cfg.crash.as_ref(),
                slow_case_ms: self.cfg.slow_case_ms,
                trace: trace_requested,
                trace_spill: &mut self.trace_spill,
                trace_shed: &mut self.trace_shed,
            };
            run_shard_lease(&mut instrumented, &plan.config, &exec, shard, Some(sink))
        };
        // `run_shard_lease` journaled `shard_done` (fsync'd) through the
        // sink before returning — only now may the coordinator learn the
        // lease is complete, and only now may `re-adopt` replay it.
        self.completed.push(CompletedLease {
            shard,
            cases: result.stats.cases,
            findings: result.findings.len() as u64,
        });
        // The done frame flushes the whole trace spill (the lease span
        // just closed, so its events are in the ring now) and carries
        // the shard's final per-solver coverage for the scope plane's
        // live view. Both stay off the wire unless the lease asked.
        let coverage: BTreeMap<String, f64> = if trace_requested {
            result
                .final_coverage
                .iter()
                .map(|(id, cov)| (id.name().to_string(), cov.line_pct))
                .collect()
        } else {
            BTreeMap::new()
        };
        Ok(Frame::Done {
            shard,
            cases: result.stats.cases,
            findings: result.findings.len() as u64,
            cases_per_sec: rate(result.stats.cases, started),
            metrics: metrics_attachment(),
            cache: CacheCounters {
                hits: result.stats.cache_hits,
                misses: result.stats.cache_misses,
                prefix_reuses: result.stats.prefix_reuses,
            },
            trace: trace_attachment(
                trace_requested,
                &mut self.trace_spill,
                &mut self.trace_shed,
                usize::MAX,
            ),
            coverage,
        })
    }

    /// True once the leave-after-N-leases injection should fire.
    fn leave_due(&self) -> bool {
        self.cfg
            .leave_after_leases
            .is_some_and(|n| self.completed.len() as u32 >= n)
    }
}

/// Runs the pipe worker loop: announce the journal, serve leases from
/// `input` until EOF (or a `goodbye`), emit `progress`/`done` frames on
/// `output`. `factory(shard)` builds the fuzzer for each lease — it
/// must be the same factory every worker of the campaign uses, or shard
/// results stop being a pure function of the plan.
///
/// # Errors
///
/// Protocol violations (malformed frames, a lease from a different
/// campaign than the first one, frames only workers may send) and
/// journal I/O errors.
pub fn run_worker<F>(
    factory: F,
    cfg: &WorkerConfig,
    input: impl BufRead,
    mut output: impl Write,
) -> io::Result<()>
where
    F: Fn(u32) -> Box<dyn Fuzzer>,
{
    let announce = Frame::JournalPath {
        worker: cfg.worker_id,
        path: cfg.journal.display().to_string(),
    };
    writeln!(output, "{}", announce.to_line())?;
    output.flush()?;

    // First-install-wins: a host that already installed an ObsConfig
    // programmatically (tests) keeps it; otherwise the worker's own
    // environment decides.
    o4a_obs::init_from_env();
    // Flushes this process's trace ring and metrics registry on every
    // exit path — clean shutdown, protocol error, or a panicking lease.
    // Only a hard crash (the injected `exit(9)`) loses the ring, and
    // that is best-effort by design.
    let _drain = o4a_obs::DrainGuard::new();

    let mut server = LeaseServer {
        factory: &factory,
        cfg,
        store: FindingsStore::new(&cfg.journal),
        session: None,
        completed: Vec::new(),
        trace_spill: VecDeque::new(),
        trace_shed: 0,
    };
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let shard_plan = match Frame::from_line(&line)? {
            Frame::Lease { shard, plan, trace } => (shard, plan, trace),
            Frame::Goodbye { .. } => break,
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "worker expects only lease/goodbye frames on stdin",
                ));
            }
        };
        let done = server.serve(shard_plan.0, &shard_plan.1, shard_plan.2, &mut output)?;
        writeln!(output, "{}", done.to_line())?;
        output.flush()?;
        if server.leave_due() {
            let farewell = Frame::Goodbye {
                worker: cfg.worker_id,
            };
            let _ = writeln!(output, "{}", farewell.to_line());
            let _ = output.flush();
            break;
        }
    }
    Ok(())
}

/// Runs the TCP worker loop: connect to the coordinator at `addr`
/// (retrying for `reconnect_window` — it may not be up *yet*, or may be
/// restarting), introduce this worker with `hello`, serve leases, and
/// on any connection loss reconnect and `re-adopt`. Returns when the
/// coordinator says `goodbye`, when the leave-after-leases injection
/// fires, or with an error once the coordinator stays unreachable past
/// `reconnect_window`.
///
/// The window bounds *continuous* unreachability: it rearms after every
/// successful connect.
///
/// # Errors
///
/// Protocol violations, journal I/O errors, and a coordinator
/// unreachable for longer than `reconnect_window`.
pub fn run_worker_tcp<F>(
    factory: F,
    cfg: &WorkerConfig,
    addr: &str,
    reconnect_window: Duration,
) -> io::Result<()>
where
    F: Fn(u32) -> Box<dyn Fuzzer>,
{
    o4a_obs::init_from_env();
    // Same RAII drain barrier as the pipe loop: every return path —
    // goodbye, leave injection, protocol error, panic — flushes the
    // ring and registry.
    let _drain = o4a_obs::DrainGuard::new();
    let mut server = LeaseServer {
        factory: &factory,
        cfg,
        store: FindingsStore::new(&cfg.journal),
        session: None,
        completed: Vec::new(),
        trace_spill: VecDeque::new(),
        trace_shed: 0,
    };
    let mut connections = 0u64;
    loop {
        let stream = connect_with_retry(addr, reconnect_window)?;
        connections += 1;
        let mut out = stream.try_clone()?;

        // hello — and, past the first connection, the cumulative
        // re-adopt list (one write, so they land in one coordinator
        // drain). On a *re*connect the previous coordinator may have
        // died before reading any number of our done frames; replaying
        // every completion is idempotent on the other end.
        let mut greeting = Frame::Hello {
            worker: cfg.worker_id,
            journal: cfg.journal.display().to_string(),
        }
        .to_line();
        greeting.push('\n');
        if connections > 1 {
            greeting.push_str(
                &Frame::ReAdopt {
                    worker: cfg.worker_id,
                    completed: server.completed.clone(),
                }
                .to_line(),
            );
            greeting.push('\n');
        }
        if out
            .write_all(greeting.as_bytes())
            .and_then(|()| out.flush())
            .is_err()
        {
            continue; // died mid-handshake; reconnect
        }
        o4a_obs::trace::event(
            "dist",
            if connections > 1 {
                "worker.reconnect"
            } else {
                "worker.connect"
            },
            &[("worker", u64::from(cfg.worker_id))],
        );

        let reader = BufReader::new(stream);
        for line in reader.lines() {
            let Ok(line) = line else {
                break; // connection error → reconnect
            };
            if line.trim().is_empty() {
                continue;
            }
            match Frame::from_line(&line)? {
                Frame::Lease { shard, plan, trace } => {
                    let done = server.serve(shard, &plan, trace, &mut out)?;
                    let sent = writeln!(out, "{}", done.to_line())
                        .and_then(|()| out.flush())
                        .is_ok();
                    if server.leave_due() {
                        let farewell = Frame::Goodbye {
                            worker: cfg.worker_id,
                        };
                        let _ = writeln!(out, "{}", farewell.to_line());
                        let _ = out.flush();
                        return Ok(());
                    }
                    if !sent {
                        break; // done frame lost → reconnect + re-adopt
                    }
                }
                Frame::Goodbye { .. } => {
                    return Ok(());
                }
                _ => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "worker expects only lease/goodbye frames from the coordinator",
                    ));
                }
            }
        }
        // EOF without goodbye: the coordinator died — reconnect and
        // re-adopt (the checkpoint will have it back, or the campaign is
        // truly gone and the window expires above).
    }
}
