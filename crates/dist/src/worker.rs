//! The worker side of a distributed campaign: a lease-execution loop
//! around [`o4a_exec::run_shard_lease`].
//!
//! A worker process announces its findings journal, then serves leases
//! read off stdin until EOF: each `lease` frame names one shard of the
//! campaign plan, the worker runs it with the repo's standard shard
//! engine (every finding fsync'd into the worker's own journal the
//! moment it is recorded), and the `done` frame goes out only **after**
//! the shard's completion record is durable. Heartbeat `progress`
//! frames flow while the shard runs so the coordinator's per-worker
//! deadline can tell a slow worker from a wedged one.
//!
//! Crash injection (for the recovery gauntlet) lives here too: a worker
//! configured with [`CrashInjection`] dies abruptly — mid-lease, after
//! its journal already holds any findings discovered so far — the first
//! time it reaches the named shard. A token file makes the crash
//! once-per-campaign: the re-issued lease (on this or any other worker)
//! finds the token and runs to completion, which is exactly the
//! kill-mid-lease scenario the merge must absorb losslessly.

use crate::protocol::{CacheCounters, Frame};
use o4a_core::{Fuzzer, TestCase};
use o4a_exec::json::Json;
use o4a_exec::{run_shard_lease, ExecConfig, FindingsStore, StoreSession};
use o4a_obs::metrics::MetricsSnapshot;
use rand::rngs::StdRng;
use std::io::{self, BufRead, Write};
use std::path::PathBuf;
use std::time::Instant;

/// Cases between `progress` heartbeats.
pub const DEFAULT_PROGRESS_EVERY: u64 = 16;

/// Deterministic die-mid-lease injection for the crash-recovery
/// gauntlet.
#[derive(Clone, Debug)]
pub struct CrashInjection {
    /// Crash while running this shard.
    pub shard: u32,
    /// ... after generating this many cases of it (mid-lease).
    pub after_cases: u64,
    /// Once-only latch: the crash fires only if atomically creating this
    /// file succeeds, so a campaign crashes exactly once no matter which
    /// worker (or respawn) reaches the shard first.
    pub token: PathBuf,
}

/// Worker-process configuration (everything the binary's command line
/// carries).
#[derive(Clone, Debug)]
pub struct WorkerConfig {
    /// The findings journal this worker appends to. Unique per worker
    /// *process* — a respawned worker gets a fresh journal, so a crashed
    /// predecessor's torn tail can never sit in the middle of a live
    /// file.
    pub journal: PathBuf,
    /// Worker id, echoed in the `journal-path` frame.
    pub worker_id: u32,
    /// Cases between `progress` heartbeats.
    pub progress_every: u64,
    /// Optional die-mid-lease injection.
    pub crash: Option<CrashInjection>,
}

impl WorkerConfig {
    /// A worker bound to `journal` with default heartbeat cadence and no
    /// crash injection.
    pub fn new(journal: impl Into<PathBuf>, worker_id: u32) -> WorkerConfig {
        WorkerConfig {
            journal: journal.into(),
            worker_id,
            progress_every: DEFAULT_PROGRESS_EVERY,
            crash: None,
        }
    }
}

/// Wraps the shard's fuzzer to tap the case stream: heartbeats every
/// `every` cases and the optional crash injection, both riding
/// `next_case` so no engine code changes. The inner fuzzer's RNG usage
/// is untouched — instrumentation cannot perturb the campaign.
struct Instrumented<'a, W: Write> {
    inner: &'a mut dyn Fuzzer,
    out: &'a mut W,
    shard: u32,
    cases: u64,
    every: u64,
    /// When the lease started, for the live cases/sec in heartbeats.
    /// Wall-clock flows *out* of the engine here, never back in.
    started: Instant,
    crash: Option<&'a CrashInjection>,
}

/// Throughput over the lease so far; zero before the clock has
/// measurably advanced.
fn rate(cases: u64, since: Instant) -> f64 {
    let secs = since.elapsed().as_secs_f64();
    if secs <= 0.0 {
        0.0
    } else {
        cases as f64 / secs
    }
}

/// The worker's cumulative metrics, attached to outbound frames only
/// when `O4A_METRICS` is on (frames stay small otherwise).
fn metrics_attachment() -> Option<MetricsSnapshot> {
    if o4a_obs::metrics_enabled() {
        Some(o4a_obs::metrics::snapshot())
    } else {
        None
    }
}

impl<W: Write> Fuzzer for Instrumented<'_, W> {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn setup(&mut self, rng: &mut StdRng) -> u64 {
        self.inner.setup(rng)
    }

    fn next_case(&mut self, rng: &mut StdRng) -> TestCase {
        if let Some(crash) = self.crash {
            if crash.shard == self.shard && self.cases == crash.after_cases && latch(crash) {
                // Die like a segfault: no unwinding, no flushes. Findings
                // journaled so far are already fsync'd; the in-flight
                // shard has no completion record and re-runs elsewhere.
                eprintln!(
                    "dist worker: injected crash mid-lease (shard {})",
                    self.shard
                );
                std::process::exit(9);
            }
        }
        self.cases += 1;
        if self.cases.is_multiple_of(self.every) {
            // Heartbeat only; a failed write means the coordinator is
            // gone and the worker will exit on stdin EOF shortly.
            // The lease's cache counters live in the shard stats, which
            // only exist once the lease completes — heartbeats carry the
            // zero trio (omitted on the wire), the `done` frame the real
            // one.
            let frame = Frame::Progress {
                shard: self.shard,
                cases: self.cases,
                cases_per_sec: rate(self.cases, self.started),
                metrics: metrics_attachment(),
                cache: CacheCounters::default(),
            };
            let _ = writeln!(self.out, "{}", frame.to_line());
            let _ = self.out.flush();
        }
        self.inner.next_case(rng)
    }
}

/// Atomically claims the crash token; true when this process should die.
fn latch(crash: &CrashInjection) -> bool {
    std::fs::OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(&crash.token)
        .is_ok()
}

/// Runs the worker loop: announce the journal, serve leases from
/// `input` until EOF, emit `progress`/`done` frames on `output`.
/// `factory(shard)` builds the fuzzer for each lease — it must be the
/// same factory every worker of the campaign uses, or shard results
/// stop being a pure function of the plan.
///
/// # Errors
///
/// Protocol violations (malformed frames, a lease from a different
/// campaign than the first one, non-lease frames on stdin) and journal
/// I/O errors.
pub fn run_worker<F>(
    factory: F,
    cfg: &WorkerConfig,
    input: impl BufRead,
    mut output: impl Write,
) -> io::Result<()>
where
    F: Fn(u32) -> Box<dyn Fuzzer>,
{
    let announce = Frame::JournalPath {
        worker: cfg.worker_id,
        path: cfg.journal.display().to_string(),
    };
    writeln!(output, "{}", announce.to_line())?;
    output.flush()?;

    // First-install-wins: a host that already installed an ObsConfig
    // programmatically (tests) keeps it; otherwise the worker's own
    // environment decides.
    o4a_obs::init_from_env();

    let store = FindingsStore::new(&cfg.journal);
    let mut session: Option<(Json, StoreSession)> = None;
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let Frame::Lease { shard, plan } = Frame::from_line(&line)? else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "worker expects only lease frames on stdin",
            ));
        };
        let plan_fingerprint = plan.to_json();
        let sink = match &session {
            Some((known, sink)) => {
                if *known != plan_fingerprint {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "lease belongs to a different campaign than this worker's journal",
                    ));
                }
                sink
            }
            None => {
                let (sink, _completed) = store.resume_or_create(&plan.config, plan.shards)?;
                &session.insert((plan_fingerprint, sink)).1
            }
        };

        // Transport knobs (inflight, external solver command) come from
        // this worker's environment — the overlap/pipe equivalence laws
        // guarantee they cannot change results, only throughput.
        let exec = ExecConfig {
            shards: plan.shards,
            ..ExecConfig::from_env()
        };
        let mut fuzzer = factory(shard);
        let started = Instant::now();
        let result = {
            let _span = o4a_obs::trace::span("dist", "lease.serve").arg("shard", u64::from(shard));
            let mut instrumented = Instrumented {
                inner: fuzzer.as_mut(),
                out: &mut output,
                shard,
                cases: 0,
                every: cfg.progress_every.max(1),
                started,
                crash: cfg.crash.as_ref(),
            };
            run_shard_lease(&mut instrumented, &plan.config, &exec, shard, Some(sink))
        };
        // `run_shard_lease` journaled `shard_done` (fsync'd) through the
        // sink before returning — only now may the coordinator learn the
        // lease is complete.
        let done = Frame::Done {
            shard,
            cases: result.stats.cases,
            findings: result.findings.len() as u64,
            cases_per_sec: rate(result.stats.cases, started),
            metrics: metrics_attachment(),
            cache: CacheCounters {
                hits: result.stats.cache_hits,
                misses: result.stats.cache_misses,
                prefix_reuses: result.stats.prefix_reuses,
            },
        };
        writeln!(output, "{}", done.to_line())?;
        output.flush()?;
    }
    // Flush this process's trace ring and metrics registry to their
    // files before the clean exit; losing them on a *crash* is fine (the
    // ring is best-effort), losing them on EOF would not be.
    if let Err(e) = o4a_obs::drain() {
        eprintln!("o4a-obs: worker drain failed: {e}");
    }
    Ok(())
}
