//! The JSONL control protocol between the coordinator and its workers.
//!
//! Frames ride the transport ([`crate::transport`]: stdin/stdout pipes
//! or a TCP connection) one JSON object per line — the same framing the
//! findings journal uses, so a torn line is always the *last* one.
//!
//! The original pipe-era frames:
//!
//! * `lease` (coordinator → worker) — grants shard `shard` of an
//!   `N`-way campaign plan. The full plan rides in every frame
//!   ([`CampaignPlan`]), so frames are stateless and a worker can join
//!   mid-campaign (a respawn after a crash) with no handshake.
//! * `journal-path` (worker → coordinator) — the pipe worker's first
//!   frame: announces where its findings journal lives and doubles as
//!   the liveness signal that the process came up.
//! * `progress` (worker → coordinator) — heartbeat while a lease runs:
//!   cases generated so far, live throughput, and (when `O4A_METRICS`
//!   is on in the worker) a cumulative metrics snapshot. Its absence
//!   past the coordinator's deadline is what gets a wedged worker
//!   killed and its lease re-issued.
//! * `done` (worker → coordinator) — the lease ran to completion. Sent
//!   strictly **after** the shard's `shard_done` record is fsync'd into
//!   the worker's journal — the ordering that lets the coordinator
//!   treat a `done` frame as proof the merge will find the shard.
//!
//! The elastic-fleet frames (TCP transport):
//!
//! * `hello` (worker → coordinator) — the first frame on **every** TCP
//!   connection: the worker's identity and journal path (the TCP
//!   counterpart of `journal-path`). A worker may connect at any point
//!   of a running campaign — that is elastic scale-out.
//! * `re-adopt` (worker → coordinator) — sent right after `hello` on a
//!   *re*-connection: the leases this worker process completed whose
//!   `done` frames may have been lost with the previous connection
//!   (e.g. a coordinator that died and restarted). The list is
//!   cumulative for the process and idempotent to replay — a
//!   completion the coordinator already knows is a no-op.
//! * `goodbye` — worker → coordinator: the worker is leaving the fleet
//!   voluntarily (elastic scale-in; a held lease goes back to the
//!   queue). Coordinator → worker: the campaign is complete — exit
//!   instead of treating the connection loss as a coordinator death
//!   and reconnecting.
//!
//! Over pipes there is still no shutdown frame: the coordinator closes
//! the worker's stdin, and the worker exits on EOF. Over TCP a closed
//! connection is ambiguous (death or completion), which is what
//! `goodbye` disambiguates.

use o4a_core::CampaignConfig;
use o4a_exec::json::{obj, parse, Json};
use o4a_obs::metrics::MetricsSnapshot;
use o4a_obs::trace::TraceEvent;
use o4a_solvers::{EngineConfig, SolverId};
use std::collections::BTreeMap;
use std::io;

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// A campaign plan as shipped inside a `lease` frame: the full campaign
/// configuration plus the total shard count of the plan. Every worker
/// reconstructs the exact [`CampaignConfig`] from it, which is what makes
/// a lease executed on any machine produce the bit-identical shard
/// result.
#[derive(Clone, Debug)]
pub struct CampaignPlan {
    /// The campaign configuration (identical on every worker).
    pub config: CampaignConfig,
    /// Total shards in the plan (`config` splits `shards` ways).
    pub shards: u32,
}

impl CampaignPlan {
    /// Encodes the plan. The encoding is canonical (sorted object keys),
    /// so two equal plans encode to equal JSON — workers use that to
    /// check that every lease belongs to the same campaign.
    pub fn to_json(&self) -> Json {
        let solvers: Vec<Json> = self
            .config
            .solvers
            .iter()
            .map(|(id, commit)| {
                Json::Arr(vec![
                    Json::Str(id.name().to_string()),
                    Json::U64(*commit as u64),
                ])
            })
            .collect();
        obj(vec![
            ("seed", Json::U64(self.config.seed)),
            ("shards", Json::U64(self.shards as u64)),
            ("virtual_hours", Json::U64(self.config.virtual_hours as u64)),
            ("time_scale", Json::U64(self.config.time_scale)),
            ("max_cases", Json::U64(self.config.max_cases as u64)),
            (
                "engine",
                obj(vec![
                    (
                        "max_assignments",
                        Json::U64(self.config.engine.max_assignments as u64),
                    ),
                    ("eval_budget", Json::U64(self.config.engine.eval_budget)),
                    (
                        "timeout_micros",
                        Json::U64(self.config.engine.timeout_micros),
                    ),
                    ("bugs_enabled", Json::Bool(self.config.engine.bugs_enabled)),
                ]),
            ),
            ("solvers", Json::Arr(solvers)),
        ])
    }

    /// Decodes a plan.
    ///
    /// # Errors
    ///
    /// Missing fields, unknown solver names, malformed structure.
    pub fn from_json(json: &Json) -> io::Result<CampaignPlan> {
        let engine_json = json.get("engine").ok_or_else(|| bad("missing engine"))?;
        let engine = EngineConfig {
            max_assignments: u64_field(engine_json, "max_assignments")? as usize,
            eval_budget: u64_field(engine_json, "eval_budget")?,
            timeout_micros: u64_field(engine_json, "timeout_micros")?,
            bugs_enabled: match engine_json.get("bugs_enabled") {
                Some(Json::Bool(b)) => *b,
                _ => return Err(bad("missing bool field 'bugs_enabled'")),
            },
        };
        let mut solvers = Vec::new();
        for entry in json
            .get("solvers")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing solvers"))?
        {
            let pair = entry.as_arr().ok_or_else(|| bad("bad solver entry"))?;
            if pair.len() != 2 {
                return Err(bad("solver entry needs [name, commit]"));
            }
            let name = pair[0].as_str().ok_or_else(|| bad("bad solver name"))?;
            let id = SolverId::ALL
                .into_iter()
                .find(|s| s.name() == name)
                .ok_or_else(|| bad(format!("unknown solver '{name}'")))?;
            let commit = pair[1].as_u64().ok_or_else(|| bad("bad commit index"))? as u32;
            solvers.push((id, commit));
        }
        Ok(CampaignPlan {
            config: CampaignConfig {
                virtual_hours: u64_field(json, "virtual_hours")? as u32,
                time_scale: u64_field(json, "time_scale")?,
                solvers,
                engine,
                seed: u64_field(json, "seed")?,
                max_cases: u64_field(json, "max_cases")? as usize,
            },
            shards: u64_field(json, "shards")? as u32,
        })
    }
}

/// One control-protocol frame. See the module docs for who sends what
/// and when.
#[derive(Clone, Debug)]
pub enum Frame {
    /// Coordinator → worker: run shard `shard` of `plan`.
    Lease {
        /// The shard index granted.
        shard: u32,
        /// The campaign plan the shard belongs to.
        plan: CampaignPlan,
        /// The coordinator wants the worker's trace ring piggybacked on
        /// `progress`/`done` frames (fleet-merged tracing). Absent on
        /// the wire when false, so trace-off leases stay byte-identical
        /// to the pre-scope protocol; workers with tracing disabled
        /// ignore it (they have nothing buffered to send).
        trace: bool,
    },
    /// Worker → coordinator: startup announcement of the worker's
    /// findings-journal location.
    JournalPath {
        /// The worker's id (as passed on its command line).
        worker: u32,
        /// Absolute or coordinator-relative journal path.
        path: String,
    },
    /// Worker → coordinator: heartbeat during a lease.
    Progress {
        /// The shard the lease covers.
        shard: u32,
        /// Cases generated so far in this lease.
        cases: u64,
        /// Live throughput of the in-flight lease, cases per wall-clock
        /// second. Purely informational (the coordinator renders it;
        /// nothing schedules on it), so `0.0` from an old worker is fine.
        cases_per_sec: f64,
        /// The worker's metrics snapshot, attached only when
        /// `O4A_METRICS` is on in the worker's environment. Snapshots
        /// are cumulative per process — the coordinator keeps the
        /// latest, it does not sum heartbeats.
        metrics: Option<MetricsSnapshot>,
        /// Verdict-cache and affinity counters for the lease so far
        /// (hits, misses, prefix reuses) — cumulative per process, like
        /// the metrics snapshot. All zero (and absent on the wire) when
        /// neither knob is on; frames from workers predating the
        /// counters read as zero.
        cache: CacheCounters,
        /// A bounded batch of the worker's trace ring, attached only
        /// when the lease asked for it ([`Frame::Lease`] `trace`) and
        /// the worker has tracing on. Like `metrics`: absent is fine,
        /// present-but-corrupt is a protocol error.
        trace: Option<TraceBatch>,
    },
    /// Worker → coordinator: the lease ran to completion (and its
    /// `shard_done` record is already durable in the journal).
    Done {
        /// The completed shard.
        shard: u32,
        /// Cases the shard executed.
        cases: u64,
        /// Findings the shard recorded.
        findings: u64,
        /// Throughput of the completed lease, cases per wall-clock second.
        cases_per_sec: f64,
        /// Cumulative worker metrics snapshot (see [`Frame::Progress`]).
        metrics: Option<MetricsSnapshot>,
        /// The completed lease's verdict-cache and affinity counters
        /// (from the shard's [`o4a_core::CampaignStats`], so they match
        /// what the journal merge reconstructs).
        cache: CacheCounters,
        /// Trace-ring batch (see [`Frame::Progress`]).
        trace: Option<TraceBatch>,
        /// Final per-solver line-coverage percentages of the completed
        /// shard — the scope plane's live coverage view. Empty (and
        /// absent on the wire) unless the lease asked for tracing, so
        /// scope-off frames stay byte-identical.
        coverage: BTreeMap<String, f64>,
    },
    /// Worker → coordinator: the first frame on every TCP connection —
    /// identity plus journal location (the TCP `journal-path`).
    Hello {
        /// The worker's id (as passed on its command line).
        worker: u32,
        /// Absolute or coordinator-relative journal path.
        journal: String,
    },
    /// Worker → coordinator, after `hello` on a re-connection: every
    /// lease this worker process has completed (fsync'd `shard_done` in
    /// its journal), in case the `done` frames died with the previous
    /// connection. Idempotent — completions the coordinator already
    /// credited are no-ops.
    ReAdopt {
        /// The worker's id.
        worker: u32,
        /// All leases completed by this process so far.
        completed: Vec<CompletedLease>,
    },
    /// Either direction: a deliberate farewell. From a worker it means
    /// "leaving the fleet" (elastic scale-in); from the coordinator it
    /// means "campaign complete, exit" — so the worker's reconnect loop
    /// can tell completion from a coordinator death.
    Goodbye {
        /// The departing worker's id (coordinator → worker frames echo
        /// the recipient's id).
        worker: u32,
    },
}

/// One durable lease completion as carried by a [`Frame::ReAdopt`]:
/// enough for the coordinator to credit the shard without the original
/// `done` frame (cache/metrics detail is reconstructed by the journal
/// merge either way).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompletedLease {
    /// The completed shard.
    pub shard: u32,
    /// Cases the shard executed.
    pub cases: u64,
    /// Findings the shard recorded.
    pub findings: u64,
}

/// The verdict-cache/affinity counter trio that rides `progress` and
/// `done` frames. A plain struct (not a snapshot) because these counters
/// are part of the campaign stats, not the write-only obs layer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Queries answered from the verdict cache.
    pub hits: u64,
    /// Queries that missed the cache and paid a fresh solve.
    pub misses: u64,
    /// Session queries that reused a held declaration prefix.
    pub prefix_reuses: u64,
}

impl CacheCounters {
    /// True when every counter is zero (the trio is omitted from the
    /// wire encoding, keeping cache-off frames byte-identical to the
    /// pre-cache protocol).
    pub fn is_zero(&self) -> bool {
        *self == CacheCounters::default()
    }

    fn encode_into(&self, fields: &mut Vec<(&'static str, Json)>) {
        if !self.is_zero() {
            fields.push(("cache_hits", Json::U64(self.hits)));
            fields.push(("cache_misses", Json::U64(self.misses)));
            fields.push(("prefix_reuses", Json::U64(self.prefix_reuses)));
        }
    }

    fn decode(json: &Json) -> CacheCounters {
        CacheCounters {
            hits: u64_field_or_zero(json, "cache_hits"),
            misses: u64_field_or_zero(json, "cache_misses"),
            prefix_reuses: u64_field_or_zero(json, "prefix_reuses"),
        }
    }
}

/// A bounded slice of one worker's trace ring, riding a `progress` or
/// `done` frame toward the coordinator's fleet-merged Chrome trace.
/// Batches are cut from the ring in drain order; `dropped` carries ring
/// overflow plus any events the worker had to shed to keep frames
/// bounded, so the merged trace is honest about gaps.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceBatch {
    /// The recording worker process.
    pub pid: u64,
    /// Unix micros of that process's monotonic epoch
    /// ([`o4a_obs::trace::epoch_unix_micros`]) — lets the coordinator
    /// align all lanes onto one time axis.
    pub epoch_unix_micros: u64,
    /// Events lost before this batch (ring overflow + batch shedding).
    pub dropped: u64,
    /// The events, in the ring's deterministic `(ts, tid)` order.
    pub events: Vec<TraceEvent>,
}

impl TraceBatch {
    /// True when there is nothing to report (omitted from the wire).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.dropped == 0
    }

    fn to_json(&self) -> Json {
        obj(vec![
            ("pid", Json::U64(self.pid)),
            ("epoch_unix_micros", Json::U64(self.epoch_unix_micros)),
            ("dropped", Json::U64(self.dropped)),
            (
                "events",
                Json::Arr(self.events.iter().map(TraceEvent::to_json).collect()),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<TraceBatch, String> {
        let field = |key: &str| {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("trace batch missing {key}"))
        };
        let mut events = Vec::new();
        for entry in v
            .get("events")
            .and_then(Json::as_arr)
            .ok_or("trace batch missing events")?
        {
            events.push(TraceEvent::from_json(entry)?);
        }
        Ok(TraceBatch {
            pid: field("pid")?,
            epoch_unix_micros: field("epoch_unix_micros")?,
            dropped: field("dropped")?,
            events,
        })
    }
}

impl Frame {
    /// Serializes the frame to one JSONL line (no trailing newline).
    pub fn to_line(&self) -> String {
        let json = match self {
            Frame::Lease { shard, plan, trace } => {
                let mut fields = vec![
                    ("t", Json::Str("lease".into())),
                    ("shard", Json::U64(*shard as u64)),
                    ("campaign", plan.to_json()),
                ];
                if *trace {
                    fields.push(("trace", Json::Bool(true)));
                }
                obj(fields)
            }
            Frame::JournalPath { worker, path } => obj(vec![
                ("t", Json::Str("journal-path".into())),
                ("worker", Json::U64(*worker as u64)),
                ("path", Json::Str(path.clone())),
            ]),
            Frame::Progress {
                shard,
                cases,
                cases_per_sec,
                metrics,
                cache,
                trace,
            } => {
                let mut fields = vec![
                    ("t", Json::Str("progress".into())),
                    ("shard", Json::U64(*shard as u64)),
                    ("cases", Json::U64(*cases)),
                    ("cps", Json::F64(*cases_per_sec)),
                ];
                if let Some(snapshot) = metrics {
                    fields.push(("metrics", snapshot.to_json()));
                }
                cache.encode_into(&mut fields);
                if let Some(batch) = trace {
                    fields.push(("trace", batch.to_json()));
                }
                obj(fields)
            }
            Frame::Done {
                shard,
                cases,
                findings,
                cases_per_sec,
                metrics,
                cache,
                trace,
                coverage,
            } => {
                let mut fields = vec![
                    ("t", Json::Str("done".into())),
                    ("shard", Json::U64(*shard as u64)),
                    ("cases", Json::U64(*cases)),
                    ("findings", Json::U64(*findings)),
                    ("cps", Json::F64(*cases_per_sec)),
                ];
                if let Some(snapshot) = metrics {
                    fields.push(("metrics", snapshot.to_json()));
                }
                cache.encode_into(&mut fields);
                if let Some(batch) = trace {
                    fields.push(("trace", batch.to_json()));
                }
                if !coverage.is_empty() {
                    fields.push((
                        "coverage",
                        Json::Obj(
                            coverage
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::F64(*v)))
                                .collect(),
                        ),
                    ));
                }
                obj(fields)
            }
            Frame::Hello { worker, journal } => obj(vec![
                ("t", Json::Str("hello".into())),
                ("worker", Json::U64(*worker as u64)),
                ("journal", Json::Str(journal.clone())),
            ]),
            Frame::ReAdopt { worker, completed } => obj(vec![
                ("t", Json::Str("re-adopt".into())),
                ("worker", Json::U64(*worker as u64)),
                (
                    "completed",
                    Json::Arr(
                        completed
                            .iter()
                            .map(|c| {
                                Json::Arr(vec![
                                    Json::U64(c.shard as u64),
                                    Json::U64(c.cases),
                                    Json::U64(c.findings),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Frame::Goodbye { worker } => obj(vec![
                ("t", Json::Str("goodbye".into())),
                ("worker", Json::U64(*worker as u64)),
            ]),
        };
        json.to_line()
    }

    /// Parses one frame from a JSONL line.
    ///
    /// # Errors
    ///
    /// Malformed JSON, unknown frame tags, missing fields.
    pub fn from_line(line: &str) -> io::Result<Frame> {
        let json = parse(line).map_err(|e| bad(format!("corrupt frame: {e}")))?;
        let tag = json
            .get("t")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("frame without a 't' tag"))?;
        match tag {
            "lease" => Ok(Frame::Lease {
                shard: u64_field(&json, "shard")? as u32,
                plan: CampaignPlan::from_json(
                    json.get("campaign")
                        .ok_or_else(|| bad("missing campaign"))?,
                )?,
                trace: matches!(json.get("trace"), Some(Json::Bool(true))),
            }),
            "journal-path" => Ok(Frame::JournalPath {
                worker: u64_field(&json, "worker")? as u32,
                path: json
                    .get("path")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("missing path"))?
                    .to_string(),
            }),
            "progress" => Ok(Frame::Progress {
                shard: u64_field(&json, "shard")? as u32,
                cases: u64_field(&json, "cases")?,
                cases_per_sec: f64_field_or_zero(&json, "cps"),
                metrics: metrics_field(&json)?,
                cache: CacheCounters::decode(&json),
                trace: trace_field(&json)?,
            }),
            "done" => Ok(Frame::Done {
                shard: u64_field(&json, "shard")? as u32,
                cases: u64_field(&json, "cases")?,
                findings: u64_field(&json, "findings")?,
                cases_per_sec: f64_field_or_zero(&json, "cps"),
                metrics: metrics_field(&json)?,
                cache: CacheCounters::decode(&json),
                trace: trace_field(&json)?,
                coverage: coverage_field(&json)?,
            }),
            "hello" => Ok(Frame::Hello {
                worker: u64_field(&json, "worker")? as u32,
                journal: json
                    .get("journal")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("missing journal"))?
                    .to_string(),
            }),
            "re-adopt" => {
                let mut completed = Vec::new();
                for entry in json
                    .get("completed")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| bad("missing completed"))?
                {
                    let triple = entry.as_arr().ok_or_else(|| bad("bad completed entry"))?;
                    if triple.len() != 3 {
                        return Err(bad("completed entry needs [shard, cases, findings]"));
                    }
                    let field = |i: usize, what: &str| {
                        triple[i]
                            .as_u64()
                            .ok_or_else(|| bad(format!("bad completed {what}")))
                    };
                    completed.push(CompletedLease {
                        shard: field(0, "shard")? as u32,
                        cases: field(1, "cases")?,
                        findings: field(2, "findings")?,
                    });
                }
                Ok(Frame::ReAdopt {
                    worker: u64_field(&json, "worker")? as u32,
                    completed,
                })
            }
            "goodbye" => Ok(Frame::Goodbye {
                worker: u64_field(&json, "worker")? as u32,
            }),
            other => Err(bad(format!("unknown frame '{other}'"))),
        }
    }
}

fn u64_field(json: &Json, key: &str) -> io::Result<u64> {
    json.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| bad(format!("missing integer field '{key}'")))
}

/// Observability fields are additions to a live protocol: a frame
/// without them (an older worker) is still valid, it just reports no
/// throughput.
fn f64_field_or_zero(json: &Json, key: &str) -> f64 {
    json.get(key).and_then(Json::as_f64).unwrap_or(0.0)
}

/// Same tolerance for the cache counter trio: absent reads as zero.
fn u64_field_or_zero(json: &Json, key: &str) -> u64 {
    json.get(key).and_then(Json::as_u64).unwrap_or(0)
}

/// Absent `metrics` is `None`; a *present but malformed* snapshot is a
/// protocol error like any other corrupt field.
fn metrics_field(json: &Json) -> io::Result<Option<MetricsSnapshot>> {
    match json.get("metrics") {
        None | Some(Json::Null) => Ok(None),
        Some(v) => MetricsSnapshot::from_json(v)
            .map(Some)
            .map_err(|e| bad(format!("bad metrics snapshot: {e}"))),
    }
}

/// Same tolerance for the trace piggyback: absent is `None`, corrupt is
/// a protocol error.
fn trace_field(json: &Json) -> io::Result<Option<TraceBatch>> {
    match json.get("trace") {
        None | Some(Json::Null) => Ok(None),
        Some(v) => TraceBatch::from_json(v)
            .map(Some)
            .map_err(|e| bad(format!("bad trace batch: {e}"))),
    }
}

/// And for the coverage map: absent reads as empty, corrupt errors.
fn coverage_field(json: &Json) -> io::Result<BTreeMap<String, f64>> {
    match json.get("coverage") {
        None | Some(Json::Null) => Ok(BTreeMap::new()),
        Some(Json::Obj(map)) => {
            let mut out = BTreeMap::new();
            for (name, pct) in map {
                let pct = pct
                    .as_f64()
                    .ok_or_else(|| bad(format!("bad coverage for {name}")))?;
                out.insert(name.clone(), pct);
            }
            Ok(out)
        }
        Some(_) => Err(bad("coverage is not an object")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_metrics() -> MetricsSnapshot {
        let mut snapshot = MetricsSnapshot::default();
        snapshot.counters.insert("campaign.cases".into(), 48);
        snapshot.histograms.insert(
            "pipe.query_micros".into(),
            o4a_obs::metrics::HistogramSnapshot {
                count: 3,
                sum: 900,
                buckets: vec![(9, 3)],
            },
        );
        snapshot
    }

    fn sample_trace_batch() -> TraceBatch {
        TraceBatch {
            pid: 4242,
            epoch_unix_micros: 1_700_000_000_000_000,
            dropped: 1,
            events: vec![TraceEvent {
                ts_micros: 12,
                dur_micros: Some(3),
                cat: "dist".into(),
                name: "lease.serve".into(),
                tid: 1,
                args: vec![("shard".into(), 3)],
            }],
        }
    }

    fn plan() -> CampaignPlan {
        CampaignPlan {
            config: CampaignConfig {
                virtual_hours: 7,
                time_scale: 123,
                seed: 0xdead_beef_0000_0001,
                max_cases: 999,
                ..CampaignConfig::default()
            },
            shards: 5,
        }
    }

    #[test]
    fn plan_round_trips_canonically() {
        let p = plan();
        let encoded = p.to_json();
        let decoded = CampaignPlan::from_json(&encoded).unwrap();
        assert_eq!(decoded.to_json(), encoded, "decode(encode) not a fixpoint");
        assert_eq!(decoded.shards, 5);
        assert_eq!(decoded.config.seed, p.config.seed);
        assert_eq!(decoded.config.solvers, p.config.solvers);
        assert_eq!(
            decoded.config.engine.bugs_enabled,
            p.config.engine.bugs_enabled
        );
    }

    #[test]
    fn every_frame_kind_round_trips() {
        let frames = vec![
            Frame::Lease {
                shard: 3,
                plan: plan(),
                trace: false,
            },
            Frame::Lease {
                shard: 4,
                plan: plan(),
                trace: true,
            },
            Frame::JournalPath {
                worker: 2,
                path: "/tmp/worker-2.jsonl".into(),
            },
            Frame::Progress {
                shard: 3,
                cases: 40,
                cases_per_sec: 12.5,
                metrics: None,
                cache: CacheCounters::default(),
                trace: None,
            },
            Frame::Progress {
                shard: 3,
                cases: 48,
                cases_per_sec: 13.25,
                metrics: Some(sample_metrics()),
                cache: CacheCounters {
                    hits: 30,
                    misses: 18,
                    prefix_reuses: 0,
                },
                trace: Some(sample_trace_batch()),
            },
            Frame::Done {
                shard: 3,
                cases: 80,
                findings: 4,
                cases_per_sec: 10.0,
                metrics: Some(sample_metrics()),
                cache: CacheCounters {
                    hits: 60,
                    misses: 20,
                    prefix_reuses: 41,
                },
                trace: Some(sample_trace_batch()),
                coverage: BTreeMap::from([("oxiz".to_string(), 61.5), ("cervo".to_string(), 58.0)]),
            },
            Frame::Hello {
                worker: 7,
                journal: "/tmp/worker-7.jsonl".into(),
            },
            Frame::ReAdopt {
                worker: 7,
                completed: vec![],
            },
            Frame::ReAdopt {
                worker: 7,
                completed: vec![
                    CompletedLease {
                        shard: 1,
                        cases: 30,
                        findings: 2,
                    },
                    CompletedLease {
                        shard: 4,
                        cases: 28,
                        findings: 0,
                    },
                ],
            },
            Frame::Goodbye { worker: 7 },
        ];
        for frame in frames {
            let line = frame.to_line();
            assert!(!line.contains('\n'), "frames must be single lines");
            let back = Frame::from_line(&line).unwrap();
            assert_eq!(back.to_line(), line, "frame re-encode diverged");
        }
    }

    #[test]
    fn junk_frames_are_refused() {
        assert!(Frame::from_line("not json").is_err());
        assert!(Frame::from_line("{\"t\":\"warp\"}").is_err());
        assert!(Frame::from_line("{\"shard\":1}").is_err());
        // Elastic frames with missing or malformed fields.
        assert!(Frame::from_line("{\"t\":\"hello\",\"worker\":1}").is_err());
        assert!(Frame::from_line("{\"t\":\"re-adopt\",\"worker\":1}").is_err());
        assert!(
            Frame::from_line("{\"completed\":[[1,2]],\"t\":\"re-adopt\",\"worker\":1}").is_err(),
            "completed entries must be [shard, cases, findings] triples"
        );
        assert!(Frame::from_line("{\"t\":\"goodbye\"}").is_err());
    }

    /// Frames from a worker predating the observability fields still
    /// parse — throughput reads as zero, metrics as absent.
    #[test]
    fn observability_fields_are_optional() {
        let old = "{\"cases\":40,\"shard\":3,\"t\":\"progress\"}";
        let Frame::Progress {
            shard,
            cases,
            cases_per_sec,
            metrics,
            cache,
            trace,
        } = Frame::from_line(old).unwrap()
        else {
            panic!("expected progress frame");
        };
        assert_eq!((shard, cases), (3, 40));
        assert_eq!(cases_per_sec, 0.0);
        assert!(metrics.is_none());
        assert!(cache.is_zero(), "pre-cache frames read as zero counters");
        assert!(trace.is_none(), "pre-scope frames read as no trace batch");

        let old_done = "{\"cases\":80,\"findings\":2,\"shard\":3,\"t\":\"done\"}";
        assert!(matches!(
            Frame::from_line(old_done).unwrap(),
            Frame::Done {
                metrics: None,
                trace: None,
                ..
            }
        ));

        // A present-but-corrupt snapshot is a protocol error, not a
        // silent None.
        let corrupt = "{\"cases\":40,\"cps\":1.0,\"metrics\":7,\"shard\":3,\"t\":\"progress\"}";
        assert!(Frame::from_line(corrupt).is_err());

        // Cache-off frames omit the counter trio entirely — the wire
        // stays byte-identical to the pre-cache protocol.
        let off = Frame::Done {
            shard: 3,
            cases: 80,
            findings: 2,
            cases_per_sec: 0.0,
            metrics: None,
            cache: CacheCounters::default(),
            trace: None,
            coverage: BTreeMap::new(),
        };
        assert!(
            !off.to_line().contains("cache_"),
            "zero trio must not encode"
        );
        assert!(
            !off.to_line().contains("trace") && !off.to_line().contains("coverage"),
            "scope-off done frames must stay byte-identical to the old wire"
        );
    }

    /// The scope additions follow the same tolerance law as the PR 6
    /// metrics piggyback: absent fields read as inert defaults, corrupt
    /// fields are protocol errors.
    #[test]
    fn scope_fields_are_tolerant() {
        // A pre-scope lease reads as trace-off; a trace-off lease
        // encodes with no trace key at all.
        let lease = Frame::Lease {
            shard: 1,
            plan: plan(),
            trace: false,
        };
        assert!(!lease.to_line().contains("\"trace\""));
        assert!(matches!(
            Frame::from_line(&lease.to_line()).unwrap(),
            Frame::Lease { trace: false, .. }
        ));
        let on = Frame::Lease {
            shard: 1,
            plan: plan(),
            trace: true,
        };
        assert!(matches!(
            Frame::from_line(&on.to_line()).unwrap(),
            Frame::Lease { trace: true, .. }
        ));

        // Corrupt trace batches and coverage maps are refused.
        let bad_trace = "{\"cases\":40,\"shard\":3,\"t\":\"progress\",\"trace\":7}";
        assert!(Frame::from_line(bad_trace).is_err());
        let bad_cov =
            "{\"cases\":80,\"coverage\":{\"oxiz\":\"high\"},\"findings\":2,\"shard\":3,\"t\":\"done\"}";
        assert!(Frame::from_line(bad_cov).is_err());

        // A well-formed coverage map round-trips through the codec.
        let done =
            "{\"cases\":80,\"coverage\":{\"oxiz\":61.5},\"findings\":2,\"shard\":3,\"t\":\"done\"}";
        let Frame::Done { coverage, .. } = Frame::from_line(done).unwrap() else {
            panic!("expected done frame");
        };
        assert_eq!(coverage.get("oxiz"), Some(&61.5));
    }
}
