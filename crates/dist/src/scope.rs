//! o4a-scope: the coordinator's live observatory plane.
//!
//! A read-only HTTP/1.1 + SSE status server that rides the same
//! `poll(2)` reactor as the fleet itself — no thread, no runtime, no
//! extra wakeups beyond the accept tick the TCP listener already pays.
//! Three endpoints:
//!
//! * `GET /status` — one JSON snapshot of the fleet ([`ScopeStatus`]):
//!   lease churn, per-worker live throughput (raw + EWMA), running
//!   coverage maxima, straggler warnings.
//! * `GET /metrics` — Prometheus text exposition of the coordinator's
//!   merged [`o4a_obs::metrics::MetricsSnapshot`] plus fleet gauges.
//! * `GET /events` — an SSE stream of campaign milestones (leases
//!   granted / completed / re-issued, workers joining and dying,
//!   findings, coverage movement, straggler transitions).
//!
//! The plane is **observation only**: it never feeds scheduling, and a
//! slow, stuck, or malicious client costs the campaign nothing — a
//! client whose backlog passes [`OUTBUF_CAP`] is dropped, every write
//! is non-blocking, and every error path is "forget the client".
//! The scope-on ≡ scope-off gauntlet in
//! `crates/bench/tests/scope_plane.rs` pins the stronger claim: a
//! campaign polled on all three endpoints merges bit-identical results
//! to one that was never watched.

use crate::coordinator::{DistStats, WorkerSummary};
use crate::protocol::CacheCounters;
use crate::transport::Listener;
use o4a_exec::json::{obj, parse, Json};
use o4a_executor::{flush_outbuf, read_available, set_nonblocking, FdReactor, Interest};
use o4a_obs::serve::{http_response, parse_request, sse_event, sse_preamble, MAX_REQUEST_BYTES};
use std::collections::BTreeMap;
use std::io;
use std::net::TcpStream;
use std::os::unix::io::AsRawFd;
use std::task::Waker;
use std::time::{Duration, Instant};

/// A scope client that stops reading while this many response bytes
/// queue up is dropped — the observatory never buffers unboundedly for
/// a stalled observer.
pub const OUTBUF_CAP: usize = 256 * 1024;

/// One accepted observer connection.
struct ScopeClient {
    stream: TcpStream,
    inbuf: Vec<u8>,
    outbuf: Vec<u8>,
    /// Subscribed to `/events`: keep the connection open and append
    /// broadcast frames forever.
    sse: bool,
    /// A one-shot response is queued: close once `outbuf` drains.
    closing: bool,
    /// The request was consumed — later inbound bytes are ignored.
    done_reading: bool,
    /// The peer closed its side (EOF) — an SSE subscriber hanging up.
    peer_closed: bool,
}

/// The status plane: a non-blocking listener plus its observer
/// connections, serviced inside the coordinator's lease loop.
pub struct ScopeServer {
    listener: Listener,
    clients: Vec<ScopeClient>,
}

impl ScopeServer {
    /// Binds the observatory at `addr` (`host:port`; port 0 picks a
    /// free one, resolved in [`ScopeServer::local_addr`]).
    pub fn bind(addr: &str) -> io::Result<ScopeServer> {
        Ok(ScopeServer {
            listener: Listener::bind(addr)?,
            clients: Vec::new(),
        })
    }

    /// The actual listen address (port never 0).
    pub fn local_addr(&self) -> &str {
        self.listener.local_addr()
    }

    /// Registers the listener (with a `tick` deadline so accepts, SSE
    /// flushes, and straggler sweeps stay timely) and every client fd
    /// on the fleet reactor. Tokens append to `tokens` for the caller's
    /// deregister pass.
    pub fn register(
        &self,
        reactor: &FdReactor,
        waker: &Waker,
        tick: Duration,
        tokens: &mut Vec<u64>,
    ) {
        tokens.push(reactor.register(
            self.listener.fd(),
            Interest::Read,
            waker.clone(),
            Some(Instant::now() + tick),
        ));
        for client in &self.clients {
            tokens.push(reactor.register(
                client.stream.as_raw_fd(),
                Interest::Read,
                waker.clone(),
                None,
            ));
            if !client.outbuf.is_empty() {
                tokens.push(reactor.register(
                    client.stream.as_raw_fd(),
                    Interest::Write,
                    waker.clone(),
                    None,
                ));
            }
        }
    }

    /// One service pass: accept joiners, read and answer requests,
    /// flush backlogs, drop the dead. `status` and `metrics` render the
    /// respective payloads and are invoked at most once per pass — only
    /// when a request for that endpoint actually arrived.
    ///
    /// Entirely best-effort: client errors drop the client, never the
    /// campaign.
    pub fn service(
        &mut self,
        mut status: impl FnMut() -> String,
        mut metrics: impl FnMut() -> String,
    ) {
        while let Ok(Some(stream)) = self.listener.accept() {
            if set_nonblocking(stream.as_raw_fd()).is_err() {
                continue;
            }
            self.clients.push(ScopeClient {
                stream,
                inbuf: Vec::new(),
                outbuf: Vec::new(),
                sse: false,
                closing: false,
                done_reading: false,
                peer_closed: false,
            });
        }
        let mut status_body: Option<String> = None;
        let mut metrics_body: Option<String> = None;
        for client in &mut self.clients {
            if !client.peer_closed {
                loop {
                    match read_available(&mut client.stream, &mut client.inbuf) {
                        Ok(Some(0)) => {
                            client.peer_closed = true;
                            // EOF before a full request: nothing to
                            // answer, close once any backlog drains.
                            if !client.done_reading && !client.closing {
                                client.closing = true;
                            }
                            break;
                        }
                        Ok(Some(_)) => continue,
                        Ok(None) => break,
                        Err(_) => {
                            client.peer_closed = true;
                            client.closing = true;
                            client.outbuf.clear();
                            break;
                        }
                    }
                }
                if client.done_reading {
                    client.inbuf.clear();
                }
            }
            if !client.done_reading && !client.peer_closed && !client.closing {
                match parse_request(&client.inbuf) {
                    None => {
                        if client.inbuf.len() > MAX_REQUEST_BYTES {
                            client.outbuf = http_response(
                                431,
                                "Request Header Fields Too Large",
                                "text/plain",
                                "request too large\n",
                            );
                            client.closing = true;
                            client.done_reading = true;
                        }
                    }
                    Some(Err(_)) => {
                        client.outbuf =
                            http_response(400, "Bad Request", "text/plain", "bad request\n");
                        client.closing = true;
                        client.done_reading = true;
                    }
                    Some(Ok(req)) => {
                        client.done_reading = true;
                        match (req.method.as_str(), req.path.as_str()) {
                            ("GET", "/status") => {
                                let body = status_body.get_or_insert_with(&mut status);
                                client.outbuf = http_response(200, "OK", "application/json", body);
                                client.closing = true;
                            }
                            ("GET", "/metrics") => {
                                let body = metrics_body.get_or_insert_with(&mut metrics);
                                client.outbuf =
                                    http_response(200, "OK", "text/plain; version=0.0.4", body);
                                client.closing = true;
                            }
                            ("GET", "/events") => {
                                client.outbuf = sse_preamble();
                                client.sse = true;
                            }
                            ("GET", _) => {
                                client.outbuf = http_response(
                                    404,
                                    "Not Found",
                                    "text/plain",
                                    "unknown endpoint (try /status, /metrics, /events)\n",
                                );
                                client.closing = true;
                            }
                            _ => {
                                client.outbuf = http_response(
                                    405,
                                    "Method Not Allowed",
                                    "text/plain",
                                    "read-only plane: GET only\n",
                                );
                                client.closing = true;
                            }
                        }
                    }
                }
            }
        }
        self.flush();
    }

    /// Appends one SSE frame to every `/events` subscriber and tries to
    /// flush it out immediately.
    pub fn broadcast(&mut self, event: &str, data: &Json) {
        if !self.clients.iter().any(|c| c.sse) {
            return;
        }
        let frame = sse_event(event, &data.to_line());
        for client in &mut self.clients {
            if client.sse {
                client.outbuf.extend_from_slice(&frame);
            }
        }
        self.flush();
    }

    /// Non-blocking write pass; retires clients that errored, closed,
    /// finished their one-shot response, or fell too far behind.
    fn flush(&mut self) {
        self.clients.retain_mut(|client| {
            match flush_outbuf(&mut client.stream, &mut client.outbuf) {
                Err(_) => false,
                Ok(drained) => {
                    if client.outbuf.len() > OUTBUF_CAP {
                        return false; // observer stopped observing
                    }
                    if client.closing && drained {
                        return false; // response delivered
                    }
                    if client.sse && client.peer_closed {
                        return false; // subscriber hung up
                    }
                    true
                }
            }
        });
    }

    /// Connected observers (test / diagnostics hook).
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }
}

/// One live worker's row in [`ScopeStatus`].
#[derive(Clone, Debug, PartialEq)]
pub struct ScopeWorker {
    /// Worker id (spawn sequence over pipes, self-reported over TCP).
    pub worker: u32,
    /// The shard it currently holds, if any.
    pub lease: Option<u32>,
    /// Cases across its completed leases.
    pub cases: u64,
    /// Heartbeat progress of the in-flight lease.
    pub lease_cases: u64,
    /// Leases run to completion.
    pub leases_completed: u32,
    /// Latest self-reported throughput (cases/sec).
    pub cases_per_sec: f64,
    /// Smoothed throughput (EWMA over heartbeats) — what the straggler
    /// detector compares across the fleet.
    pub ewma_cases_per_sec: f64,
    /// Milliseconds since the last frame from this worker.
    pub last_heard_ms: u64,
    /// Milliseconds since the worker joined.
    pub wall_ms: u64,
    /// Flagged by the straggler detector this instant.
    pub straggler: bool,
}

/// The `GET /status` document: everything a fleet dashboard needs to
/// render one refresh, JSON-serializable both ways so `dist_top` can
/// reconstruct a [`DistStats`] and reuse the bench renderer.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ScopeStatus {
    /// Shards in the plan.
    pub shards: u32,
    /// Configured fleet strength.
    pub workers: u32,
    /// Shards completed so far.
    pub shards_done: u32,
    /// Shards still queued (granted-but-running shards are neither).
    pub shards_pending: u32,
    /// Worker processes spawned (pipe transport).
    pub workers_spawned: u32,
    /// Workers that died or were killed as wedged.
    pub worker_deaths: u32,
    /// Lease frames sent.
    pub leases_granted: u64,
    /// Leases re-issued after death/churn.
    pub leases_reissued: u64,
    /// TCP `hello` handshakes.
    pub workers_joined: u64,
    /// TCP `re-adopt` handshakes honoured.
    pub workers_readopted: u64,
    /// Voluntary `goodbye`s.
    pub workers_left: u64,
    /// Completions credited from `re-adopt` frames.
    pub shards_readopted: u64,
    /// Resumed from a checkpoint.
    pub resumed: bool,
    /// Fleet verdict-cache counters so far.
    pub cache: CacheCounters,
    /// Running per-solver line-coverage maxima (percent), from `done`
    /// frames. Empty until the first traced lease completes.
    pub coverage: BTreeMap<String, f64>,
    /// Live workers, in id order.
    pub fleet: Vec<ScopeWorker>,
    /// Current straggler/stall warnings, human-readable.
    pub warnings: Vec<String>,
    /// Campaign wall-clock so far, milliseconds.
    pub elapsed_ms: u64,
}

impl ScopeStatus {
    /// Serializes to the `/status` JSON document (one line).
    pub fn to_json(&self) -> Json {
        let fleet = self
            .fleet
            .iter()
            .map(|w| {
                obj(vec![
                    ("worker", Json::U64(u64::from(w.worker))),
                    (
                        "lease",
                        w.lease.map_or(Json::Null, |s| Json::U64(u64::from(s))),
                    ),
                    ("cases", Json::U64(w.cases)),
                    ("lease_cases", Json::U64(w.lease_cases)),
                    ("leases_completed", Json::U64(u64::from(w.leases_completed))),
                    ("cases_per_sec", Json::F64(w.cases_per_sec)),
                    ("ewma_cases_per_sec", Json::F64(w.ewma_cases_per_sec)),
                    ("last_heard_ms", Json::U64(w.last_heard_ms)),
                    ("wall_ms", Json::U64(w.wall_ms)),
                    ("straggler", Json::Bool(w.straggler)),
                ])
            })
            .collect();
        obj(vec![
            ("shards", Json::U64(u64::from(self.shards))),
            ("workers", Json::U64(u64::from(self.workers))),
            ("shards_done", Json::U64(u64::from(self.shards_done))),
            ("shards_pending", Json::U64(u64::from(self.shards_pending))),
            (
                "workers_spawned",
                Json::U64(u64::from(self.workers_spawned)),
            ),
            ("worker_deaths", Json::U64(u64::from(self.worker_deaths))),
            ("leases_granted", Json::U64(self.leases_granted)),
            ("leases_reissued", Json::U64(self.leases_reissued)),
            ("workers_joined", Json::U64(self.workers_joined)),
            ("workers_readopted", Json::U64(self.workers_readopted)),
            ("workers_left", Json::U64(self.workers_left)),
            ("shards_readopted", Json::U64(self.shards_readopted)),
            ("resumed", Json::Bool(self.resumed)),
            (
                "cache",
                obj(vec![
                    ("hits", Json::U64(self.cache.hits)),
                    ("misses", Json::U64(self.cache.misses)),
                    ("prefix_reuses", Json::U64(self.cache.prefix_reuses)),
                ]),
            ),
            (
                "coverage",
                Json::Obj(
                    self.coverage
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::F64(*v)))
                        .collect(),
                ),
            ),
            ("fleet", Json::Arr(fleet)),
            (
                "warnings",
                Json::Arr(self.warnings.iter().map(|w| Json::Str(w.clone())).collect()),
            ),
            ("elapsed_ms", Json::U64(self.elapsed_ms)),
        ])
    }

    /// Parses a `/status` body back into a snapshot — what `dist_top`
    /// runs on every refresh.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first missing or mistyped
    /// field.
    pub fn from_json_text(text: &str) -> Result<ScopeStatus, String> {
        let json = parse(text.trim())?;
        let u32_of = |key: &str| -> Result<u32, String> {
            json.get(key)
                .and_then(Json::as_u64)
                .map(|n| n.min(u64::from(u32::MAX)) as u32)
                .ok_or_else(|| format!("status: missing or non-integer `{key}`"))
        };
        let u64_of = |key: &str| -> Result<u64, String> {
            json.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("status: missing or non-integer `{key}`"))
        };
        let cache = match json.get("cache") {
            Some(c) => CacheCounters {
                hits: c.get("hits").and_then(Json::as_u64).unwrap_or(0),
                misses: c.get("misses").and_then(Json::as_u64).unwrap_or(0),
                prefix_reuses: c.get("prefix_reuses").and_then(Json::as_u64).unwrap_or(0),
            },
            None => CacheCounters::default(),
        };
        let mut coverage = BTreeMap::new();
        if let Some(Json::Obj(map)) = json.get("coverage") {
            for (solver, pct) in map {
                let pct = pct
                    .as_f64()
                    .ok_or_else(|| format!("status: non-numeric coverage for `{solver}`"))?;
                coverage.insert(solver.clone(), pct);
            }
        }
        let mut fleet = Vec::new();
        for row in json
            .get("fleet")
            .and_then(Json::as_arr)
            .ok_or("status: missing `fleet` array")?
        {
            let field = |key: &str| -> Result<u64, String> {
                row.get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("status: fleet row missing `{key}`"))
            };
            fleet.push(ScopeWorker {
                worker: field("worker")? as u32,
                lease: match row.get("lease") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(
                        v.as_u64()
                            .ok_or("status: fleet row `lease` is not an integer")?
                            as u32,
                    ),
                },
                cases: field("cases")?,
                lease_cases: field("lease_cases")?,
                leases_completed: field("leases_completed")? as u32,
                cases_per_sec: row
                    .get("cases_per_sec")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0),
                ewma_cases_per_sec: row
                    .get("ewma_cases_per_sec")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0),
                last_heard_ms: field("last_heard_ms")?,
                wall_ms: field("wall_ms")?,
                straggler: matches!(row.get("straggler"), Some(Json::Bool(true))),
            });
        }
        let mut warnings = Vec::new();
        if let Some(rows) = json.get("warnings").and_then(Json::as_arr) {
            for w in rows {
                warnings.push(w.as_str().ok_or("status: non-string warning")?.to_string());
            }
        }
        Ok(ScopeStatus {
            shards: u32_of("shards")?,
            workers: u32_of("workers")?,
            shards_done: u32_of("shards_done")?,
            shards_pending: u32_of("shards_pending")?,
            workers_spawned: u32_of("workers_spawned")?,
            worker_deaths: u32_of("worker_deaths")?,
            leases_granted: u64_of("leases_granted")?,
            leases_reissued: u64_of("leases_reissued")?,
            workers_joined: u64_of("workers_joined")?,
            workers_readopted: u64_of("workers_readopted")?,
            workers_left: u64_of("workers_left")?,
            shards_readopted: u64_of("shards_readopted")?,
            resumed: matches!(json.get("resumed"), Some(Json::Bool(true))),
            cache,
            coverage,
            fleet,
            warnings,
            elapsed_ms: u64_of("elapsed_ms")?,
        })
    }

    /// Projects the snapshot onto a [`DistStats`] (live workers become
    /// the per-worker rows) so `dist_top` reuses the bench renderer
    /// verbatim.
    pub fn to_dist_stats(&self) -> DistStats {
        DistStats {
            shards: self.shards,
            workers: self.workers,
            workers_spawned: self.workers_spawned,
            worker_deaths: self.worker_deaths,
            leases_granted: self.leases_granted,
            leases_reissued: self.leases_reissued,
            workers_joined: self.workers_joined,
            workers_readopted: self.workers_readopted,
            workers_left: self.workers_left,
            shards_readopted: self.shards_readopted,
            resumed: self.resumed,
            cache: self.cache,
            coverage: self.coverage.clone(),
            per_worker: self
                .fleet
                .iter()
                .map(|w| WorkerSummary {
                    worker: w.worker,
                    journal: std::path::PathBuf::new(),
                    leases_completed: w.leases_completed,
                    cases: w.cases,
                    wall: Duration::from_millis(w.wall_ms),
                    clean_exit: true,
                    last_cases_per_sec: w.cases_per_sec,
                    metrics: None,
                })
                .collect(),
            ..DistStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    fn sample() -> ScopeStatus {
        ScopeStatus {
            shards: 8,
            workers: 2,
            shards_done: 3,
            shards_pending: 2,
            workers_spawned: 0,
            worker_deaths: 1,
            leases_granted: 6,
            leases_reissued: 2,
            workers_joined: 3,
            workers_readopted: 1,
            workers_left: 1,
            shards_readopted: 1,
            resumed: true,
            cache: CacheCounters {
                hits: 10,
                misses: 4,
                prefix_reuses: 2,
            },
            coverage: BTreeMap::from([("oxiz".to_string(), 61.5), ("cervo".to_string(), 58.0)]),
            fleet: vec![
                ScopeWorker {
                    worker: 7,
                    lease: Some(5),
                    cases: 120,
                    lease_cases: 33,
                    leases_completed: 2,
                    cases_per_sec: 41.5,
                    ewma_cases_per_sec: 39.25,
                    last_heard_ms: 120,
                    wall_ms: 9001,
                    straggler: false,
                },
                ScopeWorker {
                    worker: 9,
                    lease: None,
                    cases: 80,
                    lease_cases: 0,
                    leases_completed: 1,
                    cases_per_sec: 4.0,
                    ewma_cases_per_sec: 4.5,
                    last_heard_ms: 2600,
                    wall_ms: 8200,
                    straggler: true,
                },
            ],
            warnings: vec!["worker 9 straggling: ewma 4.5 cases/sec vs fleet median 39.2".into()],
            elapsed_ms: 9500,
        }
    }

    #[test]
    fn status_round_trips_through_json() {
        let status = sample();
        let line = status.to_json().to_line();
        let back = ScopeStatus::from_json_text(&line).expect("parse");
        assert_eq!(back, status);
    }

    #[test]
    fn status_projects_onto_dist_stats_for_the_renderer() {
        let stats = sample().to_dist_stats();
        assert_eq!(stats.shards, 8);
        assert_eq!(stats.leases_reissued, 2);
        assert_eq!(stats.per_worker.len(), 2);
        assert_eq!(stats.per_worker[0].worker, 7);
        assert_eq!(stats.per_worker[0].cases, 120);
        assert_eq!(stats.coverage.get("oxiz"), Some(&61.5));
    }

    #[test]
    fn corrupt_status_is_refused_with_a_field_name() {
        let err = ScopeStatus::from_json_text("{\"fleet\":[],\"shards\":\"eight\"}").unwrap_err();
        assert!(err.contains("shards"), "unhelpful error: {err}");
    }

    /// Drives a real socket through the server without any reactor:
    /// service() is non-blocking, so a test can just interleave it with
    /// blocking client I/O.
    fn serve_until<F: FnMut(&mut ScopeServer)>(mut step: F, server: &mut ScopeServer, passes: u32) {
        for _ in 0..passes {
            step(server);
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    fn service_default(server: &mut ScopeServer) {
        server.service(
            || sample().to_json().to_line(),
            || "# TYPE o4a_up gauge\no4a_up 1\n".to_string(),
        );
    }

    fn read_to_end_lossy(stream: &mut TcpStream) -> String {
        let mut out = Vec::new();
        let _ = stream.read_to_end(&mut out);
        String::from_utf8_lossy(&out).into_owned()
    }

    #[test]
    fn status_endpoint_serves_one_json_document() {
        let mut server = ScopeServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr().to_string();
        let mut client = TcpStream::connect(&addr).expect("connect");
        client
            .write_all(b"GET /status HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        serve_until(service_default, &mut server, 20);
        let reply = read_to_end_lossy(&mut client);
        assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"), "{reply}");
        assert!(reply.contains("application/json"), "{reply}");
        let body = reply.split("\r\n\r\n").nth(1).expect("body");
        let status = ScopeStatus::from_json_text(body).expect("body parses");
        assert_eq!(status.shards, 8);
        assert_eq!(server.client_count(), 0, "one-shot client retired");
    }

    #[test]
    fn metrics_endpoint_serves_prometheus_text() {
        let mut server = ScopeServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr().to_string();
        let mut client = TcpStream::connect(&addr).expect("connect");
        client.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        serve_until(service_default, &mut server, 20);
        let reply = read_to_end_lossy(&mut client);
        assert!(reply.contains("200 OK"), "{reply}");
        assert!(reply.contains("# TYPE o4a_up gauge"), "{reply}");
    }

    #[test]
    fn unknown_path_gets_404_and_bad_method_gets_405() {
        let mut server = ScopeServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr().to_string();
        let mut c1 = TcpStream::connect(&addr).expect("connect");
        c1.write_all(b"GET /nope HTTP/1.1\r\n\r\n").unwrap();
        let mut c2 = TcpStream::connect(&addr).expect("connect");
        c2.write_all(b"POST /status HTTP/1.1\r\n\r\n").unwrap();
        serve_until(service_default, &mut server, 20);
        assert!(read_to_end_lossy(&mut c1).contains("404"));
        assert!(read_to_end_lossy(&mut c2).contains("405"));
    }

    #[test]
    fn events_endpoint_streams_broadcasts() {
        let mut server = ScopeServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr().to_string();
        let mut client = TcpStream::connect(&addr).expect("connect");
        client.write_all(b"GET /events HTTP/1.1\r\n\r\n").unwrap();
        serve_until(service_default, &mut server, 20);
        assert_eq!(server.client_count(), 1, "subscriber stays connected");
        server.broadcast(
            "lease",
            &obj(vec![("shard", Json::U64(3)), ("worker", Json::U64(1))]),
        );
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut got = String::new();
        let mut buf = [0u8; 4096];
        while !got.contains("event: lease") {
            let n = client.read(&mut buf).expect("sse bytes");
            assert!(n > 0, "stream closed before the event arrived");
            got.push_str(&String::from_utf8_lossy(&buf[..n]));
        }
        assert!(got.starts_with("HTTP/1.1 200 OK\r\n"), "{got}");
        assert!(got.contains("text/event-stream"), "{got}");
        assert!(got.contains("data: {\"shard\":3,\"worker\":1}"), "{got}");
        drop(client);
        serve_until(service_default, &mut server, 20);
        assert_eq!(server.client_count(), 0, "hung-up subscriber retired");
    }
}
