//! The coordinator: owns the shard plan, drives a fleet of worker
//! processes over pipes, and merges their journals.
//!
//! ## Lease scheduling
//!
//! Shards are **dynamic leases**, not a static split: the coordinator
//! keeps a queue of unassigned shards and grants the front of it to
//! whichever worker is idle. That is work stealing by construction —
//! a worker that finishes early immediately pulls the next shard, so
//! the long tail of a skewed plan spreads across the fleet instead of
//! serializing on one unlucky static assignment. Because a shard result
//! is a pure function of `(config, shards, shard)`
//! ([`o4a_exec::run_shard_lease`]), *which* worker runs a shard — and
//! how many times a lease bounces between dying workers — cannot show
//! up in the merged result.
//!
//! ## Failure handling
//!
//! Worker stdout fds ride the `poll(2)` reactor from `o4a-executor`,
//! and every outstanding lease carries a **deadline**: a worker that
//! neither heartbeats nor completes within [`DistConfig::heartbeat_timeout`]
//! is killed like a crashed one. Either way the lease goes back to the
//! front of the queue (a re-issue), the fleet is topped back up to
//! strength, and the dead worker's journal is kept for the final merge
//! — shards it *completed* are scavenged from it; the shard it died
//! inside has no completion record and is therefore re-derived from
//! scratch by the re-issued lease (`FindingsStore`'s dedup-on-load law
//! guarantees the half-journaled findings of the dead attempt cannot
//! leak in).

use crate::protocol::{CacheCounters, CampaignPlan, Frame};
use o4a_core::{CampaignConfig, CampaignResult};
use o4a_exec::{merge_shard_results, FindingsStore};
use o4a_executor::{read_available, set_nonblocking, FdReactor, Interest, WakeFlag};
use o4a_obs::metrics::MetricsSnapshot;
use std::collections::{BTreeSet, VecDeque};
use std::io::{self, Write};
use std::os::unix::io::{AsRawFd, RawFd};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Fleet configuration for one distributed campaign.
#[derive(Clone, Debug)]
pub struct DistConfig {
    /// Fleet strength: how many worker processes run concurrently.
    pub workers: u32,
    /// The worker command line (program + args). The coordinator appends
    /// `--journal <path> --worker <id>` for each spawn, so any binary
    /// honouring that contract (the reference one is
    /// `crates/bench/src/bin/dist_worker.rs`) can serve leases.
    pub worker_command: Vec<String>,
    /// Directory for per-worker findings journals (`worker-<n>.jsonl`,
    /// one per spawned process). Created if absent; should be fresh per
    /// campaign.
    pub journal_dir: PathBuf,
    /// A leased worker that neither heartbeats nor completes within this
    /// window is presumed wedged: killed, lease re-issued. Must comfortably
    /// exceed the worker's heartbeat cadence (a `progress` frame every
    /// [`crate::worker::DEFAULT_PROGRESS_EVERY`] cases).
    pub heartbeat_timeout: Duration,
    /// Replacement-spawn budget past the initial fleet. When worker
    /// deaths exhaust it with shards still unfinished, the campaign
    /// fails instead of thrashing forever.
    pub max_respawns: u32,
    /// Extra environment variables for every spawned worker (e.g.
    /// `O4A_TRACE`/`O4A_METRICS` to turn observability on fleet-wide
    /// without mutating the coordinator's own environment).
    pub envs: Vec<(String, String)>,
}

impl DistConfig {
    /// A fleet of 4 workers running `worker_command`, journaling under
    /// `journal_dir`, with a 30 s heartbeat deadline and 8 respawns.
    pub fn new(worker_command: Vec<String>, journal_dir: impl Into<PathBuf>) -> DistConfig {
        DistConfig {
            workers: 4,
            worker_command,
            journal_dir: journal_dir.into(),
            heartbeat_timeout: Duration::from_secs(30),
            max_respawns: 8,
            envs: Vec::new(),
        }
    }

    /// Replaces the fleet strength.
    pub fn with_workers(mut self, workers: u32) -> DistConfig {
        self.workers = workers;
        self
    }

    /// Replaces the heartbeat deadline.
    pub fn with_heartbeat_timeout(mut self, timeout: Duration) -> DistConfig {
        self.heartbeat_timeout = timeout;
        self
    }

    /// Replaces the respawn budget.
    pub fn with_max_respawns(mut self, max_respawns: u32) -> DistConfig {
        self.max_respawns = max_respawns;
        self
    }

    /// Adds an environment variable to every worker spawn.
    pub fn with_env(mut self, key: impl Into<String>, value: impl Into<String>) -> DistConfig {
        self.envs.push((key.into(), value.into()));
        self
    }
}

/// What one worker process did, for the fleet summary.
#[derive(Clone, Debug)]
pub struct WorkerSummary {
    /// Spawn-sequence id (also the journal file's number).
    pub worker: u32,
    /// The worker's findings journal.
    pub journal: PathBuf,
    /// Leases this worker ran to completion.
    pub leases_completed: u32,
    /// Cases executed across its completed leases.
    pub cases: u64,
    /// Wall-clock lifetime of the process.
    pub wall: Duration,
    /// False when the worker died (or was killed as wedged) instead of
    /// exiting on shutdown.
    pub clean_exit: bool,
    /// Last in-flight throughput the worker reported (cases/sec from
    /// its latest `progress` or `done` frame; 0 before the first one).
    pub last_cases_per_sec: f64,
    /// The worker's latest cumulative metrics snapshot, present only
    /// when the worker ran with `O4A_METRICS` on.
    pub metrics: Option<MetricsSnapshot>,
}

impl WorkerSummary {
    /// Completed-lease throughput in cases per wall-clock second.
    pub fn cases_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.cases as f64 / secs
        }
    }
}

/// Coordinator-level counters for one distributed campaign — the lease
/// churn the merged [`o4a_core::CampaignStats`] also carries (as
/// transport counters) plus the per-worker breakdown the bench summary
/// renders.
#[derive(Clone, Debug, Default)]
pub struct DistStats {
    /// Shards in the campaign plan.
    pub shards: u32,
    /// Configured fleet strength.
    pub workers: u32,
    /// Worker processes spawned (initial fleet + replacements).
    pub workers_spawned: u32,
    /// Workers that died or were killed as wedged.
    pub worker_deaths: u32,
    /// Lease frames sent (re-issues included).
    pub leases_granted: u64,
    /// Leases re-issued after their holder died mid-lease.
    pub leases_reissued: u64,
    /// Per-worker summaries, in spawn order.
    pub per_worker: Vec<WorkerSummary>,
    /// Fleet-wide metrics: every worker's final snapshot merged
    /// (snapshots are cumulative per process, so summing one per
    /// process is lossless). Empty unless workers ran with
    /// `O4A_METRICS` on.
    pub fleet_metrics: MetricsSnapshot,
    /// Fleet-wide verdict-cache/affinity counters, summed off completed
    /// leases' `done` frames. Informational (the merged
    /// [`o4a_core::CampaignStats`] carries the same trio, reconstructed
    /// from the journals); zero when the `O4A_CACHE`/`O4A_AFFINITY`
    /// knobs are off in the workers.
    pub cache: CacheCounters,
}

/// A finished distributed campaign: the merged result (bit-identical to
/// a single-process [`o4a_exec::run_campaign_sharded`] of the same plan,
/// modulo transport counters) plus the fleet statistics.
#[derive(Clone, Debug)]
pub struct DistReport {
    /// The merged campaign result.
    pub result: CampaignResult,
    /// Fleet and lease statistics.
    pub stats: DistStats,
}

/// One live worker process.
struct Worker {
    id: u32,
    child: Child,
    stdin: Option<ChildStdin>,
    stdout: ChildStdout,
    fd: RawFd,
    buf: Vec<u8>,
    journal: PathBuf,
    lease: Option<u32>,
    /// Cases executed across *completed* leases (what the summary
    /// reports); heartbeat progress of the in-flight lease accumulates
    /// in `lease_cases` and is folded in — once — by the `done` frame.
    cases: u64,
    lease_cases: u64,
    leases_completed: u32,
    /// Latest reported throughput / metrics snapshot (observability
    /// passthrough; the coordinator never schedules on either).
    live_rate: f64,
    latest_metrics: Option<MetricsSnapshot>,
    last_heard: Instant,
    spawned_at: Instant,
    eof: bool,
}

impl Worker {
    fn send_lease(&mut self, shard: u32, plan: &CampaignPlan) -> io::Result<()> {
        let stdin = self
            .stdin
            .as_mut()
            .expect("stdin open for the worker's whole life");
        let frame = Frame::Lease {
            shard,
            plan: plan.clone(),
        };
        writeln!(stdin, "{}", frame.to_line())?;
        stdin.flush()
    }

    fn into_summary(mut self, clean_exit: bool) -> WorkerSummary {
        // Reap unconditionally; kill first so a worker that closed its
        // stdout but kept running cannot block the coordinator.
        if !clean_exit {
            let _ = self.child.kill();
        }
        let _ = self.child.wait();
        WorkerSummary {
            worker: self.id,
            journal: self.journal,
            leases_completed: self.leases_completed,
            cases: self.cases,
            wall: self.spawned_at.elapsed(),
            clean_exit,
            last_cases_per_sec: self.live_rate,
            metrics: self.latest_metrics,
        }
    }
}

fn spawn_worker(dist: &DistConfig, id: u32) -> io::Result<Worker> {
    let journal = dist.journal_dir.join(format!("worker-{id}.jsonl"));
    // The coordinator owns the journal dir: a stale file under an
    // assigned name would resume a previous campaign (or refuse a
    // different one), so clear it.
    let _ = std::fs::remove_file(&journal);
    let (program, args) = dist
        .worker_command
        .split_first()
        .ok_or_else(|| bad("empty worker command"))?;
    let mut child = Command::new(program)
        .args(args)
        .arg("--journal")
        .arg(&journal)
        .arg("--worker")
        .arg(id.to_string())
        .envs(dist.envs.iter().map(|(k, v)| (k.as_str(), v.as_str())))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()?;
    o4a_obs::trace::event("dist", "worker.spawn", &[("worker", u64::from(id))]);
    let stdin = child.stdin.take().expect("piped stdin");
    let stdout = child.stdout.take().expect("piped stdout");
    let fd = stdout.as_raw_fd();
    set_nonblocking(fd)?;
    let now = Instant::now();
    Ok(Worker {
        id,
        child,
        stdin: Some(stdin),
        stdout,
        fd,
        buf: Vec::new(),
        journal,
        lease: None,
        cases: 0,
        lease_cases: 0,
        leases_completed: 0,
        live_rate: 0.0,
        latest_metrics: None,
        last_heard: now,
        spawned_at: now,
        eof: false,
    })
}

/// Pops complete lines off the front of `buf`.
fn take_lines(buf: &mut Vec<u8>) -> Vec<String> {
    let mut lines = Vec::new();
    while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
        let rest = buf.split_off(pos + 1);
        let mut line = std::mem::replace(buf, rest);
        line.pop(); // the newline
        lines.push(String::from_utf8_lossy(&line).into_owned());
    }
    lines
}

/// Runs `config`, split into `shards` deterministic shards, across a
/// fleet of worker processes, and merges their journals into one
/// campaign result.
///
/// The merged result is **bit-identical** to the same plan executed by
/// a single process ([`o4a_exec::run_campaign_sharded`] with
/// `exec.shards = shards`) in findings, final coverage maps, hourly
/// snapshot series, and statistics modulo the transport counters —
/// regardless of fleet size, lease scheduling, or workers dying
/// mid-lease (their leases re-issue and re-derive the shard
/// deterministically). The coordinator folds its own fleet churn into
/// the merged stats' transport counters: worker processes into
/// `processes_spawned`/`process_respawns`, lease churn into
/// `leases_granted`/`leases_reissued`.
///
/// # Errors
///
/// Worker-spawn and journal I/O errors, protocol violations, and a
/// fleet that keeps dying until [`DistConfig::max_respawns`] is
/// exhausted with shards still unfinished.
pub fn run_distributed(
    config: &CampaignConfig,
    shards: u32,
    dist: &DistConfig,
) -> io::Result<DistReport> {
    assert!(shards >= 1, "a campaign needs at least one shard");
    assert!(dist.workers >= 1, "a fleet needs at least one worker");
    o4a_obs::init_from_env();
    std::fs::create_dir_all(&dist.journal_dir)?;

    let plan = CampaignPlan {
        config: config.clone(),
        shards,
    };
    let mut stats = DistStats {
        shards,
        workers: dist.workers,
        ..DistStats::default()
    };
    let mut live: Vec<Worker> = Vec::new();
    let mut journals: Vec<PathBuf> = Vec::new();
    if let Err(e) = drive_fleet(dist, &plan, shards, &mut stats, &mut live, &mut journals) {
        // No worker process outlives the campaign: kill and reap the
        // fleet before surfacing the error.
        for worker in live.drain(..) {
            stats.per_worker.push(worker.into_summary(false));
        }
        return Err(e);
    }

    // Shutdown: closing stdin is the protocol's EOF signal; give workers
    // a moment to exit cleanly, then reap.
    for mut worker in live {
        drop(worker.stdin.take());
        let deadline = Instant::now() + Duration::from_secs(10);
        let clean = loop {
            match worker.child.try_wait() {
                Ok(Some(status)) => break status.success(),
                Err(_) => break false,
                Ok(None) if Instant::now() >= deadline => break false,
                Ok(None) => std::thread::sleep(Duration::from_millis(5)),
            }
        };
        stats.per_worker.push(worker.into_summary(clean));
    }
    stats.per_worker.sort_by_key(|w| w.worker);
    for summary in &stats.per_worker {
        if let Some(metrics) = &summary.metrics {
            stats.fleet_metrics.merge(metrics);
        }
    }

    // Merge every journal the fleet ever touched — completed shards of
    // dead workers are scavenged, their half-run shard re-derived by the
    // re-issued lease.
    let completed = FindingsStore::merge_from(config, shards, &journals)?;
    for shard in 0..shards {
        if !completed.contains_key(&shard) {
            return Err(bad(format!(
                "shard {shard} reported done but is missing from the merged journals"
            )));
        }
    }
    let ordered: Vec<CampaignResult> = completed.into_values().collect();
    let mut result = merge_shard_results(config, &ordered);
    result.stats.processes_spawned += stats.workers_spawned as u64;
    result.stats.process_respawns += stats.worker_deaths as u64;
    result.stats.leases_granted += stats.leases_granted;
    result.stats.leases_reissued += stats.leases_reissued;
    // The coordinator's own trace/metrics (lease lifecycle, spawns) go
    // to its configured obs dir; workers drained their own before the
    // clean exit above. Best-effort, like every obs path.
    if let Err(e) = o4a_obs::drain() {
        eprintln!("o4a-obs: coordinator drain failed: {e}");
    }
    Ok(DistReport { result, stats })
}

/// The lease loop: runs until every shard is done, or errors with the
/// fleet in whatever state it reached — the caller owns `live` and must
/// retire (kill + reap) whatever is left on either path.
fn drive_fleet(
    dist: &DistConfig,
    plan: &CampaignPlan,
    shards: u32,
    stats: &mut DistStats,
    live: &mut Vec<Worker>,
    journals: &mut Vec<PathBuf>,
) -> io::Result<()> {
    let reactor = FdReactor::new();
    let waker = WakeFlag::new().waker();
    let mut pending: VecDeque<u32> = (0..shards).collect();
    let mut done: BTreeSet<u32> = BTreeSet::new();

    loop {
        // Retire dead workers and wedged ones (no frame within the
        // deadline while holding a lease), re-queueing their leases.
        let now = Instant::now();
        let mut i = 0;
        while i < live.len() {
            let dead = live[i].eof;
            let wedged = live[i].lease.is_some()
                && now.duration_since(live[i].last_heard) > dist.heartbeat_timeout;
            if !(dead || wedged) {
                i += 1;
                continue;
            }
            let mut worker = live.swap_remove(i);
            stats.worker_deaths += 1;
            o4a_obs::trace::event(
                "dist",
                if dead {
                    "worker.death"
                } else {
                    "worker.wedged"
                },
                &[("worker", u64::from(worker.id))],
            );
            if o4a_obs::metrics_enabled() {
                o4a_obs::metrics::counter("dist.worker_deaths").inc();
            }
            if let Some(shard) = worker.lease.take() {
                pending.push_front(shard);
                stats.leases_reissued += 1;
                o4a_obs::trace::event(
                    "dist",
                    "lease.reissue",
                    &[
                        ("shard", u64::from(shard)),
                        ("worker", u64::from(worker.id)),
                    ],
                );
                if o4a_obs::metrics_enabled() {
                    o4a_obs::metrics::counter("dist.leases_reissued").inc();
                }
            }
            stats.per_worker.push(worker.into_summary(false));
        }

        if done.len() == shards as usize {
            return Ok(());
        }

        // Top the fleet back up while unassigned work remains.
        loop {
            let idle = live.iter().filter(|w| w.lease.is_none()).count();
            if idle >= pending.len() || live.len() >= dist.workers as usize {
                break;
            }
            if stats.workers_spawned >= dist.workers + dist.max_respawns {
                return Err(io::Error::other(format!(
                    "worker fleet keeps dying: {} spawns exhausted with {} of {} shards unfinished",
                    stats.workers_spawned,
                    shards as usize - done.len(),
                    shards
                )));
            }
            let worker = spawn_worker(dist, stats.workers_spawned)?;
            journals.push(worker.journal.clone());
            stats.workers_spawned += 1;
            live.push(worker);
        }

        // Grant: idle workers pull the queue front (work stealing).
        for worker in live.iter_mut() {
            if worker.lease.is_some() || worker.eof {
                continue;
            }
            let Some(&shard) = pending.front() else { break };
            match worker.send_lease(shard, plan) {
                Ok(()) => {
                    pending.pop_front();
                    worker.lease = Some(shard);
                    worker.last_heard = Instant::now();
                    stats.leases_granted += 1;
                    o4a_obs::trace::event(
                        "dist",
                        "lease.grant",
                        &[
                            ("shard", u64::from(shard)),
                            ("worker", u64::from(worker.id)),
                        ],
                    );
                    if o4a_obs::metrics_enabled() {
                        o4a_obs::metrics::counter("dist.leases_granted").inc();
                    }
                }
                // A broken pipe is a death notice; the retire pass picks
                // the worker up next iteration and the shard stays queued.
                Err(_) => worker.eof = true,
            }
        }

        // Wait for frames: every live stdout rides the poll(2) reactor,
        // leased workers with their heartbeat deadline attached.
        let mut tokens = Vec::with_capacity(live.len());
        for worker in live.iter().filter(|w| !w.eof) {
            let deadline = worker
                .lease
                .map(|_| worker.last_heard + dist.heartbeat_timeout);
            tokens.push(reactor.register(worker.fd, Interest::Read, waker.clone(), deadline));
        }
        if !tokens.is_empty() {
            reactor.poll_io(None)?;
        }
        for token in tokens {
            reactor.deregister(token);
        }

        // Drain and handle frames.
        for worker in live.iter_mut() {
            if worker.eof {
                continue;
            }
            loop {
                match read_available(&mut worker.stdout, &mut worker.buf)? {
                    Some(0) => {
                        worker.eof = true;
                        break;
                    }
                    Some(_) => continue,
                    None => break,
                }
            }
            for line in take_lines(&mut worker.buf) {
                worker.last_heard = Instant::now();
                match Frame::from_line(&line) {
                    Ok(Frame::JournalPath { path, .. }) => {
                        let announced = PathBuf::from(path);
                        if announced != worker.journal {
                            // A worker may relocate its journal; merge
                            // whatever it announces (and the assigned
                            // path stays in the list — empty files are
                            // skipped).
                            journals.push(announced.clone());
                            worker.journal = announced;
                        }
                    }
                    Ok(Frame::Progress {
                        shard,
                        cases,
                        cases_per_sec,
                        metrics,
                        ..
                    }) => {
                        if worker.lease == Some(shard) {
                            worker.lease_cases = cases;
                            worker.live_rate = cases_per_sec;
                            if metrics.is_some() {
                                worker.latest_metrics = metrics;
                            }
                        }
                    }
                    Ok(Frame::Done {
                        shard,
                        cases,
                        cases_per_sec,
                        metrics,
                        cache,
                        ..
                    }) => {
                        if worker.lease != Some(shard) {
                            return Err(bad(format!(
                                "worker {} completed shard {shard} it does not hold",
                                worker.id
                            )));
                        }
                        worker.lease = None;
                        worker.lease_cases = 0;
                        worker.leases_completed += 1;
                        worker.cases += cases;
                        worker.live_rate = cases_per_sec;
                        if metrics.is_some() {
                            worker.latest_metrics = metrics;
                        }
                        stats.cache.hits += cache.hits;
                        stats.cache.misses += cache.misses;
                        stats.cache.prefix_reuses += cache.prefix_reuses;
                        done.insert(shard);
                        o4a_obs::trace::event(
                            "dist",
                            "lease.done",
                            &[
                                ("shard", u64::from(shard)),
                                ("worker", u64::from(worker.id)),
                                ("cases", cases),
                            ],
                        );
                    }
                    // A worker speaking garbage — or echoing frames only
                    // the coordinator may send — is as trustworthy as a
                    // dead one: retire it and re-issue its lease.
                    Ok(Frame::Lease { .. }) | Err(_) => {
                        worker.eof = true;
                        break;
                    }
                }
            }
        }
    }
}
