//! The coordinator: owns the shard plan, drives a fleet of workers over
//! a pluggable transport (spawned pipes or a TCP listener), journals
//! lease state to an optional checkpoint, and merges worker journals.
//!
//! ## Lease scheduling
//!
//! Shards are **dynamic leases**, not a static split: the coordinator
//! keeps a queue of unassigned shards and grants the front of it to
//! whichever worker is idle. That is work stealing by construction —
//! a worker that finishes early immediately pulls the next shard, so
//! the long tail of a skewed plan spreads across the fleet instead of
//! serializing on one unlucky static assignment. Because a shard result
//! is a pure function of `(config, shards, shard)`
//! ([`o4a_exec::run_shard_lease`]), *which* worker runs a shard — and
//! how many times a lease bounces between dying workers — cannot show
//! up in the merged result. ([`DistConfig::static_split`] turns the
//! stealing off, pinning shard `s` to fleet slot `s % workers` — a
//! benchmarking knob that exists to measure exactly what stealing buys
//! on a heterogeneous fleet.)
//!
//! ## Failure handling
//!
//! Worker read fds — pipe stdouts and accepted sockets alike — ride the
//! `poll(2)` reactor from `o4a-executor`, and every outstanding lease
//! carries a **deadline**: a worker that neither heartbeats nor
//! completes within [`DistConfig::heartbeat_timeout`] is killed like a
//! crashed one. Either way the lease goes back to the front of the
//! queue (a re-issue), the fleet is topped back up to strength (pipe
//! transport; TCP fleets are elastic — membership is whoever is
//! connected), and the dead worker's journal is kept for the final
//! merge — shards it *completed* are scavenged from it; the shard it
//! died inside has no completion record and is therefore re-derived
//! from scratch by the re-issued lease (`FindingsStore`'s dedup-on-load
//! law guarantees the half-journaled findings of the dead attempt
//! cannot leak in).
//!
//! ## Elastic membership and coordinator death (TCP transport)
//!
//! Over TCP the coordinator spawns nothing: workers **join** by
//! connecting (`hello` frame) at any point of the campaign and pull the
//! next lease; one that disconnects or says `goodbye` mid-lease has its
//! lease re-issued through the same deadline path. With a
//! [`DistConfig::checkpoint`] configured, every grant is made durable
//! *before* its lease frame is sent and every completion *after* its
//! `done` arrives — so a coordinator killed mid-campaign restarts from
//! the checkpoint, re-binds the recorded port, re-adopts reconnecting
//! workers (their `re-adopt` frames credit leases completed during the
//! outage), re-issues orphaned grants, and merges a result
//! bit-identical to an uninterrupted run. The determinism argument is
//! the same one workers-dying rests on: the worst a lost frame or
//! record can cause is a *redundant* lease, and redundant executions of
//! a deterministic shard merge to the same bytes.

use crate::checkpoint::{CheckpointSession, CheckpointStore};
use crate::protocol::{CacheCounters, CampaignPlan, Frame, TraceBatch};
use crate::scope::{ScopeServer, ScopeStatus, ScopeWorker};
use crate::transport::{Link, Listener, Transport};
use o4a_core::{CampaignConfig, CampaignResult};
use o4a_exec::json::{obj, Json};
use o4a_exec::{merge_shard_results, FindingsStore};
use o4a_executor::{set_nonblocking, FdReactor, Interest, WakeFlag};
use o4a_obs::metrics::MetricsSnapshot;
use o4a_obs::trace::{TraceEvent, TraceMeta};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io;
use std::os::unix::io::AsRawFd;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Fleet configuration for one distributed campaign.
#[derive(Clone, Debug)]
pub struct DistConfig {
    /// Fleet strength: how many worker processes run concurrently (pipe
    /// transport), or the nominal fleet size a [static split]
    /// distributes over (TCP fleets are elastic — actual membership is
    /// whoever has connected).
    ///
    /// [static split]: DistConfig::static_split
    pub workers: u32,
    /// The worker command line (program + args), pipe transport only.
    /// The coordinator appends `--journal <path> --worker <id>` for
    /// each spawn, so any binary honouring that contract (the reference
    /// one is `crates/bench/src/bin/dist_worker.rs`) can serve leases.
    /// Unused over TCP, where workers connect on their own.
    pub worker_command: Vec<String>,
    /// Directory for per-worker findings journals (`worker-<n>.jsonl`,
    /// one per spawned process). Created if absent; should be fresh per
    /// campaign. TCP workers choose their own journal paths and
    /// announce them in `hello`.
    pub journal_dir: PathBuf,
    /// A leased worker that neither heartbeats nor completes within this
    /// window is presumed wedged: killed, lease re-issued. Must comfortably
    /// exceed the worker's heartbeat cadence (a `progress` frame every
    /// [`crate::worker::DEFAULT_PROGRESS_EVERY`] cases). Doubles as the
    /// patience for a TCP connection that never says `hello`.
    pub heartbeat_timeout: Duration,
    /// Replacement-spawn budget past the initial fleet (pipe transport).
    /// When worker deaths exhaust it with shards still unfinished, the
    /// campaign fails instead of thrashing forever.
    pub max_respawns: u32,
    /// Extra environment variables for every spawned worker (e.g.
    /// `O4A_TRACE`/`O4A_METRICS` to turn observability on fleet-wide
    /// without mutating the coordinator's own environment).
    pub envs: Vec<(String, String)>,
    /// The wire to the fleet: spawn-and-pipe (default) or a TCP
    /// listener workers connect to.
    pub transport: Transport,
    /// Checkpoint path for coordinator resumability. `None` (default)
    /// runs without one — a killed coordinator then loses the campaign,
    /// exactly the pre-checkpoint behavior.
    pub checkpoint: Option<PathBuf>,
    /// Disables work stealing: shard `s` may only be granted to fleet
    /// slot `s % workers` (spawn order over pipes, join order over
    /// TCP). A benchmarking knob — the heterogeneous-fleet gauntlet
    /// measures stealing against exactly this.
    pub static_split: bool,
    /// TCP only: how long the coordinator waits with **zero** connected
    /// workers and work remaining before declaring the campaign
    /// stranded. Elastic fleets may legitimately dip to zero briefly
    /// (everyone churning at once); this bounds "forever".
    pub accept_timeout: Duration,
    /// Fault injection for the recovery gauntlet: the coordinator
    /// `exit(9)`s — no unwinding, mid-campaign — right after recording
    /// this many shard completions. The checkpoint is durable at that
    /// point, which is precisely what the restarted coordinator resumes
    /// from. `None` (default) never fires.
    pub exit_after_completions: Option<u64>,
    /// `host:port` for the o4a-scope observatory ([`crate::scope`]):
    /// `GET /status`, `GET /metrics`, and an SSE `GET /events` served
    /// off the coordinator's own reactor. `None` (default) runs dark —
    /// no listener, no extra wakeups. Read-only either way: the
    /// scope-on ≡ scope-off gauntlet pins that watching a campaign
    /// cannot change its merged result.
    pub scope: Option<String>,
}

impl DistConfig {
    /// A fleet of 4 workers running `worker_command` over pipes,
    /// journaling under `journal_dir`, with a 30 s heartbeat deadline
    /// and 8 respawns. No checkpoint, dynamic leases.
    pub fn new(worker_command: Vec<String>, journal_dir: impl Into<PathBuf>) -> DistConfig {
        DistConfig {
            workers: 4,
            worker_command,
            journal_dir: journal_dir.into(),
            heartbeat_timeout: Duration::from_secs(30),
            max_respawns: 8,
            envs: Vec::new(),
            transport: Transport::Pipes,
            checkpoint: None,
            static_split: false,
            accept_timeout: Duration::from_secs(60),
            exit_after_completions: None,
            scope: None,
        }
    }

    /// Replaces the fleet strength.
    pub fn with_workers(mut self, workers: u32) -> DistConfig {
        self.workers = workers;
        self
    }

    /// Replaces the heartbeat deadline.
    pub fn with_heartbeat_timeout(mut self, timeout: Duration) -> DistConfig {
        self.heartbeat_timeout = timeout;
        self
    }

    /// Replaces the respawn budget.
    pub fn with_max_respawns(mut self, max_respawns: u32) -> DistConfig {
        self.max_respawns = max_respawns;
        self
    }

    /// Adds an environment variable to every worker spawn.
    pub fn with_env(mut self, key: impl Into<String>, value: impl Into<String>) -> DistConfig {
        self.envs.push((key.into(), value.into()));
        self
    }

    /// Switches the fleet onto a TCP listener at `listen`
    /// (`host:port`; port 0 picks a free one).
    pub fn with_tcp(mut self, listen: impl Into<String>) -> DistConfig {
        self.transport = Transport::Tcp {
            listen: listen.into(),
        };
        self
    }

    /// Enables coordinator checkpointing at `path`.
    pub fn with_checkpoint(mut self, path: impl Into<PathBuf>) -> DistConfig {
        self.checkpoint = Some(path.into());
        self
    }

    /// Disables work stealing (see [`DistConfig::static_split`]).
    pub fn with_static_split(mut self, static_split: bool) -> DistConfig {
        self.static_split = static_split;
        self
    }

    /// Replaces the zero-worker patience (see
    /// [`DistConfig::accept_timeout`]).
    pub fn with_accept_timeout(mut self, timeout: Duration) -> DistConfig {
        self.accept_timeout = timeout;
        self
    }

    /// Arms the die-after-N-completions fault injection (see
    /// [`DistConfig::exit_after_completions`]).
    pub fn with_exit_after_completions(mut self, completions: u64) -> DistConfig {
        self.exit_after_completions = Some(completions);
        self
    }

    /// Opens the o4a-scope observatory at `addr` (see
    /// [`DistConfig::scope`]; port 0 picks a free one).
    pub fn with_scope(mut self, addr: impl Into<String>) -> DistConfig {
        self.scope = Some(addr.into());
        self
    }

    /// Applies the coordinator environment knobs, tolerantly — unset or
    /// unparsable values leave the current setting untouched, matching
    /// [`o4a_exec::ExecConfig::from_env`]:
    ///
    /// * `O4A_DIST_WORKERS` — fleet strength (≥ 1)
    /// * `O4A_DIST_HEARTBEAT_MS` — heartbeat deadline, milliseconds (≥ 1)
    /// * `O4A_DIST_MAX_RESPAWNS` — respawn budget
    /// * `O4A_DIST_LISTEN` — switch to TCP, listening on this address
    /// * `O4A_CHECKPOINT` — coordinator checkpoint path
    /// * `O4A_SCOPE` — serve the o4a-scope observatory on this
    ///   `host:port`
    pub fn with_env_overrides(mut self) -> DistConfig {
        if let Some(workers) = parse_env_u64("O4A_DIST_WORKERS") {
            if workers >= 1 {
                self.workers = workers.min(u32::MAX as u64) as u32;
            }
        }
        if let Some(ms) = parse_env_u64("O4A_DIST_HEARTBEAT_MS") {
            if ms >= 1 {
                self.heartbeat_timeout = Duration::from_millis(ms);
            }
        }
        if let Some(respawns) = parse_env_u64("O4A_DIST_MAX_RESPAWNS") {
            self.max_respawns = respawns.min(u32::MAX as u64) as u32;
        }
        if let Ok(listen) = std::env::var("O4A_DIST_LISTEN") {
            if !listen.trim().is_empty() {
                self.transport = Transport::Tcp {
                    listen: listen.trim().to_string(),
                };
            }
        }
        if let Ok(path) = std::env::var("O4A_CHECKPOINT") {
            if !path.trim().is_empty() {
                self.checkpoint = Some(PathBuf::from(path.trim()));
            }
        }
        if let Ok(addr) = std::env::var("O4A_SCOPE") {
            if !addr.trim().is_empty() {
                self.scope = Some(addr.trim().to_string());
            }
        }
        self
    }
}

/// `Some(n)` only for a set, non-empty, parsable value.
fn parse_env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok()?.trim().parse().ok()
}

/// What one worker process did, for the fleet summary.
#[derive(Clone, Debug)]
pub struct WorkerSummary {
    /// Spawn-sequence id (pipe transport; also the journal file's
    /// number) or the self-reported id of a joined TCP worker.
    pub worker: u32,
    /// The worker's findings journal.
    pub journal: PathBuf,
    /// Leases this worker ran to completion.
    pub leases_completed: u32,
    /// Cases executed across its completed leases.
    pub cases: u64,
    /// Wall-clock lifetime of the process (connection, over TCP).
    pub wall: Duration,
    /// False when the worker died (or was killed as wedged) instead of
    /// exiting on shutdown / leaving with a `goodbye`.
    pub clean_exit: bool,
    /// Last in-flight throughput the worker reported (cases/sec from
    /// its latest `progress` or `done` frame; 0 before the first one).
    pub last_cases_per_sec: f64,
    /// The worker's latest cumulative metrics snapshot, present only
    /// when the worker ran with `O4A_METRICS` on.
    pub metrics: Option<MetricsSnapshot>,
}

impl WorkerSummary {
    /// Completed-lease throughput in cases per wall-clock second.
    pub fn cases_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.cases as f64 / secs
        }
    }
}

/// Coordinator-level counters for one distributed campaign — the lease
/// churn the merged [`o4a_core::CampaignStats`] also carries (as
/// transport counters) plus the per-worker breakdown the bench summary
/// renders.
#[derive(Clone, Debug, Default)]
pub struct DistStats {
    /// Shards in the campaign plan.
    pub shards: u32,
    /// Configured fleet strength.
    pub workers: u32,
    /// Worker processes spawned (initial fleet + replacements; pipe
    /// transport).
    pub workers_spawned: u32,
    /// Workers that died or were killed as wedged.
    pub worker_deaths: u32,
    /// Lease frames sent (re-issues included).
    pub leases_granted: u64,
    /// Leases re-issued after their holder died, left, or — on a
    /// coordinator resume — was orphaned by the previous incarnation.
    pub leases_reissued: u64,
    /// TCP workers that joined the fleet (`hello` handshakes; a
    /// reconnect counts again).
    pub workers_joined: u64,
    /// `re-adopt` handshakes honoured (reconnecting workers whose
    /// completed-lease lists were replayed).
    pub workers_readopted: u64,
    /// Workers that left with a voluntary `goodbye`.
    pub workers_left: u64,
    /// Shard completions credited from `re-adopt` frames rather than
    /// live `done` frames.
    pub shards_readopted: u64,
    /// True when this campaign resumed from an existing checkpoint.
    pub resumed: bool,
    /// Per-worker summaries, in spawn order.
    pub per_worker: Vec<WorkerSummary>,
    /// Fleet-wide metrics: every worker's final snapshot merged
    /// (snapshots are cumulative per process, so summing one per
    /// process is lossless). Empty unless workers ran with
    /// `O4A_METRICS` on.
    pub fleet_metrics: MetricsSnapshot,
    /// Fleet-wide verdict-cache/affinity counters, summed off completed
    /// leases' `done` frames. Informational (the merged
    /// [`o4a_core::CampaignStats`] carries the same trio, reconstructed
    /// from the journals); zero when the `O4A_CACHE`/`O4A_AFFINITY`
    /// knobs are off in the workers.
    pub cache: CacheCounters,
    /// Running per-solver line-coverage maxima (percent) off completed
    /// leases' `done` frames — the scope plane's live coverage view.
    /// Empty unless fleet tracing was on (the coordinator ran with
    /// `O4A_TRACE`).
    pub coverage: BTreeMap<String, f64>,
    /// The fleet-merged Chrome trace (one file, one lane per worker
    /// process, coordinator included), written into the journal dir at
    /// campaign end. `None` unless fleet tracing was on.
    pub fleet_trace: Option<PathBuf>,
}

/// A finished distributed campaign: the merged result (bit-identical to
/// a single-process [`o4a_exec::run_campaign_sharded`] of the same plan,
/// modulo transport counters) plus the fleet statistics.
#[derive(Clone, Debug)]
pub struct DistReport {
    /// The merged campaign result.
    pub result: CampaignResult,
    /// Fleet and lease statistics.
    pub stats: DistStats,
}

/// One live worker: a spawned child over pipes, or an accepted TCP
/// connection (whose process belongs to someone else).
struct Worker {
    id: u32,
    child: Option<Child>,
    link: Link,
    buf: Vec<u8>,
    /// Known at spawn over pipes; announced by `hello` over TCP.
    journal: Option<PathBuf>,
    /// Pipe workers are born greeted; a TCP connection earns it with
    /// its `hello` and is granted nothing before.
    greeted: bool,
    /// Received a voluntary `goodbye` — retire cleanly.
    left: bool,
    /// Fleet slot for [`DistConfig::static_split`]: spawn sequence over
    /// pipes, join sequence over TCP.
    slot: u32,
    lease: Option<u32>,
    /// Cases executed across *completed* leases (what the summary
    /// reports); heartbeat progress of the in-flight lease accumulates
    /// in `lease_cases` and is folded in — once — by the `done` frame.
    cases: u64,
    lease_cases: u64,
    leases_completed: u32,
    /// Latest reported throughput / metrics snapshot (observability
    /// passthrough; the coordinator never schedules on either).
    live_rate: f64,
    latest_metrics: Option<MetricsSnapshot>,
    /// Smoothed throughput (EWMA over `progress`/`done` reports) — what
    /// the straggler sweep compares across the fleet. Observation only.
    ewma_rate: f64,
    /// Currently flagged by the straggler sweep; edge transitions emit
    /// the SSE `straggler` event.
    straggler: bool,
    last_heard: Instant,
    spawned_at: Instant,
    eof: bool,
}

impl Worker {
    fn fd(&self) -> std::os::unix::io::RawFd {
        self.link.read_fd()
    }

    fn send_lease(&mut self, shard: u32, plan: &CampaignPlan, trace: bool) -> io::Result<()> {
        let frame = Frame::Lease {
            shard,
            plan: plan.clone(),
            trace,
        };
        self.link.send_line(&frame.to_line())
    }

    fn into_summary(mut self, clean_exit: bool) -> WorkerSummary {
        // Reap unconditionally; kill first so a worker that closed its
        // stdout but kept running cannot block the coordinator. TCP
        // workers have no child — dropping the link closes the socket.
        if let Some(child) = self.child.as_mut() {
            if !clean_exit {
                let _ = child.kill();
            }
            let _ = child.wait();
        }
        WorkerSummary {
            worker: self.id,
            journal: self.journal.unwrap_or_default(),
            leases_completed: self.leases_completed,
            cases: self.cases,
            wall: self.spawned_at.elapsed(),
            clean_exit,
            last_cases_per_sec: self.live_rate,
            metrics: self.latest_metrics,
        }
    }
}

fn spawn_worker(dist: &DistConfig, id: u32) -> io::Result<Worker> {
    let journal = dist.journal_dir.join(format!("worker-{id}.jsonl"));
    // The coordinator owns the journal dir: a stale file under an
    // assigned name would resume a previous campaign (or refuse a
    // different one), so clear it. (A resumed coordinator never reuses
    // a previous incarnation's ids — the checkpoint advances them.)
    let _ = std::fs::remove_file(&journal);
    let (program, args) = dist
        .worker_command
        .split_first()
        .ok_or_else(|| bad("empty worker command"))?;
    let mut child = Command::new(program)
        .args(args)
        .arg("--journal")
        .arg(&journal)
        .arg("--worker")
        .arg(id.to_string())
        .envs(dist.envs.iter().map(|(k, v)| (k.as_str(), v.as_str())))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()?;
    o4a_obs::trace::event("dist", "worker.spawn", &[("worker", u64::from(id))]);
    let stdin = child.stdin.take().expect("piped stdin");
    let stdout = child.stdout.take().expect("piped stdout");
    set_nonblocking(stdout.as_raw_fd())?;
    let now = Instant::now();
    Ok(Worker {
        id,
        child: Some(child),
        link: Link::Pipe {
            stdin: Some(stdin),
            stdout,
        },
        buf: Vec::new(),
        journal: Some(journal),
        greeted: true,
        left: false,
        slot: id,
        lease: None,
        cases: 0,
        lease_cases: 0,
        leases_completed: 0,
        live_rate: 0.0,
        latest_metrics: None,
        ewma_rate: 0.0,
        straggler: false,
        last_heard: now,
        spawned_at: now,
        eof: false,
    })
}

/// A freshly accepted TCP connection: a worker-to-be until its `hello`.
fn accepted_worker(link: Link) -> Worker {
    let now = Instant::now();
    Worker {
        id: u32::MAX,
        child: None,
        link,
        buf: Vec::new(),
        journal: None,
        greeted: false,
        left: false,
        slot: 0,
        lease: None,
        cases: 0,
        lease_cases: 0,
        leases_completed: 0,
        live_rate: 0.0,
        latest_metrics: None,
        ewma_rate: 0.0,
        straggler: false,
        last_heard: now,
        spawned_at: now,
        eof: false,
    }
}

/// Pops complete lines off the front of `buf`.
fn take_lines(buf: &mut Vec<u8>) -> Vec<String> {
    let mut lines = Vec::new();
    while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
        let rest = buf.split_off(pos + 1);
        let mut line = std::mem::replace(buf, rest);
        line.pop(); // the newline
        lines.push(String::from_utf8_lossy(&line).into_owned());
    }
    lines
}

/// The campaign-progress side of the fleet loop, separated from the
/// fleet itself so an error path can still retire `live`.
struct FleetState {
    pending: VecDeque<u32>,
    done: BTreeSet<u32>,
    journals: Vec<PathBuf>,
    /// Next spawn id (pipe transport); a resumed coordinator starts past
    /// every id its checkpoint ever recorded.
    spawn_seq: u32,
    /// Join-order counter assigning TCP fleet slots.
    greet_seq: u32,
    /// Completions recorded by *this incarnation* — what
    /// [`DistConfig::exit_after_completions`] counts.
    completions_recorded: u64,
}

impl FleetState {
    fn track_journal(
        &mut self,
        worker: u32,
        journal: PathBuf,
        checkpoint: Option<&CheckpointSession>,
    ) {
        if !self.journals.contains(&journal) {
            if let Some(cp) = checkpoint {
                cp.record_journal(worker, &journal);
            }
            self.journals.push(journal);
        }
    }
}

/// EWMA smoothing for per-worker throughput: ~⅓ of each new report,
/// so a straggler shows within a few heartbeats without one noisy
/// sample flapping the flag.
const EWMA_ALPHA: f64 = 0.3;

/// A leased worker whose smoothed throughput drops below this fraction
/// of the fleet median (with at least two leased peers reporting) is
/// flagged as a straggler.
const STRAGGLER_RATE_FRACTION: f64 = 0.25;

/// One worker process's accumulated trace-ring batches, keyed by pid in
/// [`ScopeCtx::parts`] — becomes one lane of the fleet-merged Chrome
/// trace.
#[derive(Default)]
struct TracePart {
    epoch_unix_micros: u64,
    dropped: u64,
    events: Vec<TraceEvent>,
}

/// Everything the scope plane adds to the lease loop: the optional
/// HTTP/SSE server, the fleet-trace piggyback switch, and the per-pid
/// trace accumulation. All observation — nothing in here feeds
/// scheduling.
struct ScopeCtx {
    server: Option<ScopeServer>,
    /// Leases ask workers to piggyback their trace rings (set when the
    /// coordinator itself runs with tracing on).
    trace: bool,
    parts: BTreeMap<u64, TracePart>,
    started: Instant,
}

impl ScopeCtx {
    /// Folds one piggybacked batch into its process's lane.
    fn absorb(&mut self, batch: Option<TraceBatch>) {
        let Some(batch) = batch else { return };
        let part = self.parts.entry(batch.pid).or_default();
        part.epoch_unix_micros = batch.epoch_unix_micros;
        part.dropped += batch.dropped;
        part.events.extend(batch.events);
    }

    /// Broadcasts one SSE event to `/events` subscribers, if any.
    fn emit(&mut self, event: &str, fields: Vec<(&str, Json)>) {
        if let Some(server) = self.server.as_mut() {
            server.broadcast(event, &obj(fields));
        }
    }
}

/// One EWMA step (the first report seeds the average).
fn ewma(prev: f64, sample: f64) -> f64 {
    if prev == 0.0 {
        sample
    } else {
        EWMA_ALPHA * sample + (1.0 - EWMA_ALPHA) * prev
    }
}

/// The straggler sweep: flags leased workers that went silent for half
/// the heartbeat deadline, or whose smoothed throughput sits far below
/// the fleet median. Flag transitions emit the SSE `straggler` event
/// and a trace span; the flags themselves surface as `/status`
/// warnings. Observation only — scheduling never reads them.
fn sweep_stragglers(dist: &DistConfig, live: &mut [Worker], scope: &mut ScopeCtx) {
    let now = Instant::now();
    let mut rates: Vec<f64> = live
        .iter()
        .filter(|w| w.greeted && w.lease.is_some() && !w.eof && w.ewma_rate > 0.0)
        .map(|w| w.ewma_rate)
        .collect();
    rates.sort_by(f64::total_cmp);
    let median = (!rates.is_empty()).then(|| rates[rates.len() / 2]);
    for worker in live.iter_mut() {
        let leased = worker.greeted && worker.lease.is_some() && !worker.eof && !worker.left;
        let gap = now.duration_since(worker.last_heard);
        let silent = leased && gap > dist.heartbeat_timeout / 2;
        let slow = leased
            && rates.len() >= 2
            && worker.ewma_rate > 0.0
            && median.is_some_and(|m| worker.ewma_rate < m * STRAGGLER_RATE_FRACTION);
        let straggling = silent || slow;
        if straggling && !worker.straggler {
            o4a_obs::trace::event(
                "dist",
                "worker.straggle",
                &[("worker", u64::from(worker.id))],
            );
            if o4a_obs::metrics_enabled() {
                o4a_obs::metrics::counter("dist.stragglers_flagged").inc();
            }
            scope.emit(
                "straggler",
                vec![
                    ("worker", Json::U64(u64::from(worker.id))),
                    (
                        "shard",
                        worker.lease.map_or(Json::Null, |s| Json::U64(u64::from(s))),
                    ),
                    ("silent_ms", Json::U64(gap.as_millis() as u64)),
                    ("ewma_cases_per_sec", Json::F64(worker.ewma_rate)),
                    (
                        "reason",
                        Json::Str(
                            if silent {
                                "heartbeat gap"
                            } else {
                                "throughput far below fleet median"
                            }
                            .to_string(),
                        ),
                    ),
                ],
            );
        }
        worker.straggler = straggling;
    }
}

/// Renders the `GET /status` snapshot from the loop's live state.
fn build_status(
    stats: &DistStats,
    live: &[Worker],
    state: &FleetState,
    started: Instant,
) -> ScopeStatus {
    let now = Instant::now();
    let mut fleet: Vec<ScopeWorker> = live
        .iter()
        .filter(|w| w.greeted)
        .map(|w| ScopeWorker {
            worker: w.id,
            lease: w.lease,
            cases: w.cases,
            lease_cases: w.lease_cases,
            leases_completed: w.leases_completed,
            cases_per_sec: w.live_rate,
            ewma_cases_per_sec: w.ewma_rate,
            last_heard_ms: now.duration_since(w.last_heard).as_millis() as u64,
            wall_ms: now.duration_since(w.spawned_at).as_millis() as u64,
            straggler: w.straggler,
        })
        .collect();
    fleet.sort_by_key(|w| w.worker);
    let warnings = live
        .iter()
        .filter(|w| w.greeted && w.straggler)
        .map(|w| {
            format!(
                "worker {} straggling{}: {:.1}s since last frame, ewma {:.1} cases/sec",
                w.id,
                w.lease.map_or(String::new(), |s| format!(" on shard {s}")),
                now.duration_since(w.last_heard).as_secs_f64(),
                w.ewma_rate,
            )
        })
        .collect();
    ScopeStatus {
        shards: stats.shards,
        workers: stats.workers,
        shards_done: state.done.len() as u32,
        shards_pending: state.pending.len() as u32,
        workers_spawned: stats.workers_spawned,
        worker_deaths: stats.worker_deaths,
        leases_granted: stats.leases_granted,
        leases_reissued: stats.leases_reissued,
        workers_joined: stats.workers_joined,
        workers_readopted: stats.workers_readopted,
        workers_left: stats.workers_left,
        shards_readopted: stats.shards_readopted,
        resumed: stats.resumed,
        cache: stats.cache,
        coverage: stats.coverage.clone(),
        fleet,
        warnings,
        elapsed_ms: started.elapsed().as_millis() as u64,
    }
}

/// Renders the `GET /metrics` Prometheus text: the coordinator's own
/// snapshot merged with every worker's latest, plus fleet gauges that
/// are present even when `O4A_METRICS` is off everywhere (so the
/// endpoint is never empty).
fn build_metrics(stats: &DistStats, live: &[Worker], state: &FleetState) -> String {
    let mut merged = o4a_obs::metrics::snapshot();
    for summary in &stats.per_worker {
        if let Some(metrics) = &summary.metrics {
            merged.merge(metrics);
        }
    }
    for worker in live {
        if let Some(metrics) = &worker.latest_metrics {
            merged.merge(metrics);
        }
    }
    let mut gauges: Vec<(String, f64)> = vec![
        (
            "fleet_workers_live".into(),
            live.iter().filter(|w| w.greeted && !w.eof).count() as f64,
        ),
        ("fleet_shards_total".into(), f64::from(stats.shards)),
        ("fleet_shards_done".into(), state.done.len() as f64),
        ("fleet_shards_pending".into(), state.pending.len() as f64),
        ("fleet_leases_granted".into(), stats.leases_granted as f64),
        ("fleet_leases_reissued".into(), stats.leases_reissued as f64),
        ("fleet_worker_deaths".into(), f64::from(stats.worker_deaths)),
        (
            "fleet_stragglers".into(),
            live.iter().filter(|w| w.straggler).count() as f64,
        ),
    ];
    for (solver, pct) in &stats.coverage {
        gauges.push((format!("coverage_line_pct_{solver}"), *pct));
    }
    o4a_obs::serve::render_prometheus(&merged, &gauges)
}

/// Runs `config`, split into `shards` deterministic shards, across a
/// fleet of workers, and merges their journals into one campaign
/// result.
///
/// The merged result is **bit-identical** to the same plan executed by
/// a single process ([`o4a_exec::run_campaign_sharded`] with
/// `exec.shards = shards`) in findings, final coverage maps, hourly
/// snapshot series, and statistics modulo the transport counters —
/// regardless of fleet size, transport, lease scheduling, workers
/// joining or dying mid-campaign (their leases re-issue and re-derive
/// the shard deterministically), or the coordinator itself being killed
/// and restarted over a checkpoint. The coordinator folds its own fleet
/// churn into the merged stats' transport counters: worker processes
/// into `processes_spawned`/`process_respawns`, lease churn into
/// `leases_granted`/`leases_reissued`.
///
/// # Errors
///
/// Worker-spawn and journal I/O errors, protocol violations, checkpoint
/// corruption, a pipe fleet that keeps dying until
/// [`DistConfig::max_respawns`] is exhausted, and a TCP fleet empty for
/// longer than [`DistConfig::accept_timeout`] with shards unfinished.
pub fn run_distributed(
    config: &CampaignConfig,
    shards: u32,
    dist: &DistConfig,
) -> io::Result<DistReport> {
    assert!(shards >= 1, "a campaign needs at least one shard");
    assert!(dist.workers >= 1, "a fleet needs at least one worker");
    o4a_obs::init_from_env();
    std::fs::create_dir_all(&dist.journal_dir)?;

    let plan = CampaignPlan {
        config: config.clone(),
        shards,
    };
    let mut stats = DistStats {
        shards,
        workers: dist.workers,
        ..DistStats::default()
    };
    let mut state = FleetState {
        pending: (0..shards).collect(),
        done: BTreeSet::new(),
        journals: Vec::new(),
        spawn_seq: 0,
        greet_seq: 0,
        completions_recorded: 0,
    };

    // Checkpoint replay: completed shards stay done, orphaned grants go
    // to the queue front (they are the oldest work), everything the
    // previous incarnation never granted follows in shard order.
    let mut checkpoint: Option<CheckpointSession> = None;
    let mut recorded_listen: Option<String> = None;
    if let Some(path) = &dist.checkpoint {
        let (session, replayed) = CheckpointStore::new(path).resume_or_create(&plan)?;
        if replayed.resumed {
            stats.resumed = true;
            o4a_obs::trace::event("dist", "coordinator.resume", &[]);
            if o4a_obs::metrics_enabled() {
                o4a_obs::metrics::counter("dist.coordinator_resumes").inc();
            }
            state.done = replayed.completed.keys().copied().collect();
            let mut pending: VecDeque<u32> = replayed.granted.keys().copied().collect();
            for shard in 0..shards {
                if !replayed.completed.contains_key(&shard)
                    && !replayed.granted.contains_key(&shard)
                {
                    pending.push_back(shard);
                }
            }
            state.pending = pending;
            stats.leases_reissued += replayed.granted.len() as u64;
            state.journals = replayed.journals;
            state.spawn_seq = replayed.next_worker_id;
            recorded_listen = replayed.listen;
        }
        checkpoint = Some(session);
    }

    // TCP: bind the listener — on resume, the *recorded* address, so a
    // fleet configured with port 0 still finds the restarted
    // coordinator on the port it has been knocking on.
    let listener = match &dist.transport {
        Transport::Pipes => None,
        Transport::Tcp { listen } => {
            let addr = recorded_listen.clone().unwrap_or_else(|| listen.clone());
            let bound = Listener::bind(&addr)
                .map_err(|e| io::Error::new(e.kind(), format!("cannot listen on {addr}: {e}")))?;
            if let Some(cp) = &checkpoint {
                if recorded_listen.as_deref() != Some(bound.local_addr()) {
                    cp.record_listen(bound.local_addr());
                }
            }
            Some(bound)
        }
    };

    // The scope plane: bound before the first lease so an observer can
    // watch the whole campaign. Failing to bind *is* an error (the user
    // asked for an observatory at a specific address); everything after
    // the bind is best-effort.
    let scope_server = match &dist.scope {
        None => None,
        Some(addr) => {
            let server = ScopeServer::bind(addr).map_err(|e| {
                io::Error::new(e.kind(), format!("cannot open scope plane on {addr}: {e}"))
            })?;
            eprintln!(
                "o4a-scope: observatory on http://{}/status",
                server.local_addr()
            );
            Some(server)
        }
    };
    let mut scope_ctx = ScopeCtx {
        server: scope_server,
        trace: o4a_obs::trace_enabled(),
        parts: BTreeMap::new(),
        started: Instant::now(),
    };

    let mut live: Vec<Worker> = Vec::new();
    if let Err(e) = drive_fleet(
        dist,
        &plan,
        &mut stats,
        &mut live,
        &mut state,
        checkpoint.as_ref(),
        listener.as_ref(),
        &mut scope_ctx,
    ) {
        // No worker connection outlives the campaign: kill and reap the
        // fleet before surfacing the error.
        for worker in live.drain(..) {
            if worker.greeted {
                stats.per_worker.push(worker.into_summary(false));
            }
        }
        return Err(e);
    }

    // Shutdown. Pipes: closing stdin is the EOF signal. TCP: an explicit
    // goodbye, so the worker's reconnect loop knows the campaign is over
    // rather than the coordinator dead.
    for mut worker in live {
        let clean = if let Some(child) = &mut worker.child {
            worker.link.close_input();
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                match child.try_wait() {
                    Ok(Some(status)) => break status.success(),
                    Err(_) => break false,
                    Ok(None) if Instant::now() >= deadline => break false,
                    Ok(None) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
        } else {
            if !worker.greeted {
                // A connection that never introduced itself: close it,
                // no summary.
                continue;
            }
            let farewell = Frame::Goodbye { worker: worker.id };
            worker.link.send_line(&farewell.to_line()).is_ok()
        };
        stats.per_worker.push(worker.into_summary(clean));
    }
    stats.per_worker.sort_by_key(|w| w.worker);
    for summary in &stats.per_worker {
        if let Some(metrics) = &summary.metrics {
            stats.fleet_metrics.merge(metrics);
        }
    }

    // Merge every journal the fleet ever touched — completed shards of
    // dead workers are scavenged, their half-run shard re-derived by the
    // re-issued lease. On a resumed coordinator the checkpoint supplied
    // the previous incarnations' journal paths too.
    let completed = FindingsStore::merge_from(config, shards, &state.journals)?;
    for shard in 0..shards {
        if !completed.contains_key(&shard) {
            return Err(bad(format!(
                "shard {shard} reported done but is missing from the merged journals"
            )));
        }
    }
    let ordered: Vec<CampaignResult> = completed.into_values().collect();
    let mut result = merge_shard_results(config, &ordered);
    result.stats.processes_spawned += stats.workers_spawned as u64 + stats.workers_joined;
    result.stats.process_respawns += stats.worker_deaths as u64;
    result.stats.leases_granted += stats.leases_granted;
    result.stats.leases_reissued += stats.leases_reissued;
    // Fleet-merged tracing: the piggybacked worker rings plus the
    // coordinator's own become one Chrome trace with a lane per
    // process. The coordinator's ring is folded in here, so its events
    // land on the shared timeline instead of a separate file.
    if scope_ctx.trace {
        let (events, dropped) = o4a_obs::trace::drain_events();
        if !events.is_empty() || dropped > 0 {
            let own = scope_ctx
                .parts
                .entry(u64::from(std::process::id()))
                .or_default();
            own.epoch_unix_micros = o4a_obs::trace::epoch_unix_micros();
            own.dropped += dropped;
            own.events.extend(events);
        }
        let parts: Vec<(TraceMeta, Vec<TraceEvent>)> = std::mem::take(&mut scope_ctx.parts)
            .into_iter()
            .map(|(pid, part)| {
                (
                    TraceMeta {
                        pid,
                        epoch_unix_micros: part.epoch_unix_micros,
                        events: part.events.len() as u64,
                        dropped: part.dropped,
                    },
                    part.events,
                )
            })
            .collect();
        if !parts.is_empty() {
            match o4a_obs::trace::export_chrome_trace_parts(&parts) {
                Ok(body) => {
                    let path = dist.journal_dir.join("fleet-trace.json");
                    match std::fs::write(&path, body) {
                        Ok(()) => stats.fleet_trace = Some(path),
                        Err(e) => eprintln!("o4a-scope: cannot write fleet trace: {e}"),
                    }
                }
                Err(e) => eprintln!("o4a-scope: fleet trace export failed: {e}"),
            }
        }
    }
    // The coordinator's own trace/metrics (lease lifecycle, spawns) go
    // to its configured obs dir; workers drained their own before the
    // clean exit above. Best-effort, like every obs path.
    if let Err(e) = o4a_obs::drain() {
        eprintln!("o4a-obs: coordinator drain failed: {e}");
    }
    Ok(DistReport { result, stats })
}

/// How often the loop wakes with nothing but the listener registered —
/// bounds how stale the zero-worker [`DistConfig::accept_timeout`]
/// bookkeeping can get.
const ACCEPT_TICK: Duration = Duration::from_millis(250);

/// The lease loop: runs until every shard is done, or errors with the
/// fleet in whatever state it reached — the caller owns `live` and must
/// retire (kill + reap) whatever is left on either path.
#[allow(clippy::too_many_arguments)]
fn drive_fleet(
    dist: &DistConfig,
    plan: &CampaignPlan,
    stats: &mut DistStats,
    live: &mut Vec<Worker>,
    state: &mut FleetState,
    checkpoint: Option<&CheckpointSession>,
    listener: Option<&Listener>,
    scope: &mut ScopeCtx,
) -> io::Result<()> {
    let reactor = FdReactor::new();
    let waker = WakeFlag::new().waker();
    let shards = plan.shards;
    let mut fleet_nonempty_at = Instant::now();

    loop {
        // Retire leavers (clean), the dead, and wedged workers (no frame
        // within the deadline while holding a lease), re-queueing their
        // leases. TCP connections that never said hello within the same
        // deadline are dropped without ceremony.
        let now = Instant::now();
        let mut i = 0;
        while i < live.len() {
            let stale = now.duration_since(live[i].last_heard) > dist.heartbeat_timeout;
            let left = live[i].left;
            let dead = live[i].eof;
            let wedged = live[i].lease.is_some() && stale;
            let ghost = !live[i].greeted && stale;
            if !(left || dead || wedged || ghost) {
                i += 1;
                continue;
            }
            let mut worker = live.swap_remove(i);
            if !worker.greeted {
                // Never joined: nothing to re-queue, nothing to report.
                continue;
            }
            if left {
                stats.workers_left += 1;
                o4a_obs::trace::event(
                    "dist",
                    "worker.goodbye",
                    &[("worker", u64::from(worker.id))],
                );
                if o4a_obs::metrics_enabled() {
                    o4a_obs::metrics::counter("dist.workers_left").inc();
                }
                scope.emit("goodbye", vec![("worker", Json::U64(u64::from(worker.id)))]);
            } else {
                stats.worker_deaths += 1;
                if wedged && !dead {
                    // The wedge-kill is the one retirement an operator
                    // will want to post-mortem: enumerate what the
                    // coordinator knew when it pulled the trigger.
                    eprintln!(
                        "o4a-dist: killing wedged worker {}: {:.1}s since last frame \
                         (deadline {:.1}s), holding shard {}, {} cases into the lease, \
                         last rate {:.1} cases/sec, ewma {:.1}",
                        worker.id,
                        now.duration_since(worker.last_heard).as_secs_f64(),
                        dist.heartbeat_timeout.as_secs_f64(),
                        worker.lease.map_or(-1_i64, i64::from),
                        worker.lease_cases,
                        worker.live_rate,
                        worker.ewma_rate,
                    );
                }
                o4a_obs::trace::event(
                    "dist",
                    if dead {
                        "worker.death"
                    } else {
                        "worker.wedged"
                    },
                    &[("worker", u64::from(worker.id))],
                );
                if o4a_obs::metrics_enabled() {
                    o4a_obs::metrics::counter("dist.worker_deaths").inc();
                }
                scope.emit(
                    "death",
                    vec![
                        ("worker", Json::U64(u64::from(worker.id))),
                        (
                            "kind",
                            Json::Str(if dead { "eof" } else { "wedged" }.to_string()),
                        ),
                    ],
                );
            }
            // A lease whose shard a re-adopt already credited is
            // redundant — completed work is never re-queued.
            if let Some(shard) = worker.lease.take().filter(|s| !state.done.contains(s)) {
                state.pending.push_front(shard);
                stats.leases_reissued += 1;
                o4a_obs::trace::event(
                    "dist",
                    "lease.reissue",
                    &[
                        ("shard", u64::from(shard)),
                        ("worker", u64::from(worker.id)),
                    ],
                );
                if o4a_obs::metrics_enabled() {
                    o4a_obs::metrics::counter("dist.leases_reissued").inc();
                }
                scope.emit(
                    "reissue",
                    vec![
                        ("shard", Json::U64(u64::from(shard))),
                        ("worker", Json::U64(u64::from(worker.id))),
                    ],
                );
            }
            stats.per_worker.push(worker.into_summary(left));
        }

        // Exit only once every live worker is idle too: a worker can
        // hold a lease whose shard a `re-adopt` completed out from under
        // it (redundant, deterministic). Waiting for its `done` lets the
        // shutdown goodbye land on a worker that is actually listening,
        // instead of stranding it mid-serve with a dead socket.
        if state.done.len() == shards as usize && live.iter().all(|w| w.lease.is_none()) {
            return Ok(());
        }

        match listener {
            // Pipes: top the fleet back up while unassigned work remains.
            None => loop {
                let idle = live.iter().filter(|w| w.lease.is_none()).count();
                if idle >= state.pending.len() || live.len() >= dist.workers as usize {
                    break;
                }
                if stats.workers_spawned >= dist.workers + dist.max_respawns {
                    return Err(io::Error::other(format!(
                        "worker fleet keeps dying: {} spawns exhausted with {} of {} shards unfinished",
                        stats.workers_spawned,
                        shards as usize - state.done.len(),
                        shards
                    )));
                }
                let worker = spawn_worker(dist, state.spawn_seq)?;
                state.track_journal(
                    worker.id,
                    worker.journal.clone().expect("pipe worker has a journal"),
                    checkpoint,
                );
                state.spawn_seq += 1;
                stats.workers_spawned += 1;
                scope.emit("hello", vec![("worker", Json::U64(u64::from(worker.id)))]);
                live.push(worker);
            },
            // TCP: membership is elastic — nobody to spawn, but a fleet
            // that stays *empty* with work remaining is stranded.
            Some(_) => {
                if live.is_empty() {
                    if fleet_nonempty_at.elapsed() > dist.accept_timeout {
                        return Err(io::Error::other(format!(
                            "no workers connected for {:?} with {} of {} shards unfinished",
                            dist.accept_timeout,
                            shards as usize - state.done.len(),
                            shards
                        )));
                    }
                } else {
                    fleet_nonempty_at = Instant::now();
                }
            }
        }

        // Grant: idle workers pull the queue front (work stealing), or —
        // under a static split — the first queued shard pinned to their
        // slot.
        for worker in live.iter_mut() {
            if worker.lease.is_some() || worker.eof || worker.left || !worker.greeted {
                continue;
            }
            let picked = if dist.static_split {
                let divisor = dist.workers.max(1);
                state
                    .pending
                    .iter()
                    .position(|&s| s % divisor == worker.slot % divisor)
            } else if state.pending.is_empty() {
                None
            } else {
                Some(0)
            };
            let Some(idx) = picked else { continue };
            let shard = state.pending[idx];
            // Grant durability precedes the grant itself: a coordinator
            // killed between the two records an orphaned lease, which a
            // resume re-issues — never a granted shard the checkpoint
            // has no memory of.
            if let Some(cp) = checkpoint {
                cp.record_grant(shard, worker.id);
            }
            match worker.send_lease(shard, plan, scope.trace) {
                Ok(()) => {
                    state.pending.remove(idx);
                    worker.lease = Some(shard);
                    worker.last_heard = Instant::now();
                    stats.leases_granted += 1;
                    o4a_obs::trace::event(
                        "dist",
                        "lease.grant",
                        &[
                            ("shard", u64::from(shard)),
                            ("worker", u64::from(worker.id)),
                        ],
                    );
                    if o4a_obs::metrics_enabled() {
                        o4a_obs::metrics::counter("dist.leases_granted").inc();
                    }
                    scope.emit(
                        "lease",
                        vec![
                            ("shard", Json::U64(u64::from(shard))),
                            ("worker", Json::U64(u64::from(worker.id))),
                        ],
                    );
                }
                // A broken pipe is a death notice; the retire pass picks
                // the worker up next iteration and the shard stays queued.
                Err(_) => worker.eof = true,
            }
        }

        // Wait for frames: every live read fd rides the poll(2) reactor —
        // pipe stdouts and worker sockets alike — leased workers with
        // their heartbeat deadline attached, pre-hello connections with
        // their cull deadline, and the accept socket (whose POLLIN means
        // a worker is joining) with a short tick so the zero-worker
        // bookkeeping above stays fresh.
        let mut tokens = Vec::with_capacity(live.len() + 1);
        for worker in live.iter().filter(|w| !w.eof) {
            let deadline = (worker.lease.is_some() || !worker.greeted)
                .then(|| worker.last_heard + dist.heartbeat_timeout);
            tokens.push(reactor.register(worker.fd(), Interest::Read, waker.clone(), deadline));
        }
        if let Some(listener) = listener {
            tokens.push(reactor.register(
                listener.fd(),
                Interest::Read,
                waker.clone(),
                Some(Instant::now() + ACCEPT_TICK),
            ));
        }
        // The scope plane rides the same poll: its listener gets the
        // accept tick (which also keeps SSE flushes and straggler
        // sweeps timely), its clients their read/write readiness.
        if let Some(server) = scope.server.as_ref() {
            server.register(&reactor, &waker, ACCEPT_TICK, &mut tokens);
        }
        if !tokens.is_empty() {
            reactor.poll_io(None)?;
        }
        for token in tokens {
            reactor.deregister(token);
        }

        // Accept joiners (every queued connect, not just one per wake).
        if let Some(listener) = listener {
            while let Some(stream) = listener.accept()? {
                // A connection dead between accept and fcntl is dropped;
                // the joiner will retry.
                if let Ok(link) = Link::tcp(stream) {
                    live.push(accepted_worker(link));
                }
            }
        }

        // Observe the fleet: sweep for stragglers, then answer whatever
        // the observatory's clients asked. Both are read-only over the
        // campaign state, and the payload closures run at most once per
        // pass — only when a matching request actually arrived.
        sweep_stragglers(dist, live, scope);
        if let Some(server) = scope.server.as_mut() {
            let started = scope.started;
            server.service(
                || {
                    build_status(stats, live, state, started)
                        .to_json()
                        .to_line()
                },
                || build_metrics(stats, live, state),
            );
        }

        // Drain and handle frames.
        for worker in live.iter_mut() {
            if worker.eof {
                continue;
            }
            loop {
                match worker.link.read_available(&mut worker.buf)? {
                    Some(0) => {
                        worker.eof = true;
                        break;
                    }
                    Some(_) => continue,
                    None => break,
                }
            }
            for line in take_lines(&mut worker.buf) {
                worker.last_heard = Instant::now();
                match Frame::from_line(&line) {
                    Ok(Frame::Hello {
                        worker: wid,
                        journal: path,
                    })
                    | Ok(Frame::JournalPath { worker: wid, path }) => {
                        let announced = PathBuf::from(path);
                        if !worker.greeted {
                            worker.id = wid;
                            worker.greeted = true;
                            worker.slot = state.greet_seq;
                            state.greet_seq += 1;
                            stats.workers_joined += 1;
                            o4a_obs::trace::event(
                                "dist",
                                "worker.join",
                                &[("worker", u64::from(wid))],
                            );
                            if o4a_obs::metrics_enabled() {
                                o4a_obs::metrics::counter("dist.workers_joined").inc();
                            }
                            scope.emit("hello", vec![("worker", Json::U64(u64::from(wid)))]);
                        }
                        if worker.journal.as_ref() != Some(&announced) {
                            state.track_journal(worker.id, announced.clone(), checkpoint);
                            worker.journal = Some(announced);
                        }
                    }
                    Ok(Frame::ReAdopt {
                        worker: wid,
                        completed,
                    }) => {
                        if !worker.greeted {
                            worker.eof = true;
                            break;
                        }
                        stats.workers_readopted += 1;
                        o4a_obs::trace::event(
                            "dist",
                            "worker.readopt",
                            &[
                                ("worker", u64::from(wid)),
                                ("completed", completed.len() as u64),
                            ],
                        );
                        if o4a_obs::metrics_enabled() {
                            o4a_obs::metrics::counter("dist.workers_readopted").inc();
                        }
                        for lease in completed {
                            if !state.done.insert(lease.shard) {
                                continue; // already credited — idempotent
                            }
                            state.pending.retain(|&s| s != lease.shard);
                            stats.shards_readopted += 1;
                            worker.leases_completed += 1;
                            worker.cases += lease.cases;
                            if let Some(cp) = checkpoint {
                                cp.record_complete(lease.shard, wid, lease.cases, lease.findings);
                            }
                            state.completions_recorded += 1;
                        }
                        exit_if_armed(dist, state);
                    }
                    Ok(Frame::Goodbye { .. }) => {
                        worker.left = true;
                        break;
                    }
                    Ok(Frame::Progress {
                        shard,
                        cases,
                        cases_per_sec,
                        metrics,
                        trace,
                        ..
                    }) => {
                        if worker.lease == Some(shard) {
                            worker.lease_cases = cases;
                            worker.live_rate = cases_per_sec;
                            worker.ewma_rate = ewma(worker.ewma_rate, cases_per_sec);
                            if metrics.is_some() {
                                worker.latest_metrics = metrics;
                            }
                            scope.absorb(trace);
                        }
                    }
                    Ok(Frame::Done {
                        shard,
                        cases,
                        findings,
                        cases_per_sec,
                        metrics,
                        cache,
                        trace,
                        coverage,
                    }) => {
                        if worker.lease != Some(shard) {
                            if state.done.contains(&shard) {
                                // A redundant lease from an older
                                // coordinator incarnation finishing late:
                                // deterministic, already merged — ignore.
                                continue;
                            }
                            return Err(bad(format!(
                                "worker {} completed shard {shard} it does not hold",
                                worker.id
                            )));
                        }
                        worker.lease = None;
                        worker.lease_cases = 0;
                        worker.leases_completed += 1;
                        worker.cases += cases;
                        worker.live_rate = cases_per_sec;
                        worker.ewma_rate = ewma(worker.ewma_rate, cases_per_sec);
                        if metrics.is_some() {
                            worker.latest_metrics = metrics;
                        }
                        scope.absorb(trace);
                        // Coverage converges upward as shards complete:
                        // keep the running maximum per solver, and tell
                        // the observatory when it moves.
                        for (solver, pct) in coverage {
                            let best = stats.coverage.entry(solver.clone()).or_insert(0.0);
                            if pct > *best {
                                *best = pct;
                                scope.emit(
                                    "coverage",
                                    vec![
                                        ("solver", Json::Str(solver)),
                                        ("line_pct", Json::F64(pct)),
                                    ],
                                );
                            }
                        }
                        stats.cache.hits += cache.hits;
                        stats.cache.misses += cache.misses;
                        stats.cache.prefix_reuses += cache.prefix_reuses;
                        state.done.insert(shard);
                        if let Some(cp) = checkpoint {
                            cp.record_complete(shard, worker.id, cases, findings);
                        }
                        state.completions_recorded += 1;
                        o4a_obs::trace::event(
                            "dist",
                            "lease.done",
                            &[
                                ("shard", u64::from(shard)),
                                ("worker", u64::from(worker.id)),
                                ("cases", cases),
                            ],
                        );
                        scope.emit(
                            "done",
                            vec![
                                ("shard", Json::U64(u64::from(shard))),
                                ("worker", Json::U64(u64::from(worker.id))),
                                ("cases", Json::U64(cases)),
                            ],
                        );
                        if findings > 0 {
                            scope.emit(
                                "findings",
                                vec![
                                    ("shard", Json::U64(u64::from(shard))),
                                    ("worker", Json::U64(u64::from(worker.id))),
                                    ("count", Json::U64(findings)),
                                ],
                            );
                        }
                        exit_if_armed(dist, state);
                    }
                    // A worker speaking garbage — or echoing frames only
                    // the coordinator may send — is as trustworthy as a
                    // dead one: retire it and re-issue its lease.
                    Ok(Frame::Lease { .. }) | Err(_) => {
                        worker.eof = true;
                        break;
                    }
                }
            }
        }
    }
}

/// The coordinator-kill fault injection: dies like a segfault right
/// after the checkpoint made the Nth completion durable.
fn exit_if_armed(dist: &DistConfig, state: &FleetState) {
    if let Some(after) = dist.exit_after_completions {
        if state.completions_recorded >= after {
            eprintln!(
                "o4a-dist: injected coordinator death after {} completions",
                state.completions_recorded
            );
            std::process::exit(9);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> DistConfig {
        DistConfig::new(vec!["worker".into()], "/tmp/o4a-env-test")
    }

    /// All env-override coverage lives in ONE test: `#[test]`s share the
    /// process, and `std::env` is process-global.
    #[test]
    fn env_overrides_parse_tolerantly() {
        let keys = [
            "O4A_DIST_WORKERS",
            "O4A_DIST_HEARTBEAT_MS",
            "O4A_DIST_MAX_RESPAWNS",
            "O4A_DIST_LISTEN",
            "O4A_CHECKPOINT",
            "O4A_SCOPE",
        ];
        for key in keys {
            std::env::remove_var(key);
        }

        // Unset: everything keeps its builder value.
        let cfg = base()
            .with_workers(3)
            .with_heartbeat_timeout(Duration::from_millis(1234))
            .with_env_overrides();
        assert_eq!(cfg.workers, 3);
        assert_eq!(cfg.heartbeat_timeout, Duration::from_millis(1234));
        assert_eq!(cfg.max_respawns, 8);
        assert_eq!(cfg.transport, Transport::Pipes);
        assert!(cfg.checkpoint.is_none());
        assert!(cfg.scope.is_none());

        // Invalid values: ignored, not errors — a campaign must not die
        // to a typo'd shell export.
        std::env::set_var("O4A_DIST_WORKERS", "zero");
        std::env::set_var("O4A_DIST_HEARTBEAT_MS", "-5");
        std::env::set_var("O4A_DIST_MAX_RESPAWNS", "8.5");
        std::env::set_var("O4A_DIST_LISTEN", "   ");
        std::env::set_var("O4A_CHECKPOINT", "");
        std::env::set_var("O4A_SCOPE", "  ");
        let cfg = base().with_workers(3).with_env_overrides();
        assert_eq!(cfg.workers, 3);
        assert_eq!(cfg.heartbeat_timeout, Duration::from_secs(30));
        assert_eq!(cfg.max_respawns, 8);
        assert_eq!(cfg.transport, Transport::Pipes);
        assert!(cfg.checkpoint.is_none());
        assert!(cfg.scope.is_none(), "blank O4A_SCOPE stays dark");

        // Zero workers is invalid too (a fleet needs one).
        std::env::set_var("O4A_DIST_WORKERS", "0");
        assert_eq!(base().with_workers(3).with_env_overrides().workers, 3);

        // Valid values land, whitespace trimmed.
        std::env::set_var("O4A_DIST_WORKERS", " 6 ");
        std::env::set_var("O4A_DIST_HEARTBEAT_MS", "250");
        std::env::set_var("O4A_DIST_MAX_RESPAWNS", "0");
        std::env::set_var("O4A_DIST_LISTEN", " 127.0.0.1:0 ");
        std::env::set_var("O4A_CHECKPOINT", "/tmp/cp.jsonl");
        std::env::set_var("O4A_SCOPE", " 127.0.0.1:9090 ");
        let cfg = base().with_env_overrides();
        assert_eq!(cfg.scope.as_deref(), Some("127.0.0.1:9090"));
        assert_eq!(cfg.workers, 6);
        assert_eq!(cfg.heartbeat_timeout, Duration::from_millis(250));
        assert_eq!(
            cfg.max_respawns, 0,
            "an explicit zero respawn budget is valid"
        );
        assert_eq!(
            cfg.transport,
            Transport::Tcp {
                listen: "127.0.0.1:0".into()
            }
        );
        assert_eq!(
            cfg.checkpoint.as_deref(),
            Some(std::path::Path::new("/tmp/cp.jsonl"))
        );

        for key in keys {
            std::env::remove_var(key);
        }
    }

    #[test]
    fn with_env_accumulates_worker_environment() {
        let cfg = base()
            .with_env("O4A_TRACE", "/tmp/t")
            .with_env("O4A_METRICS", "/tmp/m");
        assert_eq!(
            cfg.envs,
            vec![
                ("O4A_TRACE".to_string(), "/tmp/t".to_string()),
                ("O4A_METRICS".to_string(), "/tmp/m".to_string()),
            ]
        );
    }
}
