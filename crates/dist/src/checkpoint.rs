//! The coordinator's resumable lease checkpoint: an append-only JSONL
//! journal of fleet state, in the `FindingsStore` idiom (fsync per
//! record, header fingerprint, torn final line tolerated).
//!
//! ## File format
//!
//! One JSON object per line:
//!
//! * `{"t":"coordinator","campaign":{...},"version":1}` — header: the
//!   canonical [`CampaignPlan`] encoding. Written once, first. Resuming
//!   against a checkpoint whose plan differs is refused.
//! * `{"t":"listen","addr":"host:port"}` — the actual bound listen
//!   address (port 0 resolved), so a coordinator configured with
//!   `127.0.0.1:0` restarts on the **same** port its fleet is
//!   reconnecting to.
//! * `{"t":"journal","path":...,"worker":n}` — a worker's findings
//!   journal, the moment it is known. The final merge unions every
//!   journal any incarnation of the coordinator ever learned about.
//! * `{"t":"grant","shard":s,"worker":n}` — lease granted. Written
//!   durably **before** the lease frame is sent.
//! * `{"t":"complete","cases":c,"findings":f,"shard":s,"worker":n}` —
//!   the shard's `done` (or `re-adopt` credit) arrived; its
//!   `shard_done` record is durable in the worker's journal.
//!
//! ## Resume semantics
//!
//! Replay is a fold: `complete` beats `grant`. Shards with a `grant`
//! but no `complete` are **orphaned leases** — a restarted coordinator
//! puts them back at the front of the queue. If the orphan's worker is
//! in fact still alive and finishing the lease, the re-issued grant
//! merely duplicates work: shard execution is deterministic and the
//! journal merge dedups, so the merged result cannot tell. That is also
//! why every append is best-effort like [`o4a_exec::FindingsStore`]'s:
//! a *lost* record can only cause re-derivation, never wrong results.

use crate::protocol::CampaignPlan;
use o4a_exec::json::{obj, parse, Json};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// A checkpoint bound to one JSONL file path.
#[derive(Clone, Debug)]
pub struct CheckpointStore {
    path: PathBuf,
}

/// What a checkpoint replay reconstructs.
#[derive(Debug, Default)]
pub struct CheckpointState {
    /// True when the file already existed with a valid header — this
    /// coordinator is a restart, not a fresh campaign.
    pub resumed: bool,
    /// The previously recorded listen address, if any.
    pub listen: Option<String>,
    /// Every worker journal any incarnation learned about, in record
    /// order, deduplicated.
    pub journals: Vec<PathBuf>,
    /// Outstanding grants: shard → last holder. On resume these are
    /// orphaned leases to re-issue.
    pub granted: BTreeMap<u32, u32>,
    /// Completed shards: shard → (cases, findings).
    pub completed: BTreeMap<u32, (u64, u64)>,
    /// One past the highest worker id on record — where a restarted
    /// coordinator resumes numbering spawned workers, so a fresh spawn
    /// can never clobber a previous incarnation's journal file.
    pub next_worker_id: u32,
}

impl CheckpointStore {
    /// Binds a checkpoint to `path` (the file need not exist yet).
    pub fn new(path: impl Into<PathBuf>) -> CheckpointStore {
        CheckpointStore { path: path.into() }
    }

    /// The checkpoint path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Opens the checkpoint: creates it (writing the header) when
    /// absent, or replays it. The returned session appends to the same
    /// file.
    ///
    /// # Errors
    ///
    /// I/O errors, a corrupt checkpoint (torn *final* line excepted), or
    /// a header that fingerprints a different campaign plan.
    pub fn resume_or_create(
        &self,
        plan: &CampaignPlan,
    ) -> io::Result<(CheckpointSession, CheckpointState)> {
        let header = header_record(plan);
        let exists = self.path.exists() && std::fs::metadata(&self.path)?.len() > 0;
        let mut state = CheckpointState::default();
        if exists {
            state = replay(&self.path, &header)?;
            state.resumed = true;
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        let mut writer = BufWriter::new(file);
        if !exists {
            writeln!(writer, "{}", header.to_line())?;
            writer.flush()?;
            writer.get_ref().sync_data()?;
        }
        Ok((
            CheckpointSession {
                writer: Mutex::new(writer),
            },
            state,
        ))
    }
}

/// An open, appendable checkpoint. Every record is fsync'd on write,
/// best-effort (see the module docs for why a lost record is safe).
#[derive(Debug)]
pub struct CheckpointSession {
    writer: Mutex<BufWriter<File>>,
}

impl CheckpointSession {
    fn append(&self, record: Json) {
        let mut writer = self.writer.lock().expect("checkpoint writer poisoned");
        let _ = writeln!(writer, "{}", record.to_line());
        let _ = writer.flush();
        let _ = writer.get_ref().sync_data();
    }

    /// Records the actual bound listen address.
    pub fn record_listen(&self, addr: &str) {
        self.append(obj(vec![
            ("t", Json::Str("listen".into())),
            ("addr", Json::Str(addr.to_string())),
        ]));
    }

    /// Records a worker's findings journal.
    pub fn record_journal(&self, worker: u32, path: &Path) {
        self.append(obj(vec![
            ("t", Json::Str("journal".into())),
            ("worker", Json::U64(worker as u64)),
            ("path", Json::Str(path.display().to_string())),
        ]));
    }

    /// Records a lease grant. Call **before** sending the lease frame.
    pub fn record_grant(&self, shard: u32, worker: u32) {
        self.append(obj(vec![
            ("t", Json::Str("grant".into())),
            ("shard", Json::U64(shard as u64)),
            ("worker", Json::U64(worker as u64)),
        ]));
    }

    /// Records a shard completion.
    pub fn record_complete(&self, shard: u32, worker: u32, cases: u64, findings: u64) {
        self.append(obj(vec![
            ("t", Json::Str("complete".into())),
            ("shard", Json::U64(shard as u64)),
            ("worker", Json::U64(worker as u64)),
            ("cases", Json::U64(cases)),
            ("findings", Json::U64(findings)),
        ]));
    }
}

fn header_record(plan: &CampaignPlan) -> Json {
    obj(vec![
        ("t", Json::Str("coordinator".into())),
        ("version", Json::U64(1)),
        ("campaign", plan.to_json()),
    ])
}

fn u64_field(json: &Json, key: &str) -> io::Result<u64> {
    json.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| bad(format!("checkpoint record missing '{key}'")))
}

fn replay(path: &Path, header: &Json) -> io::Result<CheckpointState> {
    let reader = BufReader::new(File::open(path)?);
    let lines: Vec<String> = reader.lines().collect::<Result<_, _>>()?;
    let mut state = CheckpointState::default();
    let mut seen_header = false;
    for (idx, line) in lines.iter().enumerate() {
        let last = idx + 1 == lines.len();
        if line.trim().is_empty() {
            continue;
        }
        // A torn final line is the crash-window artifact the JSONL
        // format exists to tolerate; a torn middle line is corruption.
        let json = match parse(line) {
            Ok(json) => json,
            Err(e) if last => {
                let _ = e;
                break;
            }
            Err(e) => return Err(bad(format!("corrupt checkpoint line {}: {e}", idx + 1))),
        };
        let tag = json.get("t").and_then(Json::as_str).unwrap_or("");
        if !seen_header {
            if tag != "coordinator" {
                return Err(bad("checkpoint does not start with a coordinator header"));
            }
            if json != *header {
                return Err(bad(
                    "checkpoint belongs to a different campaign plan — refusing to resume",
                ));
            }
            seen_header = true;
            continue;
        }
        match tag {
            "listen" => {
                if let Some(addr) = json.get("addr").and_then(Json::as_str) {
                    state.listen = Some(addr.to_string());
                }
            }
            "journal" => {
                let worker = u64_field(&json, "worker")? as u32;
                state.next_worker_id = state.next_worker_id.max(worker + 1);
                let journal = PathBuf::from(
                    json.get("path")
                        .and_then(Json::as_str)
                        .ok_or_else(|| bad("journal record missing 'path'"))?,
                );
                if !state.journals.contains(&journal) {
                    state.journals.push(journal);
                }
            }
            "grant" => {
                let shard = u64_field(&json, "shard")? as u32;
                let worker = u64_field(&json, "worker")? as u32;
                state.next_worker_id = state.next_worker_id.max(worker + 1);
                if !state.completed.contains_key(&shard) {
                    state.granted.insert(shard, worker);
                }
            }
            "complete" => {
                let shard = u64_field(&json, "shard")? as u32;
                let worker = u64_field(&json, "worker")? as u32;
                state.next_worker_id = state.next_worker_id.max(worker + 1);
                state.completed.insert(
                    shard,
                    (u64_field(&json, "cases")?, u64_field(&json, "findings")?),
                );
                state.granted.remove(&shard);
            }
            other if last => {
                // A complete-but-unknown final record from a newer
                // incarnation mid-write is indistinguishable from a torn
                // line for our purposes; everything before it replayed.
                let _ = other;
                break;
            }
            other => return Err(bad(format!("unknown checkpoint record '{other}'"))),
        }
    }
    if !seen_header {
        return Err(bad("checkpoint has no header"));
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use o4a_core::CampaignConfig;

    fn plan() -> CampaignPlan {
        CampaignPlan {
            config: CampaignConfig {
                virtual_hours: 2,
                max_cases: 40,
                seed: 7,
                ..CampaignConfig::default()
            },
            shards: 4,
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("o4a-checkpoint-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("coordinator.jsonl")
    }

    #[test]
    fn fresh_checkpoint_then_replay_reconstructs_the_fold() {
        let path = temp_path("fold");
        let store = CheckpointStore::new(&path);
        let (session, state) = store.resume_or_create(&plan()).unwrap();
        assert!(!state.resumed);
        session.record_listen("127.0.0.1:4747");
        session.record_journal(0, Path::new("/tmp/w0.jsonl"));
        session.record_journal(1, Path::new("/tmp/w1.jsonl"));
        session.record_grant(0, 0);
        session.record_grant(1, 1);
        session.record_complete(0, 0, 10, 2);
        session.record_grant(2, 0);
        drop(session);

        let (_session, state) = store.resume_or_create(&plan()).unwrap();
        assert!(state.resumed);
        assert_eq!(state.listen.as_deref(), Some("127.0.0.1:4747"));
        assert_eq!(
            state.journals,
            vec![
                PathBuf::from("/tmp/w0.jsonl"),
                PathBuf::from("/tmp/w1.jsonl")
            ]
        );
        // Shard 0 completed (grant superseded); shards 1 and 2 orphaned.
        assert_eq!(state.completed.get(&0), Some(&(10, 2)));
        assert_eq!(
            state.granted.keys().copied().collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert_eq!(state.next_worker_id, 2);
    }

    #[test]
    fn torn_final_line_is_tolerated_and_mid_file_corruption_is_not() {
        let path = temp_path("torn");
        let store = CheckpointStore::new(&path);
        let (session, _) = store.resume_or_create(&plan()).unwrap();
        session.record_grant(3, 0);
        drop(session);
        // Simulate a crash mid-append.
        let mut raw = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        write!(raw, "{{\"t\":\"comp").unwrap();
        drop(raw);
        let (_s, state) = store.resume_or_create(&plan()).unwrap();
        assert_eq!(state.granted.get(&3), Some(&0), "replay stops at the tear");

        // Now corrupt a middle line.
        let garbled = std::fs::read_to_string(&path)
            .unwrap()
            .replace("\"t\":\"grant\"", "\"t\":\"gra");
        std::fs::write(&path, garbled).unwrap();
        assert!(store.resume_or_create(&plan()).is_err());
    }

    #[test]
    fn wrong_campaign_is_refused() {
        let path = temp_path("wrong-plan");
        let store = CheckpointStore::new(&path);
        drop(store.resume_or_create(&plan()).unwrap());
        let mut other = plan();
        other.config.seed ^= 1;
        let err = store.resume_or_create(&other).unwrap_err();
        assert!(err.to_string().contains("different campaign"), "{err}");
    }

    #[test]
    fn completion_is_idempotent_across_duplicate_records() {
        // A re-adopted completion may be recorded after the same shard's
        // original `complete` (two coordinator incarnations, or a
        // redundant lease) — the fold must not resurrect a grant.
        let path = temp_path("dup");
        let store = CheckpointStore::new(&path);
        let (session, _) = store.resume_or_create(&plan()).unwrap();
        session.record_grant(1, 0);
        session.record_complete(1, 0, 12, 0);
        session.record_grant(1, 1); // redundant re-issue by a confused run
        session.record_complete(1, 1, 12, 0);
        drop(session);
        let (_s, state) = store.resume_or_create(&plan()).unwrap();
        assert!(state.granted.is_empty());
        assert_eq!(state.completed.get(&1), Some(&(12, 0)));
    }
}
