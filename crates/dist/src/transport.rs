//! The pluggable wire between the coordinator and its workers.
//!
//! The control protocol ([`crate::protocol`]) is transport-agnostic
//! JSONL; this module supplies the two wires it rides:
//!
//! * **Pipes** (the default): the coordinator spawns each worker and
//!   speaks over its stdin/stdout. Fleet membership is whatever the
//!   coordinator spawned; shutdown is closing stdin.
//! * **TCP**: the coordinator binds a listener and workers *join* by
//!   connecting (`dist_worker --connect host:port`). Membership is
//!   elastic — a worker may connect mid-campaign and immediately pull
//!   the next lease, or leave and have its lease re-issued. Shutdown is
//!   an explicit `goodbye` frame, because a closed socket alone cannot
//!   tell "campaign complete" from "coordinator died".
//!
//! Both wires end up as one [`Link`] per worker on the coordinator:
//! a readable fd that rides the `o4a-executor` `poll(2)` reactor
//! (pipe stdout or socket — the reactor does not care) plus a
//! line-oriented send path. Socket reads are non-blocking like pipe
//! reads; socket *writes* poll for writability with a deadline, since a
//! peer that keeps its receive window shut for seconds while being sent
//! a few hundred bytes of frame is as dead as a closed pipe.

use o4a_executor::{read_available, set_nonblocking, write_available};
use std::io::{self, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::{AsRawFd, RawFd};
use std::process::{ChildStdin, ChildStdout};
use std::time::{Duration, Instant};

/// How the coordinator reaches its fleet.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum Transport {
    /// Spawn workers locally and speak over stdin/stdout pipes.
    #[default]
    Pipes,
    /// Bind a TCP listener and let workers join by connecting.
    Tcp {
        /// The address to listen on, e.g. `127.0.0.1:0` (port 0 picks a
        /// free port; [`crate::run_distributed`] records the actual one
        /// in the checkpoint so a resumed coordinator reuses it).
        listen: String,
    },
}

/// A socket write that cannot complete within this window means the
/// peer stopped reading frames entirely — treat it like a broken pipe.
const SEND_DEADLINE: Duration = Duration::from_secs(10);

/// Coordinator-side connection to one worker: the pipe pair of a
/// spawned child, or an accepted socket.
pub(crate) enum Link {
    /// stdin/stdout of a coordinator-spawned worker. `stdin` becomes
    /// `None` once closed for the EOF shutdown signal.
    Pipe {
        stdin: Option<ChildStdin>,
        stdout: ChildStdout,
    },
    /// An accepted worker connection (non-blocking).
    Tcp { stream: TcpStream },
}

impl Link {
    /// Wraps an accepted socket, switching it to non-blocking so it can
    /// ride the reactor like a pipe stdout.
    pub(crate) fn tcp(stream: TcpStream) -> io::Result<Link> {
        set_nonblocking(stream.as_raw_fd())?;
        Ok(Link::Tcp { stream })
    }

    /// The fd whose read-readiness the reactor polls.
    pub(crate) fn read_fd(&self) -> RawFd {
        match self {
            Link::Pipe { stdout, .. } => stdout.as_raw_fd(),
            Link::Tcp { stream } => stream.as_raw_fd(),
        }
    }

    /// Drains whatever the worker has sent (see
    /// [`o4a_executor::read_available`]): `Some(0)` is EOF/hangup,
    /// `None` means nothing available right now.
    pub(crate) fn read_available(&mut self, buf: &mut Vec<u8>) -> io::Result<Option<usize>> {
        match self {
            Link::Pipe { stdout, .. } => read_available(stdout, buf),
            Link::Tcp { stream } => read_available(stream, buf),
        }
    }

    /// Sends one protocol line (newline appended). Pipe writes block in
    /// the kernel as before; socket writes retry up to [`SEND_DEADLINE`].
    pub(crate) fn send_line(&mut self, line: &str) -> io::Result<()> {
        match self {
            Link::Pipe { stdin, .. } => {
                let stdin = stdin.as_mut().ok_or_else(|| {
                    io::Error::new(io::ErrorKind::BrokenPipe, "worker stdin already closed")
                })?;
                writeln!(stdin, "{line}")?;
                stdin.flush()
            }
            Link::Tcp { stream } => {
                let bytes = format!("{line}\n");
                send_all(stream, bytes.as_bytes())
            }
        }
    }

    /// The pipe shutdown signal: close the worker's stdin so it exits
    /// on EOF. No-op for sockets (they get a `goodbye` frame instead).
    pub(crate) fn close_input(&mut self) {
        if let Link::Pipe { stdin, .. } = self {
            drop(stdin.take());
        }
    }
}

/// Writes all of `bytes` to a non-blocking socket, sleeping briefly on
/// a full send buffer, erroring past [`SEND_DEADLINE`]. Frames are tiny
/// (a lease is under 1 KiB), so the loop body runs once on any healthy
/// peer.
fn send_all(stream: &mut TcpStream, bytes: &[u8]) -> io::Result<()> {
    let deadline = Instant::now() + SEND_DEADLINE;
    let mut sent = 0usize;
    while sent < bytes.len() {
        sent += write_available(stream, &bytes[sent..])?;
        if sent < bytes.len() {
            if Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "worker stopped reading frames",
                ));
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    Ok(())
}

/// The coordinator's accept socket: non-blocking, so accept-readiness
/// rides the same reactor poll as worker frames.
pub(crate) struct Listener {
    inner: TcpListener,
    addr: String,
}

impl Listener {
    /// Binds `addr` non-blocking, recording the actual local address
    /// (resolving port 0 to the kernel's pick).
    pub(crate) fn bind(addr: &str) -> io::Result<Listener> {
        let inner = TcpListener::bind(addr)?;
        inner.set_nonblocking(true)?;
        let addr = inner.local_addr()?.to_string();
        Ok(Listener { inner, addr })
    }

    /// The actual listen address (`host:port`, port never 0).
    pub(crate) fn local_addr(&self) -> &str {
        &self.addr
    }

    /// The fd whose accept-readiness the reactor polls (`POLLIN` on a
    /// listening socket means a connection is waiting).
    pub(crate) fn fd(&self) -> RawFd {
        self.inner.as_raw_fd()
    }

    /// Accepts one pending connection, `None` when nothing is queued.
    pub(crate) fn accept(&self) -> io::Result<Option<TcpStream>> {
        match self.inner.accept() {
            Ok((stream, _peer)) => Ok(Some(stream)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// Worker-side connect with retry: the coordinator may not be up yet
/// (or may be *restarting* — the whole point of the checkpoint), so the
/// worker keeps knocking every 100 ms until `window` elapses.
///
/// The returned stream is left **blocking**: the worker is a
/// synchronous lease-serving loop, not a reactor.
///
/// # Errors
///
/// The last connection error once `window` is exhausted.
pub fn connect_with_retry(addr: &str, window: Duration) -> io::Result<TcpStream> {
    let deadline = Instant::now() + window;
    loop {
        // Re-resolve per attempt; resolution failures count as attempts.
        let result = addr
            .to_socket_addrs()
            .and_then(|mut addrs| {
                addrs.next().ok_or_else(|| {
                    io::Error::new(io::ErrorKind::NotFound, "address resolved empty")
                })
            })
            .and_then(|a| TcpStream::connect_timeout(&a, Duration::from_secs(2)));
        match result {
            Ok(stream) => {
                stream.set_nodelay(true).ok();
                return Ok(stream);
            }
            Err(e) if Instant::now() >= deadline => {
                return Err(io::Error::new(
                    e.kind(),
                    format!("no coordinator at {addr} within {window:?}: {e}"),
                ));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(100)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    #[test]
    fn listener_resolves_port_zero_and_accepts() {
        let listener = Listener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().to_string();
        assert!(!addr.ends_with(":0"), "port 0 must resolve: {addr}");
        assert!(listener.accept().unwrap().is_none(), "no one connected yet");

        let client = connect_with_retry(&addr, Duration::from_secs(5)).unwrap();
        // Accept is non-blocking; the connect may take a beat to land in
        // the accept queue.
        let deadline = Instant::now() + Duration::from_secs(5);
        let accepted = loop {
            if let Some(stream) = listener.accept().unwrap() {
                break stream;
            }
            assert!(Instant::now() < deadline, "accept never saw the connect");
            std::thread::sleep(Duration::from_millis(5));
        };
        drop(client);
        drop(accepted);
    }

    #[test]
    fn tcp_link_round_trips_lines() {
        let listener = Listener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().to_string();
        let client = connect_with_retry(&addr, Duration::from_secs(5)).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        let accepted = loop {
            if let Some(stream) = listener.accept().unwrap() {
                break stream;
            }
            assert!(Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(5));
        };

        let mut link = Link::tcp(accepted).unwrap();
        link.send_line("{\"t\":\"goodbye\",\"worker\":1}").unwrap();
        let mut reader = BufReader::new(client);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "{\"t\":\"goodbye\",\"worker\":1}\n");

        // The other direction, via the non-blocking drain helper.
        let mut client = reader.into_inner();
        client.write_all(b"hello-line\n").unwrap();
        drop(client);
        let mut buf = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match link.read_available(&mut buf).unwrap() {
                Some(0) => break, // EOF after the payload
                _ => {
                    if buf.ends_with(b"hello-line\n") {
                        break;
                    }
                    assert!(Instant::now() < deadline, "payload never arrived");
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
        assert!(buf.starts_with(b"hello-line\n"));
    }

    #[test]
    fn connect_with_retry_gives_up_past_the_window() {
        // Bind-then-drop guarantees a port with no listener.
        let doomed = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let err = connect_with_retry(&doomed, Duration::from_millis(200)).unwrap_err();
        assert!(err.to_string().contains("no coordinator"), "{err}");
    }
}
