//! # o4a-dist
//!
//! The distributed campaign layer: a **coordinator** that owns the shard
//! plan and a fleet of **workers** it drives over a pluggable transport
//! — stdin/stdout pipes of processes it spawns (the default), or a TCP
//! listener that workers join by connecting — using the same `poll(2)`
//! reactor machinery the external-solver transport uses, one layer up
//! the stack.
//!
//! * **Dynamic shard leases** — shards are granted one at a time to idle
//!   workers ([`coordinator`]), so finished workers steal the long tail
//!   instead of idling behind a static split (a
//!   [`DistConfig::static_split`] knob exists purely to benchmark that
//!   claim on heterogeneous fleets).
//! * **A JSONL control protocol** — `lease` / `journal-path` /
//!   `progress` / `done` frames plus the elastic-fleet trio `hello` /
//!   `re-adopt` / `goodbye` ([`protocol`]), with per-worker heartbeat
//!   deadlines riding the reactor's `poll(2)` timeout.
//! * **Elastic TCP fleets** — workers join mid-campaign and immediately
//!   pull leases, leave (or die) mid-lease and have them re-issued
//!   ([`transport`]).
//! * **A resumable coordinator** — with a [`DistConfig::checkpoint`],
//!   lease state is journaled fsync-per-record ([`checkpoint`]); a
//!   killed coordinator restarts, re-adopts reconnecting workers, and
//!   re-issues orphaned leases.
//! * **Per-worker findings journals, merged losslessly** — each worker
//!   appends to its own fsync'd [`o4a_exec::FindingsStore`] journal; the
//!   coordinator merges them by the store's concatenation +
//!   dedup-on-load law ([`o4a_exec::FindingsStore::merge_from`]).
//! * **A live observatory** — `O4A_SCOPE=host:port` (or
//!   [`DistConfig::with_scope`]) opens a read-only HTTP/SSE status
//!   plane on the coordinator's own reactor ([`scope`]): `/status`
//!   (JSON fleet snapshot), `/metrics` (Prometheus text), `/events`
//!   (SSE campaign milestones), plus fleet-merged Chrome traces and an
//!   EWMA straggler detector. Observation only — the scope-on ≡
//!   scope-off gauntlet pins that watching a campaign cannot change it.
//! * **Crash recovery that cannot show** — a worker killed mid-lease
//!   gets its lease re-issued; the shard re-derives deterministically,
//!   so a 1-worker and an N-worker campaign (crashes, elastic churn,
//!   and coordinator deaths included) produce **bit-identical**
//!   findings, coverage maps, hourly snapshot series, and stats modulo
//!   transport counters. The gauntlets in
//!   `crates/bench/tests/dist_campaign.rs` and
//!   `crates/bench/tests/elastic_fleet.rs` pin the claim; the
//!   determinism argument is spelled out in this crate's `README.md`.
//!
//! ```no_run
//! use o4a_core::CampaignConfig;
//! use o4a_dist::{run_distributed, DistConfig};
//!
//! let dist = DistConfig::new(vec!["target/debug/dist_worker".into()], "/tmp/dist-journals")
//!     .with_workers(4);
//! let report = run_distributed(&CampaignConfig::default(), 8, &dist).unwrap();
//! println!(
//!     "{} cases over {} leases on {} workers ({} re-issued)",
//!     report.result.stats.cases,
//!     report.stats.leases_granted,
//!     report.stats.workers_spawned,
//!     report.stats.leases_reissued,
//! );
//! ```

#![warn(missing_docs)]

pub mod checkpoint;
pub mod coordinator;
pub mod protocol;
pub mod scope;
pub mod transport;
pub mod worker;

pub use checkpoint::{CheckpointSession, CheckpointState, CheckpointStore};
pub use coordinator::{run_distributed, DistConfig, DistReport, DistStats, WorkerSummary};
pub use protocol::{CacheCounters, CampaignPlan, CompletedLease, Frame, TraceBatch};
pub use scope::{ScopeServer, ScopeStatus, ScopeWorker};
pub use transport::{connect_with_retry, Transport};
pub use worker::{run_worker, run_worker_tcp, CrashInjection, WorkerConfig};
