//! # o4a-reduce
//!
//! A ddSMT-style delta debugger: shrinks bug-triggering SMT-LIB scripts
//! while a caller-supplied property (usually "the bug still reproduces")
//! keeps holding. This is the paper's bug-reduction step that turns fuzzer
//! output into the minimal reports developers receive.
//!
//! The reducer applies, to fixpoint:
//! 1. **Command removal** — drop whole `assert`s and unused declarations.
//! 2. **Conjunct pruning** — shrink `and`/`or` argument lists.
//! 3. **Subterm simplification** — replace subterms by a child of the same
//!    sort or by the sort's default constant; drop quantifiers and `let`s
//!    whose binders are unused.
//!
//! ```
//! use o4a_reduce::{reduce_script, ReduceOptions};
//! let script: o4a_smtlib::Script =
//!     "(declare-const x Int)(declare-const y Int)\
//!      (assert (and (> x 5) (< y 0)))(check-sat)".parse()?;
//! // Property: the formula still mentions a strict lower bound on x.
//! let reduced = reduce_script(&script, ReduceOptions::default(),
//!     |s| s.to_string().contains("(> x 5)"));
//! assert!(reduced.to_string().contains("(> x 5)"));
//! assert!(!reduced.to_string().contains("y"), "{reduced}");
//! # Ok::<(), o4a_smtlib::ParseError>(())
//! ```

#![warn(missing_docs)]

use o4a_smtlib::typeck::{check_term, SortContext};
use o4a_smtlib::{Command, Op, Script, Sort, Term, Value};

/// Reduction tuning.
#[derive(Clone, Copy, Debug)]
pub struct ReduceOptions {
    /// Maximum fixpoint rounds.
    pub max_rounds: usize,
    /// Maximum property evaluations (each usually re-runs a solver).
    pub max_checks: usize,
}

impl Default for ReduceOptions {
    fn default() -> Self {
        ReduceOptions {
            max_rounds: 8,
            max_checks: 4_000,
        }
    }
}

/// Shrinks `script` while `property` holds. The returned script always
/// satisfies the property (the original is returned when nothing shrinks).
pub fn reduce_script(
    script: &Script,
    options: ReduceOptions,
    mut property: impl FnMut(&Script) -> bool,
) -> Script {
    let mut current = script.clone();
    if !property(&current) {
        return current;
    }
    let mut checks = 0usize;
    for _ in 0..options.max_rounds {
        let mut progressed = false;
        progressed |= remove_commands(&mut current, &mut property, &mut checks, options);
        progressed |= shrink_terms(&mut current, &mut property, &mut checks, options);
        progressed |= drop_unused_declarations(&mut current, &mut property, &mut checks, options);
        if !progressed || checks >= options.max_checks {
            break;
        }
    }
    current
}

/// ddmin-style command removal: try dropping each removable command.
fn remove_commands(
    current: &mut Script,
    property: &mut impl FnMut(&Script) -> bool,
    checks: &mut usize,
    options: ReduceOptions,
) -> bool {
    let mut progressed = false;
    let mut i = 0;
    while i < current.commands.len() {
        if *checks >= options.max_checks {
            break;
        }
        let removable = matches!(
            current.commands[i],
            Command::Assert(_)
                | Command::SetLogic(_)
                | Command::SetOption(_, _)
                | Command::SetInfo(_, _)
        );
        if removable {
            let mut candidate = current.clone();
            candidate.commands.remove(i);
            *checks += 1;
            if property(&candidate) {
                *current = candidate;
                progressed = true;
                continue; // same index now holds the next command
            }
        }
        i += 1;
    }
    progressed
}

/// Drops declarations whose symbols no longer occur.
fn drop_unused_declarations(
    current: &mut Script,
    property: &mut impl FnMut(&Script) -> bool,
    checks: &mut usize,
    options: ReduceOptions,
) -> bool {
    let mut used: std::collections::BTreeSet<o4a_smtlib::Symbol> = Default::default();
    for t in current.assertions() {
        used.extend(t.free_vars());
    }
    let mut progressed = false;
    let mut i = 0;
    while i < current.commands.len() {
        if *checks >= options.max_checks {
            break;
        }
        let unused = current.commands[i]
            .declared_symbol()
            .is_some_and(|s| !used.contains(s));
        if unused {
            let mut candidate = current.clone();
            candidate.commands.remove(i);
            *checks += 1;
            if property(&candidate) {
                *current = candidate;
                progressed = true;
                continue;
            }
        }
        i += 1;
    }
    progressed
}

/// Enumerates simplification candidates for one term, smallest-first.
fn simplifications(term: &Term, sort: Option<&Sort>) -> Vec<Term> {
    let mut out = Vec::new();
    match term {
        Term::App(op, args) => {
            // Same-sort child promotion for connectives and chainable ops.
            if matches!(op, Op::And | Op::Or | Op::Xor | Op::Implies) {
                out.extend(args.iter().cloned());
                if args.len() > 2 {
                    for skip in 0..args.len() {
                        let mut fewer = args.clone();
                        fewer.remove(skip);
                        out.push(Term::App(op.clone(), fewer));
                    }
                }
            }
            if matches!(op, Op::Not) {
                out.extend(args.iter().cloned());
            }
            if matches!(op, Op::Ite) && args.len() == 3 {
                out.push(args[1].clone());
                out.push(args[2].clone());
            }
        }
        Term::Quant(_, _, body) => {
            // Dropping a binder is valid when the body has no bound vars
            // free; the type check below guards it.
            out.push((**body).clone());
        }
        Term::Let(_, body) => {
            out.push((**body).clone());
        }
        _ => {}
    }
    if let Some(s) = sort {
        out.push(Term::Const(Value::default_of(s)));
    }
    out
}

/// One pass of top-down subterm simplification over all assertions.
fn shrink_terms(
    current: &mut Script,
    property: &mut impl FnMut(&Script) -> bool,
    checks: &mut usize,
    options: ReduceOptions,
) -> bool {
    let Ok(ctx) = SortContext::from_script(current) else {
        return false;
    };
    let mut progressed = false;
    let n_asserts = current.assertions().count();
    for a_idx in 0..n_asserts {
        loop {
            if *checks >= options.max_checks {
                return progressed;
            }
            let term = current
                .assertions()
                .nth(a_idx)
                .expect("index in range")
                .clone();
            let Some(replacement) = find_one_shrink(&term, &ctx, current, property, checks, a_idx)
            else {
                break;
            };
            let t = current.assertions_mut().nth(a_idx).expect("index in range");
            *t = replacement;
            progressed = true;
        }
    }
    progressed
}

/// Finds the first accepted single-subterm shrink of assertion `a_idx`.
fn find_one_shrink(
    term: &Term,
    ctx: &SortContext,
    current: &Script,
    property: &mut impl FnMut(&Script) -> bool,
    checks: &mut usize,
    a_idx: usize,
) -> Option<Term> {
    // Enumerate positions pre-order; for each, try candidates.
    let size = term.size();
    for pos in 0..size {
        let sub = nth_subterm(term, pos)?;
        // Skip binder-scoped internals: simplifying them risks unbound vars;
        // the type check below catches any slip.
        let sort = check_term(sub, ctx).ok();
        for candidate_sub in simplifications(sub, sort.as_ref()) {
            if candidate_sub == *sub || candidate_sub.size() >= sub.size() {
                continue;
            }
            let candidate_term = replace_nth(term, pos, &candidate_sub);
            let mut candidate = current.clone();
            *candidate
                .assertions_mut()
                .nth(a_idx)
                .expect("index in range") = candidate_term.clone();
            if o4a_smtlib::typeck::check_script(&candidate).is_err() {
                continue;
            }
            *checks += 1;
            if property(&candidate) {
                return Some(candidate_term);
            }
        }
    }
    None
}

fn nth_subterm(term: &Term, n: usize) -> Option<&Term> {
    let mut i = 0usize;
    let mut found = None;
    term.visit(&mut |t| {
        if i == n && found.is_none() {
            found = Some(t);
        }
        i += 1;
    });
    found
}

fn replace_nth(term: &Term, n: usize, replacement: &Term) -> Term {
    fn go(t: &Term, n: usize, replacement: &Term, i: &mut usize) -> Term {
        let my = *i;
        *i += 1;
        if my == n {
            return replacement.clone();
        }
        match t {
            Term::App(op, args) => Term::App(
                op.clone(),
                args.iter().map(|a| go(a, n, replacement, i)).collect(),
            ),
            Term::Let(binds, body) => Term::Let(
                binds
                    .iter()
                    .map(|(s, v)| (s.clone(), go(v, n, replacement, i)))
                    .collect(),
                Box::new(go(body, n, replacement, i)),
            ),
            Term::Quant(q, vars, body) => {
                Term::Quant(*q, vars.clone(), Box::new(go(body, n, replacement, i)))
            }
            other => other.clone(),
        }
    }
    let mut i = 0usize;
    go(term, n, replacement, &mut i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use o4a_smtlib::parse_script;

    fn reduce_with(text: &str, prop: impl FnMut(&Script) -> bool) -> Script {
        let script = parse_script(text).unwrap();
        reduce_script(&script, ReduceOptions::default(), prop)
    }

    #[test]
    fn removes_irrelevant_assertions() {
        let out = reduce_with(
            "(declare-const x Int)(declare-const y Int)\
             (assert (> x 5))(assert (< y 0))(assert (= (* y y) 4))(check-sat)",
            |s| s.to_string().contains("(> x 5)"),
        );
        assert_eq!(out.assertions().count(), 1);
        assert!(!out.to_string().contains("declare-const y"));
    }

    #[test]
    fn shrinks_conjunctions() {
        let out = reduce_with(
            "(declare-const x Int)\
             (assert (and (> x 5) (< x 100) (distinct x 7)))(check-sat)",
            |s| s.to_string().contains("(> x 5)"),
        );
        assert_eq!(
            out.to_string(),
            "(declare-const x Int)\n(assert (> x 5))\n(check-sat)"
        );
    }

    #[test]
    fn drops_unused_quantifier() {
        let out = reduce_with(
            "(declare-const x Int)\
             (assert (exists ((f Int)) (> x 5)))(check-sat)",
            |s| s.to_string().contains("(> x 5)"),
        );
        assert!(!out.to_string().contains("exists"), "{out}");
    }

    #[test]
    fn keeps_quantifier_when_property_needs_it() {
        // The paper's Observation 2: the quantifier can be the trigger.
        let out = reduce_with(
            "(declare-const x Int)\
             (assert (exists ((f Int)) (> x 5)))(check-sat)",
            |s| {
                let t = s.to_string();
                t.contains("exists") && t.contains("(> x 5)")
            },
        );
        assert!(out.to_string().contains("exists"));
    }

    #[test]
    fn result_always_satisfies_property() {
        let texts = [
            "(declare-const a Bool)(declare-const b Bool)\
             (assert (or a b))(assert (not a))(check-sat)",
            "(declare-const s (Seq Int))\
             (assert (exists ((f Int)) (distinct (seq.len (seq.rev s)) 0)))(check-sat)",
        ];
        for text in texts {
            let needle = "seq.rev";
            let prop = |s: &Script| {
                let t = s.to_string();
                t.contains(needle) || t.contains("(or a b)")
            };
            let out = reduce_with(text, prop);
            let t = out.to_string();
            assert!(t.contains(needle) || t.contains("(or a b)"), "{t}");
        }
    }

    #[test]
    fn reduction_keeps_scripts_well_sorted() {
        let out = reduce_with(
            "(declare-const x Int)(declare-const s String)\
             (assert (and (> x (str.len s)) (str.prefixof \"a\" s)))(check-sat)",
            |s| s.to_string().contains("str.len"),
        );
        o4a_smtlib::typeck::check_script(&out).unwrap();
        assert!(out.to_string().contains("str.len"));
    }

    #[test]
    fn noop_when_property_fails_upfront() {
        let script = parse_script("(assert true)(check-sat)").unwrap();
        let out = reduce_script(&script, ReduceOptions::default(), |_| false);
        assert_eq!(out, script);
    }

    #[test]
    fn figure1_style_reduction() {
        // Start from a bloated variant of the paper's Figure 1 formula and
        // reduce to the seq.rev/seq.len/quantifier core.
        let out = reduce_with(
            "(declare-fun s () (Seq Int))(declare-const pad Int)\
             (assert (> pad 0))\
             (assert (exists ((f Int)) (and (distinct (seq.len (seq.rev s)) \
             (seq.nth (as seq.empty (Seq Int)) (div 0 0))) (= pad pad))))\
             (check-sat)",
            |s| {
                let t = s.to_string();
                t.contains("seq.rev") && t.contains("exists")
            },
        );
        let t = out.to_string();
        assert!(!t.contains("pad"), "{t}");
        assert!(t.contains("seq.rev"));
        o4a_smtlib::typeck::check_script(&out).unwrap();
    }
}
