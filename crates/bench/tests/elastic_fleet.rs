//! The elastic-fleet gauntlet: the TCP transport, mid-campaign worker
//! churn, and the resumable coordinator (`o4a-dist` over
//! `dist_worker --connect` / `dist_coordinator`), all held to the same
//! law as the pipe gauntlet in `dist_campaign.rs`: **every topology
//! merges bit-identical to the in-process sharded engine.**
//!
//! The scenarios (each one a CI matrix leg; `O4A_ELASTIC_WORKERS` sets
//! the fleet size, default 2):
//!
//! * a TCP fleet of N workers matches the in-process run;
//! * a worker joining mid-campaign is granted the next lease;
//! * a worker killed mid-lease has its lease re-issued to a survivor;
//! * a worker leaving voluntarily (`goodbye`) retires cleanly;
//! * a coordinator killed mid-campaign resumes from its checkpoint,
//!   re-adopts the still-live fleet, and merges bit-identical;
//! * a heterogeneous fleet (one slow machine) finishes sooner with
//!   work stealing than with a static split — the dynamic-lease claim,
//!   measured.

use o4a_core::{CampaignConfig, CampaignResult, Fuzzer, Once4AllFuzzer};
use o4a_dist::{run_distributed, CampaignPlan, DistConfig, DistReport};
use o4a_exec::{merge_shard_results, run_campaign_sharded, ExecConfig, FindingsStore, Parallelism};
use o4a_solvers::coverage::universe;
use o4a_solvers::SolverId;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// The reference binaries, built by cargo before this suite runs.
const WORKER: &str = env!("CARGO_BIN_EXE_dist_worker");
const COORDINATOR: &str = env!("CARGO_BIN_EXE_dist_coordinator");

/// Total shards in the gauntlet plan (the heterogeneous scenario uses
/// more — it needs a tail worth stealing).
const SHARDS: u32 = 4;

fn quick_config() -> CampaignConfig {
    CampaignConfig {
        virtual_hours: 2,
        time_scale: 50_000, // smoke scale: ~8 cases and a few findings per shard
        max_cases: 120,
        ..CampaignConfig::default()
    }
}

fn fleet_size() -> u32 {
    std::env::var("O4A_ELASTIC_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 2)
        .unwrap_or(2)
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("o4a-elastic-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("journals")).expect("scratch dir");
    dir
}

/// An address the OS considers free right now: bind, read, release. The
/// joining workers retry their dial, so the coordinator binding it a
/// moment later is race-free in practice.
fn free_addr() -> String {
    let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("probe bind");
    probe.local_addr().expect("probe addr").to_string()
}

/// Everything observable, bit-comparable — the same fingerprint as the
/// pipe gauntlet: `sans_transport` stats, findings down to the `vhour`
/// bits, the hourly snapshot series, and the exported coverage maps.
type Fingerprint = (
    o4a_core::CampaignStats,
    Vec<(String, SolverId, String, Option<String>, u64)>,
    Vec<(u32, u64, usize, Vec<(SolverId, u64, u64)>)>,
    Vec<(SolverId, Vec<(String, u32)>)>,
);

fn fingerprint(result: &CampaignResult) -> Fingerprint {
    (
        result.stats.sans_transport(),
        result
            .findings
            .iter()
            .map(|f| {
                (
                    f.case_text.clone(),
                    f.solver,
                    format!("{:?}", f.kind),
                    f.signature.clone(),
                    f.vhour.to_bits(),
                )
            })
            .collect(),
        result
            .snapshots
            .iter()
            .map(|s| {
                (
                    s.hour,
                    s.cases,
                    s.issues,
                    s.coverage
                        .iter()
                        .map(|(&id, p)| (id, p.line_pct.to_bits(), p.function_pct.to_bits()))
                        .collect(),
                )
            })
            .collect(),
        result
            .coverage
            .iter()
            .map(|(&id, map)| (id, map.export(&universe(id))))
            .collect(),
    )
}

fn in_process_reference(shards: u32) -> CampaignResult {
    let exec = ExecConfig {
        shards,
        parallelism: Parallelism::Serial,
        ..ExecConfig::default()
    };
    let factory = |_shard: u32| Box::new(Once4AllFuzzer::with_defaults()) as Box<dyn Fuzzer>;
    run_campaign_sharded(factory, &quick_config(), &exec)
}

/// Spawns a `dist_worker --connect` process. `extra` carries the
/// per-scenario fault-injection flags.
fn spawn_joiner(addr: &str, dir: &std::path::Path, id: u32, extra: &[String]) -> Child {
    Command::new(WORKER)
        .arg("--journal")
        .arg(dir.join(format!("journals/w{id}.jsonl")))
        .arg("--worker")
        .arg(id.to_string())
        .arg("--connect")
        .arg(addr)
        .args(extra)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .spawn()
        .expect("spawn dist_worker")
}

/// Reaps a fleet, asserting every worker exited cleanly (the campaign
/// ends with a coordinator `goodbye`, never a dropped socket).
fn reap_clean(workers: Vec<Child>) {
    for mut child in workers {
        let deadline = Instant::now() + Duration::from_secs(30);
        let status = loop {
            match child.try_wait().expect("wait worker") {
                Some(status) => break status,
                None if Instant::now() >= deadline => {
                    child.kill().ok();
                    child.wait().ok();
                    panic!("worker did not exit after the campaign");
                }
                None => std::thread::sleep(Duration::from_millis(10)),
            }
        };
        assert!(status.success(), "worker exited dirty: {status:?}");
    }
}

fn tcp_coordinator(addr: &str, dir: &std::path::Path, workers: u32) -> DistConfig {
    DistConfig::new(Vec::new(), dir.join("journals"))
        .with_tcp(addr.to_string())
        .with_workers(workers)
        .with_heartbeat_timeout(Duration::from_secs(30))
        .with_accept_timeout(Duration::from_secs(60))
}

/// Baseline: an N-worker TCP fleet — workers join by connecting, nobody
/// is spawned by the coordinator — merges bit-identical to the
/// in-process sharded engine.
#[test]
fn tcp_fleet_matches_in_process() {
    let n = fleet_size();
    let dir = scratch_dir("tcp");
    let addr = free_addr();
    let workers: Vec<Child> = (0..n)
        .map(|id| spawn_joiner(&addr, &dir, id, &[]))
        .collect();
    let report =
        run_distributed(&quick_config(), SHARDS, &tcp_coordinator(&addr, &dir, n)).expect("tcp");
    reap_clean(workers);
    assert_eq!(report.stats.workers_joined, u64::from(n));
    assert_eq!(
        report.stats.workers_spawned, 0,
        "TCP fleets are not spawned"
    );
    assert_eq!(report.stats.leases_granted, u64::from(SHARDS));
    assert_eq!(
        fingerprint(&report.result),
        fingerprint(&in_process_reference(SHARDS)),
        "{n}-worker TCP fleet diverged from the in-process engine"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Elastic scale-out: a worker joining mid-campaign (the fleet is N-1
/// slow machines; the joiner arrives once leases are in flight) is
/// granted the next lease and contributes — with no effect on the bits.
#[test]
fn worker_join_mid_campaign_pulls_leases() {
    let n = fleet_size();
    let dir = scratch_dir("join");
    let addr = free_addr();
    // The initial fleet drags 150 ms per case so the campaign is still
    // running when the joiner dials in.
    let slow = ["--slow-ms".to_string(), "150".to_string()];
    let mut workers: Vec<Child> = (0..n - 1)
        .map(|id| spawn_joiner(&addr, &dir, id, &slow))
        .collect();
    let late = {
        let addr = addr.clone();
        let dir = dir.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(600));
            spawn_joiner(&addr, &dir, 99, &[])
        })
    };
    let report =
        run_distributed(&quick_config(), SHARDS, &tcp_coordinator(&addr, &dir, n)).expect("join");
    workers.push(late.join().expect("joiner thread"));
    reap_clean(workers);
    assert_eq!(report.stats.workers_joined, u64::from(n));
    let joiner = report
        .stats
        .per_worker
        .iter()
        .find(|w| w.worker == 99)
        .expect("late joiner never joined");
    assert!(
        joiner.leases_completed >= 1,
        "mid-campaign joiner was never granted a lease"
    );
    assert_eq!(
        fingerprint(&report.result),
        fingerprint(&in_process_reference(SHARDS)),
        "elastic scale-out leaked into the merged result"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Elastic scale-in, the hard way: a worker killed mid-lease (every
/// worker carries the crash injection; the shared token fires it exactly
/// once, in whoever serves shard 2 first) drops its connection, the
/// coordinator re-issues the lease to a survivor, and the merged result
/// does not move a bit.
#[test]
fn worker_killed_mid_lease_has_its_lease_reissued() {
    let n = fleet_size();
    let dir = scratch_dir("killed");
    let addr = free_addr();
    let crash = [
        "--crash-shard".to_string(),
        "2".to_string(),
        "--crash-after".to_string(),
        "4".to_string(),
        "--crash-token".to_string(),
        dir.join("crash-token").display().to_string(),
    ];
    let mut workers: Vec<Child> = (0..n)
        .map(|id| spawn_joiner(&addr, &dir, id, &crash))
        .collect();
    let report =
        run_distributed(&quick_config(), SHARDS, &tcp_coordinator(&addr, &dir, n)).expect("killed");
    // Exactly one worker died by design; reap it separately (nonzero
    // exit) and hold the survivors to the clean-goodbye contract.
    let mut clean = Vec::new();
    let mut deaths = 0;
    let deadline = Instant::now() + Duration::from_secs(30);
    for mut child in workers.drain(..) {
        let status = loop {
            match child.try_wait().expect("wait worker") {
                Some(status) => break status,
                None if Instant::now() >= deadline => {
                    child.kill().ok();
                    child.wait().ok();
                    panic!("worker did not exit after the campaign");
                }
                None => std::thread::sleep(Duration::from_millis(10)),
            }
        };
        if status.success() {
            clean.push(());
        } else {
            deaths += 1;
        }
    }
    assert_eq!(deaths, 1, "the crash token fires exactly once");
    assert!(
        report.stats.worker_deaths >= 1,
        "coordinator missed the death"
    );
    assert!(
        report.stats.leases_reissued >= 1,
        "the dead worker's lease was not re-issued"
    );
    assert_eq!(
        fingerprint(&report.result),
        fingerprint(&in_process_reference(SHARDS)),
        "a worker killed mid-lease leaked into the merged result"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Elastic scale-in, the polite way: a worker that says `goodbye` after
/// its first lease retires cleanly — counted, never re-granted, bits
/// unmoved.
#[test]
fn voluntary_goodbye_retires_the_worker_cleanly() {
    let dir = scratch_dir("goodbye");
    let addr = free_addr();
    let leaver_flags = ["--leave-after-leases".to_string(), "1".to_string()];
    let workers = vec![
        spawn_joiner(&addr, &dir, 0, &leaver_flags),
        spawn_joiner(&addr, &dir, 1, &[]),
    ];
    let report = run_distributed(&quick_config(), SHARDS, &tcp_coordinator(&addr, &dir, 2))
        .expect("goodbye");
    reap_clean(workers);
    assert_eq!(report.stats.workers_left, 1, "the goodbye was not honoured");
    assert_eq!(report.stats.worker_deaths, 0, "a goodbye is not a death");
    let leaver = report
        .stats
        .per_worker
        .iter()
        .find(|w| w.worker == 0)
        .expect("leaver summary");
    assert_eq!(leaver.leases_completed, 1, "the leaver served exactly one");
    assert!(leaver.clean_exit, "a goodbye is a clean exit");
    assert_eq!(
        fingerprint(&report.result),
        fingerprint(&in_process_reference(SHARDS)),
        "a voluntary departure leaked into the merged result"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The resumable coordinator: incarnation #1 (a separate process) dies
/// abruptly after checkpointing one completion; the still-live workers
/// keep their leases warm and knock on the recorded address; incarnation
/// #2 resumes from the checkpoint, re-adopts them by re-handshake,
/// re-issues the orphans, and the journals merge **bit-identical** to an
/// uninterrupted in-process run.
#[test]
fn coordinator_killed_mid_campaign_resumes_bit_identical() {
    let n = fleet_size();
    let dir = scratch_dir("resume");
    let addr = free_addr();
    let plan = CampaignPlan {
        config: quick_config(),
        shards: SHARDS,
    };
    let plan_json = plan.to_json().to_line();
    let checkpoint = dir.join("checkpoint.jsonl");
    // Workers drag a little per case (their leases outlive coordinator
    // #1) and retry the dial for a full minute (they outlive the gap).
    let flags = [
        "--slow-ms".to_string(),
        "150".to_string(),
        "--reconnect-ms".to_string(),
        "60000".to_string(),
    ];
    let workers: Vec<Child> = (0..n)
        .map(|id| spawn_joiner(&addr, &dir, id, &flags))
        .collect();

    let coordinator = |exit_after: Option<u64>| {
        let mut cmd = Command::new(COORDINATOR);
        cmd.arg("--plan")
            .arg(&plan_json)
            .arg("--listen")
            .arg(&addr)
            .arg("--journal-dir")
            .arg(dir.join("journals"))
            .arg("--checkpoint")
            .arg(&checkpoint)
            .arg("--workers")
            .arg(n.to_string())
            .arg("--heartbeat-ms")
            .arg("30000")
            .arg("--accept-timeout-ms")
            .arg("60000");
        if let Some(k) = exit_after {
            cmd.arg("--exit-after-done").arg(k.to_string());
        }
        cmd
    };

    let first = coordinator(Some(1)).output().expect("coordinator #1");
    assert_eq!(
        first.status.code(),
        Some(9),
        "coordinator #1 must die by injection, not finish: {}",
        String::from_utf8_lossy(&first.stderr)
    );

    let second = coordinator(None).output().expect("coordinator #2");
    assert!(
        second.status.success(),
        "coordinator #2 failed:\n{}",
        String::from_utf8_lossy(&second.stderr)
    );
    reap_clean(workers);
    let stdout = String::from_utf8_lossy(&second.stdout);
    let stats = stdout
        .lines()
        .find(|l| l.starts_with("o4a-dist: done"))
        .unwrap_or_else(|| panic!("no stats line in coordinator #2 output:\n{stdout}"));
    assert!(stats.contains("resumed=true"), "not a resume: {stats}");
    let readopted: u64 = stats
        .split_whitespace()
        .find_map(|kv| kv.strip_prefix("readopted=").and_then(|v| v.parse().ok()))
        .expect("readopted counter");
    assert!(
        readopted >= 1,
        "no worker was re-adopted by re-handshake: {stats}"
    );

    // Merge the fleet's journals exactly as the coordinator does and
    // hold the result to the uninterrupted in-process run.
    let mut journals: Vec<PathBuf> = std::fs::read_dir(dir.join("journals"))
        .expect("journal dir")
        .map(|e| e.expect("dir entry").path())
        .collect();
    journals.sort();
    let completed =
        FindingsStore::merge_from(&quick_config(), SHARDS, &journals).expect("merge journals");
    assert_eq!(
        completed.len(),
        SHARDS as usize,
        "shards missing from the merged journals"
    );
    let ordered: Vec<CampaignResult> = completed.into_values().collect();
    let merged = merge_shard_results(&quick_config(), &ordered);
    assert_eq!(
        fingerprint(&merged),
        fingerprint(&in_process_reference(SHARDS)),
        "a killed-and-resumed coordinator leaked into the merged result"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The dynamic-lease claim, measured: on a 1-fast + 1-slow fleet, work
/// stealing hands the fast worker strictly more leases and finishes the
/// campaign sooner than a static split — while both merge bit-identical
/// to the in-process engine (scheduling cannot reach the bits).
#[test]
fn heterogeneous_fleet_stealing_beats_static_split() {
    const HETERO_SHARDS: u32 = 8;
    let reference = in_process_reference(HETERO_SHARDS);
    let slow = ["--slow-ms".to_string(), "120".to_string()];
    let run = |tag: &str, static_split: bool| -> (DistReport, Duration) {
        let dir = scratch_dir(tag);
        let addr = free_addr();
        let workers = vec![
            spawn_joiner(&addr, &dir, 0, &slow),
            spawn_joiner(&addr, &dir, 1, &[]),
        ];
        let started = Instant::now();
        let report = run_distributed(
            &quick_config(),
            HETERO_SHARDS,
            &tcp_coordinator(&addr, &dir, 2).with_static_split(static_split),
        )
        .expect("hetero");
        let wall = started.elapsed();
        reap_clean(workers);
        assert_eq!(
            fingerprint(&report.result),
            fingerprint(&reference),
            "scheduling policy leaked into the merged result (static: {static_split})"
        );
        let _ = std::fs::remove_dir_all(&dir);
        (report, wall)
    };

    let (static_report, static_wall) = run("hetero-static", true);
    let (stealing_report, stealing_wall) = run("hetero-steal", false);

    // Static split: the slot pinning hands each worker exactly half.
    for w in &static_report.stats.per_worker {
        assert_eq!(
            w.leases_completed,
            HETERO_SHARDS / 2,
            "static split must pin half the shards to w{}",
            w.worker
        );
    }
    // Stealing: the fast worker eats the slow worker's tail.
    let leases = |report: &DistReport, id: u32| {
        report
            .stats
            .per_worker
            .iter()
            .find(|w| w.worker == id)
            .map(|w| w.leases_completed)
            .unwrap_or(0)
    };
    let slow_leases = leases(&stealing_report, 0);
    let fast_leases = leases(&stealing_report, 1);
    assert!(
        fast_leases > slow_leases,
        "work stealing gave the fast worker {fast_leases} leases vs {slow_leases} — no steal"
    );
    // The wall-clock pair the README quotes; the slow worker serves 4
    // sleep-dominated leases under the split and ~1 under stealing, so
    // the gap is structural, not noise.
    println!(
        "heterogeneous fleet wall-clock: static-split {:.2}s vs stealing {:.2}s",
        static_wall.as_secs_f64(),
        stealing_wall.as_secs_f64()
    );
    assert!(
        stealing_wall < static_wall,
        "work stealing ({stealing_wall:?}) did not beat the static split ({static_wall:?})"
    );
}
