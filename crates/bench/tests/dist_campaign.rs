//! The distributed-campaign gauntlet: the coordinator/worker engine
//! (`o4a-dist`) driving real worker processes (built from
//! `src/bin/dist_worker.rs`) against the in-process sharded engine.
//!
//! The acceptance criteria this file pins down:
//!
//! * a distributed campaign is **bit-identical** to the in-process
//!   sharded run of the same plan — findings (down to the `vhour`
//!   bits), final coverage maps, the **hourly snapshot series**
//!   (lossless per-hour union, not the old per-shard-max lower bound),
//!   and `CampaignStats::sans_transport` — for any fleet size;
//! * killing a worker mid-lease changes nothing: the lease is
//!   re-issued, the half-journaled shard re-derives deterministically,
//!   and the merged result stays bit-identical while the lease-churn
//!   counters record that it happened;
//! * a fleet that never speaks the protocol is killed at the heartbeat
//!   deadline and the campaign fails bounded-ly instead of hanging;
//! * the fleet summary renders per-worker throughput and lease churn.

use o4a_core::{CampaignConfig, CampaignResult, Fuzzer, Once4AllFuzzer};
use o4a_dist::{run_distributed, DistConfig, DistReport};
use o4a_exec::{run_campaign_sharded, ExecConfig, Parallelism};
use o4a_solvers::coverage::universe;
use o4a_solvers::SolverId;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// The reference worker binary, built by cargo before this suite runs.
const WORKER: &str = env!("CARGO_BIN_EXE_dist_worker");

/// Total shards in the gauntlet plan. Fleet size varies; the plan never
/// does — that is what makes every run comparable bit-for-bit.
const SHARDS: u32 = 4;

fn quick_config() -> CampaignConfig {
    CampaignConfig {
        virtual_hours: 2,
        time_scale: 50_000, // smoke scale: ~8 cases and a few findings per shard
        max_cases: 120,
        ..CampaignConfig::default()
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("o4a-dist-gauntlet-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Everything observable, bit-comparable: stats (transport counters
/// scrubbed — fleet size and worker deaths are transport facts),
/// findings with their discovery hours, the hourly snapshot series
/// including the per-solver coverage percentages, and the final
/// coverage maps exported branch-by-branch.
type Fingerprint = (
    o4a_core::CampaignStats,
    Vec<(String, SolverId, String, Option<String>, u64)>,
    Vec<(u32, u64, usize, Vec<(SolverId, u64, u64)>)>,
    Vec<(SolverId, Vec<(String, u32)>)>,
);

fn fingerprint(result: &CampaignResult) -> Fingerprint {
    (
        result.stats.sans_transport(),
        result
            .findings
            .iter()
            .map(|f| {
                (
                    f.case_text.clone(),
                    f.solver,
                    format!("{:?}", f.kind),
                    f.signature.clone(),
                    f.vhour.to_bits(),
                )
            })
            .collect(),
        result
            .snapshots
            .iter()
            .map(|s| {
                (
                    s.hour,
                    s.cases,
                    s.issues,
                    s.coverage
                        .iter()
                        .map(|(&id, p)| (id, p.line_pct.to_bits(), p.function_pct.to_bits()))
                        .collect(),
                )
            })
            .collect(),
        result
            .coverage
            .iter()
            .map(|(&id, map)| (id, map.export(&universe(id))))
            .collect(),
    )
}

fn dist_run(tag: &str, workers: u32, crash: bool) -> DistReport {
    let dir = scratch_dir(tag);
    let mut command = vec![WORKER.to_string()];
    if crash {
        // Die mid-way through shard 2 (which runs ~7 cases and records
        // findings at this scale), once per campaign — the token's
        // atomic creation is the latch.
        command.extend([
            "--crash-shard".into(),
            "2".into(),
            "--crash-after".into(),
            "4".into(),
            "--crash-token".into(),
            dir.join("crash-token").display().to_string(),
        ]);
    }
    let dist = DistConfig::new(command, dir.join("journals"))
        .with_workers(workers)
        .with_heartbeat_timeout(Duration::from_secs(30));
    let report = run_distributed(&quick_config(), SHARDS, &dist).expect("distributed campaign");
    let _ = std::fs::remove_dir_all(&dir);
    report
}

fn in_process_reference() -> CampaignResult {
    let exec = ExecConfig {
        shards: SHARDS,
        parallelism: Parallelism::Serial,
        ..ExecConfig::default()
    };
    let factory = |_shard: u32| Box::new(Once4AllFuzzer::with_defaults()) as Box<dyn Fuzzer>;
    run_campaign_sharded(factory, &quick_config(), &exec)
}

/// The tentpole law, single fleet: one worker process, leases served
/// back to back, journals round-tripped through disk — bit-identical to
/// the in-process sharded engine.
#[test]
fn single_worker_campaign_matches_in_process_sharded() {
    let reference = in_process_reference();
    assert!(reference.stats.cases > 0, "reference ran no cases");
    assert!(
        !reference.findings.is_empty(),
        "reference found nothing — the findings legs of the gauntlet are vacuous"
    );
    let report = dist_run("w1", 1, false);
    assert_eq!(
        fingerprint(&report.result),
        fingerprint(&reference),
        "1-worker distributed campaign diverged from the in-process engine"
    );
    assert_eq!(report.stats.workers_spawned, 1);
    assert_eq!(report.stats.leases_granted, SHARDS as u64);
    assert_eq!(report.stats.leases_reissued, 0);
    // Fleet churn is accounted as transport work on the merged stats.
    assert_eq!(report.result.stats.processes_spawned, 1);
    assert_eq!(report.result.stats.leases_granted, SHARDS as u64);
}

/// The acceptance criterion: a 4-worker fleet with one worker killed
/// mid-lease produces findings, final coverage maps, hourly snapshot
/// series, and `sans_transport` stats bit-identical to the undisturbed
/// single-worker run — and the churn counters prove the crash actually
/// happened and the lease was re-issued.
#[test]
fn four_workers_with_crash_mid_lease_are_bit_identical() {
    let reference = dist_run("ref", 1, false);
    let crashed = dist_run("crash4", 4, true);
    assert!(
        crashed.stats.worker_deaths >= 1,
        "crash injection never fired"
    );
    assert!(
        crashed.stats.leases_reissued >= 1,
        "the killed worker's lease was not re-issued"
    );
    assert!(
        crashed.stats.leases_granted > SHARDS as u64,
        "a re-issued lease must be granted again"
    );
    assert_eq!(
        fingerprint(&crashed.result),
        fingerprint(&reference.result),
        "a worker killed mid-lease leaked into the merged result"
    );
    // The replacement worker keeps the fleet at strength.
    assert!(crashed.stats.workers_spawned >= 5);
}

/// Fleet-size sweep (the CI matrix reads the size from the
/// environment): any number of workers, with or without crash
/// injection, merges to the same campaign.
#[test]
fn fleet_size_from_env_matches_reference() {
    let workers: u32 = std::env::var("O4A_DIST_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(2);
    let crash = std::env::var("O4A_DIST_CRASH").is_ok_and(|v| !v.is_empty() && v != "0");
    let reference = in_process_reference();
    let report = dist_run("env", workers, crash);
    assert_eq!(
        fingerprint(&report.result),
        fingerprint(&reference),
        "{workers}-worker fleet (crash: {crash}) diverged from the in-process engine"
    );
}

/// Hourly snapshots merge losslessly across the distributed path: the
/// final hour's percentages equal the final union coverage — the
/// invariant the old per-shard-max lower bound broke for every
/// multi-shard merge.
#[test]
fn distributed_hourly_series_is_exact() {
    let report = dist_run("hourly", 2, false);
    let last = report.result.snapshots.last().expect("snapshots");
    assert_eq!(
        last.coverage, report.result.final_coverage,
        "final-hour snapshot must equal final union coverage"
    );
    assert_eq!(
        report.result.hourly_coverage.len(),
        report.result.snapshots.len(),
        "merged result must carry its per-hour raw maps"
    );
}

/// A fleet that never speaks the protocol (here: `sleep`) is killed at
/// the heartbeat deadline; the campaign fails after the respawn budget,
/// bounded in time — never a hang.
#[test]
fn silent_workers_are_killed_at_the_deadline() {
    let dir = scratch_dir("wedge");
    // `sh -c 'sleep 30'` swallows the appended `--journal`/`--worker`
    // args as positional parameters and then sits silent — a live
    // process that never heartbeats, which only the deadline can catch.
    let command = vec!["sh".into(), "-c".into(), "sleep 30".into()];
    let dist = DistConfig::new(command, dir.join("journals"))
        .with_workers(1)
        .with_heartbeat_timeout(Duration::from_millis(150))
        .with_max_respawns(1);
    let started = Instant::now();
    let err = run_distributed(&quick_config(), 2, &dist)
        .expect_err("a fleet of sleeps cannot finish a campaign");
    assert!(
        started.elapsed() < Duration::from_secs(20),
        "wedged fleet was not killed at the deadline"
    );
    let msg = err.to_string();
    assert!(
        msg.contains("keeps dying"),
        "unexpected failure mode: {msg}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The observability acceptance criterion: a 4-worker crash-injected
/// fleet running with `O4A_TRACE`/`O4A_METRICS` on in every worker
/// (via [`DistConfig::with_env`] — the coordinator's own environment is
/// untouched) merges **bit-identical** to the untraced in-process
/// engine, while the obs dir fills with per-process trace/metrics
/// files that parse, export as one fleet-wide Chrome trace, and whose
/// merged case counter equals the campaign's own.
#[test]
fn traced_fleet_matches_untraced_in_process() {
    let reference = in_process_reference();
    let dir = scratch_dir("traced");
    let obs_dir = dir.join("obs");
    let command = vec![
        WORKER.to_string(),
        "--crash-shard".into(),
        "2".into(),
        "--crash-after".into(),
        "4".into(),
        "--crash-token".into(),
        dir.join("crash-token").display().to_string(),
    ];
    let dist = DistConfig::new(command, dir.join("journals"))
        .with_workers(4)
        .with_heartbeat_timeout(Duration::from_secs(30))
        .with_env("O4A_TRACE", obs_dir.display().to_string())
        .with_env("O4A_METRICS", obs_dir.display().to_string());
    let report = run_distributed(&quick_config(), SHARDS, &dist).expect("traced campaign");

    assert_eq!(
        fingerprint(&report.result),
        fingerprint(&reference),
        "a traced fleet diverged from the untraced in-process engine"
    );
    assert!(
        report.stats.worker_deaths >= 1,
        "crash injection never fired under tracing"
    );

    // Metrics snapshots rode the done/progress frames into the
    // coordinator's fleet-wide view.
    assert!(
        !report.stats.fleet_metrics.is_empty(),
        "no metrics snapshots arrived on protocol frames"
    );
    assert!(
        report
            .stats
            .fleet_metrics
            .counters
            .get("campaign.cases")
            .copied()
            .unwrap_or(0)
            > 0,
        "fleet metrics carry no case counter: {:?}",
        report.stats.fleet_metrics.counters
    );
    let summary = o4a_bench::render_dist_stats(&report.stats);
    assert!(
        summary.contains("fleet metrics"),
        "summary does not render the fleet metrics:\n{summary}"
    );

    // Every cleanly-exiting worker drained its trace ring and metrics
    // registry to the obs dir; the crashed one died without draining
    // (best-effort by design). All surviving files must parse, and the
    // drained case counters must sum to exactly the campaign's cases —
    // completed leases are counted once, the crashed partial lease not
    // at all.
    let (traces, metrics) = o4a_obs::observability_files(&obs_dir).expect("scan obs dir");
    assert!(!traces.is_empty(), "no worker drained a trace file");
    assert!(!metrics.is_empty(), "no worker drained a metrics file");
    let mut events = Vec::new();
    for path in &traces {
        let (_meta, mut file_events) =
            o4a_obs::trace::read_trace_file(path).expect("parse trace file");
        events.append(&mut file_events);
    }
    for name in ["lease.serve", "case.execute"] {
        assert!(
            events.iter().any(|e| e.name == name),
            "no {name} events in the fleet trace"
        );
    }
    let mut drained = o4a_obs::metrics::MetricsSnapshot::default();
    for path in &metrics {
        let (_seq, snapshot) =
            o4a_obs::metrics::read_metrics_file(path).expect("parse metrics file");
        drained.merge(&snapshot);
    }
    assert_eq!(
        drained.counters.get("campaign.cases").copied(),
        Some(reference.stats.cases),
        "drained worker metrics diverged from the campaign's case count"
    );

    // The per-process traces align into one merged Chrome trace.
    let chrome = o4a_obs::trace::export_chrome_trace(&traces).expect("chrome export");
    assert!(chrome.contains("\"traceEvents\""));
    assert!(chrome.contains("lease.serve"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// The fleet summary renders per-worker throughput and lease churn
/// (alongside the process-churn counters `render_stats` already shows).
#[test]
fn fleet_summary_renders() {
    let report = dist_run("render", 2, false);
    let summary = o4a_bench::render_dist_stats(&report.stats);
    assert!(summary.contains("shard leases granted"));
    assert!(
        summary.contains("w0"),
        "per-worker rows missing:\n{summary}"
    );
    assert!(summary.contains("/s"), "throughput missing:\n{summary}");
    let stats = o4a_bench::render_stats(&report.result);
    assert!(
        stats.contains("shard leases granted"),
        "campaign stats must surface lease churn:\n{stats}"
    );
}
