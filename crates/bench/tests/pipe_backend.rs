//! The pipe-transport gauntlet: the overlapped campaign engine driving
//! **external solver processes** (the deterministic mock built from
//! `src/bin/mock_solver.rs`) over stdin/stdout pipes — offline, no real
//! Z3 required.
//!
//! The acceptance criteria this file pins down:
//!
//! * the serial-vs-overlapped equivalence law holds over the pipe
//!   transport for K ∈ {1, 4, 8} — including under crash injection —
//!   in **both** transport modes: spawn (process per in-flight query)
//!   and session (K `(push 1)`/`(pop 1)` scopes multiplexed on one
//!   persistent process per lane);
//! * a crashing solver process becomes a `…::pipe::process-died` crash
//!   finding (and a respawn), never a hang — and in session mode a
//!   crash mid-scope costs exactly that one finding: pending sibling
//!   scopes replay onto the respawned process, never lost, never
//!   duplicated;
//! * a wedged solver process is killed at the per-query deadline and
//!   becomes a `…::pipe::wedged` crash finding, never a hang;
//! * `sat` answers fetch and parse real `(model …)` replies off the pipe;
//! * process churn is observable: a session campaign at K = 8 keeps
//!   **one process per lane** (plus respawns) where spawn mode pays at
//!   least K, and a spawn lane reused via `(reset)` answers bit-for-bit
//!   like a fresh process per query.

use o4a_core::{CampaignConfig, CampaignResult, Fuzzer, Once4AllFuzzer};
use o4a_exec::{run_campaign_sharded, run_shard_piped, ExecConfig, Parallelism, PipeBackend};
use o4a_smtlib::Symbol;
use o4a_solvers::{
    Outcome, PipeCommand, PipeSolver, SmtSolver, SolverId, SolverMode, TRUNK_COMMIT,
};
use std::time::{Duration, Instant};

/// The mock solver binary, built by cargo before this suite runs.
const MOCK: &str = env!("CARGO_BIN_EXE_mock_solver");

/// A mock command line with per-lane seeding and extra flags.
fn mock_cmd(extra: &str) -> String {
    let mut cmd = format!("{MOCK} --seed 11 --lane {{lane}}");
    if !extra.is_empty() {
        cmd.push(' ');
        cmd.push_str(extra);
    }
    cmd
}

fn quick_config() -> CampaignConfig {
    CampaignConfig {
        virtual_hours: 2,
        time_scale: 2_000_000, // smoke scale: a few dozen cases
        max_cases: 40,
        ..CampaignConfig::default()
    }
}

/// Everything observable, bit-comparable. Coverage is omitted: external
/// processes report none, so the maps are empty on every path. Stats are
/// compared **without** the transport churn counters: in spawn mode how
/// many children a lane fans out across is a real-time scheduling fact,
/// not a campaign observable (session-mode tests compare the full stats
/// separately — there the counters are deterministic too).
type Fingerprint = (
    o4a_core::CampaignStats,
    Vec<(String, SolverId, String, Option<String>, u64)>,
    Vec<(u32, u64, usize)>,
);

fn fingerprint(result: &CampaignResult) -> Fingerprint {
    (
        result.stats.sans_transport(),
        result
            .findings
            .iter()
            .map(|f| {
                (
                    f.case_text.clone(),
                    f.solver,
                    format!("{:?}", f.kind),
                    f.signature.clone(),
                    f.vhour.to_bits(),
                )
            })
            .collect(),
        result
            .snapshots
            .iter()
            .map(|s| (s.hour, s.cases, s.issues))
            .collect(),
    )
}

fn piped_shard(config: &CampaignConfig, inflight: usize, backend: &PipeBackend) -> CampaignResult {
    let mut fuzzer = Once4AllFuzzer::with_defaults();
    run_shard_piped(&mut fuzzer, config, 0, None, inflight, backend)
}

/// The tentpole law over the pipe transport: a campaign against external
/// solver processes is bit-identical whether queries go one at a time or
/// K ∈ {4, 8} in flight — completions re-sequence by case index before
/// campaign state sees them, and the mock's answers are pure functions of
/// the script, so fan-out across child processes cannot leak scheduling.
#[test]
fn piped_campaign_is_identical_for_k_1_4_8() {
    let config = quick_config();
    let backend = PipeBackend::new(mock_cmd("--latency-ms 3"));
    let reference = fingerprint(&piped_shard(&config, 1, &backend));
    assert!(reference.0.cases > 0, "reference ran no cases");
    assert!(
        reference.0.decisive > 0,
        "mock never answered sat/unsat — the transport is not being exercised"
    );
    for k in [4usize, 8] {
        assert_eq!(
            fingerprint(&piped_shard(&config, k, &backend)),
            reference,
            "K={k} diverged from serial over the pipe transport"
        );
    }
}

/// Crash injection: a mock that abruptly exits (mid-reply) on a seeded
/// subset of scripts. Every such query must surface as a
/// `…::pipe::process-died` crash finding, the lane must respawn, the
/// shard must run to completion — and the equivalence law must keep
/// holding, because crashes are per-script deterministic too.
#[test]
fn crash_injection_yields_findings_and_preserves_equivalence() {
    let config = quick_config();
    let backend = PipeBackend::new(mock_cmd("--crash-mod 5 --latency-ms 2"));
    let started = Instant::now();
    let reference = piped_shard(&config, 1, &backend);
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "crash-injected campaign took implausibly long — wedged?"
    );
    let died: Vec<_> = reference
        .findings
        .iter()
        .filter(|f| {
            f.signature
                .as_deref()
                .is_some_and(|s| s.ends_with("::pipe::process-died"))
        })
        .collect();
    assert!(
        !died.is_empty(),
        "crash-mod 5 produced no process-died findings in {} cases",
        reference.stats.cases
    );
    let reference = fingerprint(&reference);
    for k in [4usize, 8] {
        assert_eq!(
            fingerprint(&piped_shard(&config, k, &backend)),
            reference,
            "K={k} diverged under crash injection"
        );
    }
}

/// The engine-level wiring: `ExecConfig::solver_cmd` (the
/// `O4A_SOLVER_CMD` knob) routes a whole sharded campaign over pipes,
/// deterministically, with differential findings from the
/// independently-seeded lanes.
#[test]
fn sharded_engine_over_pipes_is_deterministic() {
    let config = quick_config();
    let exec = ExecConfig {
        shards: 2,
        parallelism: Parallelism::Threads(2),
        inflight: 4,
        solver_cmd: Some(mock_cmd("--latency-ms 2")),
        solver_timeout_ms: None,
        solver_mode: SolverMode::Spawn,
        cache_dir: None,
        affinity: false,
        checkpoint: None,
    };
    let factory = |_shard: u32| Box::new(Once4AllFuzzer::with_defaults()) as Box<dyn Fuzzer>;
    let a = run_campaign_sharded(factory, &config, &exec);
    let b = run_campaign_sharded(factory, &config, &exec);
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert!(
        a.stats.bug_triggering > 0,
        "independently-seeded lanes never disagreed in {} cases",
        a.stats.cases
    );
}

/// A wedged solver process (answers nothing, forever) is killed at the
/// per-query deadline and becomes a finding — the shard worker never
/// hangs — and the lane recovers with a fresh process for the next query.
#[test]
fn wedged_mock_is_killed_at_deadline_and_lane_recovers() {
    let cmd = mock_cmd("--answer sat --wedge-on WEDGE-MARKER");
    let mut solver = PipeSolver::standalone(
        PipeCommand::parse(&cmd).unwrap().for_lane(0),
        SolverId::OxiZ,
        TRUNK_COMMIT,
    )
    .with_timeout(Duration::from_millis(200));

    let started = Instant::now();
    // The marker must precede `(check-sat)` — the request segment ends at
    // the delimiter.
    let wedged = solver.check("(assert true) ; WEDGE-MARKER\n(check-sat)");
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "per-query deadline did not fire"
    );
    match wedged.outcome {
        Outcome::Crash(info) => assert_eq!(info.signature, "oxiz::pipe::wedged"),
        other => panic!("expected wedge crash finding, got {other}"),
    }
    assert_eq!(solver.respawns(), 1);

    // The next query gets a fresh, answering process.
    let healthy = solver.check("(assert true)(check-sat)");
    assert_eq!(healthy.outcome, Outcome::Sat);
    assert_eq!(solver.processes_spawned(), 2);
}

/// `sat` replies pull a real `(model …)` s-expression off the pipe and
/// parse it into the same `Model` type the in-process engines return —
/// the full two-round-trip protocol, against a live child process.
#[test]
fn sat_reply_carries_a_parsed_model() {
    let cmd = mock_cmd("--answer sat");
    let mut solver = PipeSolver::standalone(
        PipeCommand::parse(&cmd).unwrap().for_lane(1),
        SolverId::Cervo,
        TRUNK_COMMIT,
    );
    let response = solver.check("(declare-const x Int)(declare-const p Bool)(assert p)(check-sat)");
    assert_eq!(response.outcome, Outcome::Sat);
    let model = response
        .model
        .as_ref()
        .expect("sat reply must carry a model");
    assert!(
        model.get_const(&Symbol::new("x")).is_some(),
        "declared Int const missing from the parsed model"
    );
    assert!(
        model.get_const(&Symbol::new("p")).is_some(),
        "declared Bool const missing from the parsed model"
    );
    // Model values are seeded: the same query yields the same model.
    let again = solver.check("(declare-const x Int)(declare-const p Bool)(assert p)(check-sat)");
    assert_eq!(response.model, again.model);
    // Process reuse: both queries were served by one child over (reset).
    assert_eq!(solver.processes_spawned(), 1);
    assert_eq!(solver.respawns(), 0);
}

// ------------------------------------------------------------- session mode

fn session_backend(extra: &str) -> PipeBackend {
    PipeBackend::new(mock_cmd(extra)).with_mode(SolverMode::Session)
}

/// The tentpole law on the session transport: a campaign that
/// multiplexes its queries as `(push 1)`/`(pop 1)` scopes on one
/// persistent process per lane is bit-identical whether 1, 4, or 8
/// scopes are in flight — stats, findings, and snapshots. The mock's
/// answers are pure functions of the reconstructed scope-stack script,
/// so which scope lands where on the shared stream cannot leak
/// scheduling into results. (Transport counters measure *executed*
/// transport work — at K > 1 the engine speculatively executes up to
/// K − 1 cases past the budget boundary and discards them at apply
/// time, so churn is compared per-K below, not across K.)
#[test]
fn session_campaign_is_identical_for_k_1_4_8() {
    let config = quick_config();
    let backend = session_backend("--latency-ms 3");
    let reference = piped_shard(&config, 1, &backend);
    assert!(reference.stats.cases > 0, "reference ran no cases");
    assert!(
        reference.stats.decisive > 0,
        "mock never answered sat/unsat over the session transport"
    );
    assert_eq!(
        reference.stats.processes_spawned, 2,
        "one persistent process per lane (2 lanes) at K = 1"
    );
    assert_eq!(reference.stats.process_respawns, 0);
    // No speculation at K = 1: exactly one scope per applied query.
    assert_eq!(
        reference.stats.scopes_pushed,
        reference.stats.cases * 2,
        "every query is one scope on its lane's session"
    );
    let reference = fingerprint(&reference);
    for k in [4usize, 8] {
        let overlapped = piped_shard(&config, k, &backend);
        assert_eq!(
            overlapped.stats.processes_spawned, 2,
            "one persistent process per lane at K = {k}"
        );
        assert!(
            overlapped.stats.scopes_pushed >= overlapped.stats.cases * 2,
            "every applied query occupied a scope at K = {k}"
        );
        assert_eq!(
            fingerprint(&overlapped),
            reference,
            "K={k} diverged from serial on the session transport"
        );
    }
}

/// Crash injection mid-scope: when the child dies processing one scope,
/// exactly that query becomes a `…::pipe::process-died` finding and the
/// sibling scopes pending on the same stream replay onto the respawned
/// process — never lost, never duplicated — so the campaign stays
/// bit-identical across K. (Replays keep the law because answers depend
/// only on the reconstructed scope script, not on which process
/// incarnation serves it.)
#[test]
fn session_crash_injection_mid_scope_preserves_equivalence() {
    let config = quick_config();
    let backend = session_backend("--crash-mod 5 --latency-ms 2");
    let started = Instant::now();
    let reference = piped_shard(&config, 1, &backend);
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "crash-injected session campaign took implausibly long — wedged?"
    );
    let died = reference
        .findings
        .iter()
        .filter(|f| {
            f.signature
                .as_deref()
                .is_some_and(|s| s.ends_with("::pipe::process-died"))
        })
        .count();
    assert!(
        died > 0,
        "crash-mod 5 produced no process-died findings in {} cases",
        reference.stats.cases
    );
    assert!(
        reference.stats.process_respawns >= died as u64,
        "every crashed scope respawns the session"
    );
    let reference = fingerprint(&reference);
    for k in [4usize, 8] {
        let overlapped = piped_shard(&config, k, &backend);
        // One initial process per lane; each extra spawn is a respawn (a
        // lane whose *last* scope crashed counts the respawn without
        // ever needing the fresh process, hence ≤).
        assert!(
            overlapped.stats.processes_spawned >= 2
                && overlapped.stats.processes_spawned <= 2 + overlapped.stats.process_respawns,
            "session churn at K = {k}: {} processes for {} respawns",
            overlapped.stats.processes_spawned,
            overlapped.stats.process_respawns
        );
        assert_eq!(
            fingerprint(&overlapped),
            reference,
            "K={k} diverged under crash injection mid-scope"
        );
    }
}

/// Session and spawn transports agree bit-for-bit on everything but
/// process churn: the mock fingerprints the reconstructed scope-stack
/// script (prologue and framing stripped), so a script checked inside a
/// `(push 1)` scope answers exactly like the same script on a fresh
/// process.
#[test]
fn session_campaign_matches_spawn_campaign() {
    let config = quick_config();
    let spawn = piped_shard(&config, 4, &PipeBackend::new(mock_cmd("--latency-ms 2")));
    let session = piped_shard(&config, 4, &session_backend("--latency-ms 2"));
    assert_eq!(
        fingerprint(&session),
        fingerprint(&spawn),
        "transport mode leaked into campaign results"
    );
}

/// The churn claim of the refactor, measured end to end: at K = 8 a
/// session campaign keeps one process per lane where spawn mode pays at
/// least K across the lanes — the spawn-vs-prologue-vs-reset overhead
/// this PR removes from the hot path.
#[test]
fn session_k8_keeps_one_process_per_lane_where_spawn_fans_out() {
    let config = quick_config();
    let session = piped_shard(&config, 8, &session_backend("--latency-ms 2"));
    assert_eq!(
        session.stats.processes_spawned, 2,
        "session mode: one persistent process per lane at K = 8"
    );
    assert_eq!(session.stats.process_respawns, 0);
    let spawn = piped_shard(&config, 8, &PipeBackend::new(mock_cmd("--latency-ms 2")));
    assert!(
        spawn.stats.processes_spawned >= 8,
        "spawn mode at K = 8 fans out across at least K processes, got {}",
        spawn.stats.processes_spawned
    );
    assert_eq!(
        spawn.stats.scopes_pushed, 0,
        "spawn mode opens no incremental scopes"
    );
}

/// A wedge mid-scope: the per-query deadline kills the persistent
/// process, blames the scope the child was stuck on, and the lane
/// recovers — sibling queries land on the respawned session.
#[test]
fn session_wedge_mid_scope_is_killed_and_lane_recovers() {
    let cmd = mock_cmd("--answer sat --wedge-on WEDGE-MARKER");
    let mut solver = PipeSolver::standalone(
        PipeCommand::parse(&cmd).unwrap().for_lane(0),
        SolverId::OxiZ,
        TRUNK_COMMIT,
    )
    .with_mode(SolverMode::Session)
    .with_timeout(Duration::from_millis(200));

    let healthy = solver.check("(assert true)\n(check-sat)");
    assert_eq!(healthy.outcome, Outcome::Sat);
    let started = Instant::now();
    let wedged = solver.check("(assert true) ; WEDGE-MARKER\n(check-sat)");
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "per-query deadline did not fire on the session"
    );
    match wedged.outcome {
        Outcome::Crash(info) => assert_eq!(info.signature, "oxiz::pipe::wedged"),
        other => panic!("expected wedge crash finding, got {other}"),
    }
    assert_eq!(solver.respawns(), 1);
    let recovered = solver.check("(assert false)\n(check-sat)");
    assert_eq!(recovered.outcome, Outcome::Sat, "--answer sat forces sat");
    assert_eq!(solver.processes_spawned(), 2);
}

/// `sat` scopes carry models in session mode too — the `(get-model)`
/// rides inside the frame, and the parsed model matches what the same
/// query yields over the spawn transport.
#[test]
fn session_sat_scope_carries_the_same_model_as_spawn() {
    let cmd = mock_cmd("--answer sat");
    let script = "(declare-const x Int)(declare-const p Bool)(assert p)\n(check-sat)";
    let mut spawn = PipeSolver::standalone(
        PipeCommand::parse(&cmd).unwrap().for_lane(1),
        SolverId::Cervo,
        TRUNK_COMMIT,
    );
    let mut session = PipeSolver::standalone(
        PipeCommand::parse(&cmd).unwrap().for_lane(1),
        SolverId::Cervo,
        TRUNK_COMMIT,
    )
    .with_mode(SolverMode::Session);
    let spawn_response = spawn.check(script);
    let session_response = session.check(script);
    assert_eq!(spawn_response.outcome, Outcome::Sat);
    assert_eq!(session_response.outcome, Outcome::Sat);
    assert!(
        session_response.model.is_some(),
        "session sat needs a model"
    );
    assert_eq!(
        session_response.model, spawn_response.model,
        "model diverged between transports"
    );
    let x = Symbol::new("x");
    assert!(session_response
        .model
        .as_ref()
        .unwrap()
        .get_const(&x)
        .is_some());
}

// --------------------------------------------------- verdict-cache gauntlet

/// A fresh, unique cache directory under the system temp dir.
fn cache_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU32, Ordering};
    static NEXT: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "o4a-cache-gauntlet-{}-{}-{}",
        std::process::id(),
        tag,
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create cache dir");
    dir
}

/// The cache≡fresh law, the full matrix: for **both** transport modes
/// and K ∈ {1, 4, 8}, a campaign run cold (empty cache), and then again
/// warm off the journal the cold run wrote, is bit-identical to the
/// uncached serial reference — stats (modulo transport counters),
/// findings, models, snapshots. Hits reproduce the exact wire reply a
/// fresh solve would have produced, so caching can never show in
/// campaign observables.
#[test]
fn cached_campaign_matches_uncached_across_modes_and_topologies() {
    let config = quick_config();
    for mode in [SolverMode::Spawn, SolverMode::Session] {
        let base = PipeBackend::new(mock_cmd("--latency-ms 2")).with_mode(mode);
        let reference = piped_shard(&config, 1, &base);
        assert!(
            reference.stats.decisive > 0,
            "reference never exercised the mock"
        );
        assert_eq!(
            reference.stats.cache_misses, 0,
            "an uncached campaign must report zero cache traffic"
        );
        let reference = fingerprint(&reference);
        for k in [1usize, 4, 8] {
            let dir = cache_dir(&format!("{mode:?}-k{k}"));
            let cached = base.clone().with_cache_dir(&dir);
            let cold = piped_shard(&config, k, &cached);
            assert!(
                cold.stats.cache_misses > 0,
                "cold {mode:?} K={k} run never consulted the cache"
            );
            assert_eq!(
                fingerprint(&cold),
                reference,
                "cold cache diverged from uncached at {mode:?} K={k}"
            );
            let warm = piped_shard(&config, k, &cached);
            assert!(
                warm.stats.cache_hits > 0,
                "warm restart {mode:?} K={k} never hit the journal the cold run wrote"
            );
            assert_eq!(
                fingerprint(&warm),
                reference,
                "warm restart diverged from uncached at {mode:?} K={k}"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// A fully warmed serial campaign never touches a solver process: every
/// query is answered out of the journal, so the warm run spawns zero
/// children, opens zero scopes, and misses zero lookups — while staying
/// bit-identical to the live run that populated the cache.
#[test]
fn fully_warmed_campaign_runs_without_a_single_solver_process() {
    let config = quick_config();
    let dir = cache_dir("full-warm");
    let backend = session_backend("--latency-ms 2").with_cache_dir(&dir);
    let cold = piped_shard(&config, 1, &backend);
    assert_eq!(cold.stats.cache_hits, 0, "cold serial run cannot self-hit");
    assert_eq!(cold.stats.cache_misses, cold.stats.cases * 2);
    let warm = piped_shard(&config, 1, &backend);
    assert_eq!(warm.stats.cache_misses, 0, "warm run missed the journal");
    assert_eq!(
        warm.stats.cache_hits,
        warm.stats.cases * 2,
        "one hit per query (two solver lanes per case)"
    );
    assert_eq!(
        warm.stats.processes_spawned, 0,
        "a fully warmed campaign must not spawn solvers"
    );
    assert_eq!(warm.stats.scopes_pushed, 0);
    assert_eq!(fingerprint(&warm), fingerprint(&cold));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash injection through the cache: crashed queries journal as `died`
/// records, and a warm restart **replays the crash findings without
/// respawning anything** — bit-identical to the uncached reference, with
/// zero live processes harmed.
#[test]
fn cached_crash_campaign_replays_findings_without_respawns() {
    let config = quick_config();
    let base = session_backend("--crash-mod 5 --latency-ms 2");
    let reference = piped_shard(&config, 1, &base);
    let died = |r: &CampaignResult| {
        r.findings
            .iter()
            .filter(|f| {
                f.signature
                    .as_deref()
                    .is_some_and(|s| s.ends_with("::pipe::process-died"))
            })
            .count()
    };
    assert!(died(&reference) > 0, "crash-mod produced no crash findings");
    let reference = fingerprint(&reference);
    let dir = cache_dir("crash");
    let cached = base.with_cache_dir(&dir);
    for k in [1usize, 4] {
        assert_eq!(
            fingerprint(&piped_shard(&config, k, &cached)),
            reference,
            "cold cached crash campaign diverged at K={k}"
        );
    }
    let warm = piped_shard(&config, 1, &cached);
    assert_eq!(warm.stats.cache_misses, 0);
    assert_eq!(
        warm.stats.process_respawns, 0,
        "cached crash findings must replay without respawning"
    );
    assert!(died(&warm) > 0, "warm run lost the crash findings");
    assert_eq!(fingerprint(&warm), reference);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A journal torn mid-record by a crash (simulated by appending a
/// partial line) is tolerated on reload: the warm restart truncates the
/// torn tail, re-solves exactly the queries the tail would have served,
/// and stays bit-identical to the uncached reference.
#[test]
fn torn_cache_journal_tail_cannot_poison_a_warm_restart() {
    let config = quick_config();
    let base = session_backend("--latency-ms 2");
    let reference = fingerprint(&piped_shard(&config, 1, &base));
    let dir = cache_dir("torn");
    let cached = base.with_cache_dir(&dir);
    let cold = piped_shard(&config, 1, &cached);
    let journal = dir.join("cache-shard-0.jsonl");
    let intact = std::fs::metadata(&journal)
        .expect("cold run wrote the journal")
        .len();
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&journal)
            .unwrap();
        write!(f, "{{\"t\":\"verdict\",\"digest\":123,\"solv").unwrap();
    }
    let warm = piped_shard(&config, 1, &cached);
    assert_eq!(
        warm.stats.cache_hits, cold.stats.cache_misses,
        "every intact record must still hit after the torn tail"
    );
    assert_eq!(
        fingerprint(&warm),
        reference,
        "torn tail poisoned the restart"
    );
    assert_eq!(
        std::fs::metadata(&journal).unwrap().len(),
        intact,
        "reload must truncate the torn tail before appending"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Prefix-affinity routing obeys the same law as everything else on the
/// transport: an affine session campaign — with and without the cache,
/// cold and warm — is bit-identical to the plain spawn campaign.
#[test]
fn affine_session_campaign_matches_spawn_campaign() {
    let config = quick_config();
    let spawn = fingerprint(&piped_shard(
        &config,
        4,
        &PipeBackend::new(mock_cmd("--latency-ms 2")),
    ));
    let affine = session_backend("--latency-ms 2").with_affinity(true);
    assert_eq!(
        fingerprint(&piped_shard(&config, 4, &affine)),
        spawn,
        "affinity routing leaked into campaign results"
    );
    let dir = cache_dir("affine");
    let affine_cached = affine.with_cache_dir(&dir);
    assert_eq!(
        fingerprint(&piped_shard(&config, 4, &affine_cached)),
        spawn,
        "affinity + cold cache diverged from spawn"
    );
    let warm = piped_shard(&config, 4, &affine_cached);
    assert!(warm.stats.cache_hits > 0);
    assert_eq!(
        fingerprint(&warm),
        spawn,
        "affinity + warm cache diverged from spawn"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ------------------------------------------------- spawn-mode reuse parity

/// The invariant session mode inherits, pinned where it originates: a
/// spawn-mode lane that **reuses one child across queries via
/// `(reset)`** answers bit-identically to a fresh process per query.
/// (The mock hashes the accumulated-then-reset script text, so reuse is
/// only sound because `(reset)` really clears the scope state — which is
/// exactly what session mode relies on `(pop 1)` for.)
#[test]
fn spawn_lane_reused_via_reset_matches_fresh_process_per_query() {
    let cmd = mock_cmd("--latency-ms 1");
    let scripts: Vec<String> = (0..6)
        .map(|i| format!("(declare-const x Int)(assert (> x {i}))\n(check-sat)"))
        .collect();
    let mut reused = PipeSolver::standalone(
        PipeCommand::parse(&cmd).unwrap().for_lane(0),
        SolverId::OxiZ,
        TRUNK_COMMIT,
    );
    let reused_responses: Vec<_> = scripts.iter().map(|s| reused.check(s)).collect();
    assert_eq!(
        reused.processes_spawned(),
        1,
        "serial queries must reuse one child via (reset)"
    );
    let fresh_responses: Vec<_> = scripts
        .iter()
        .map(|s| {
            let mut fresh = PipeSolver::standalone(
                PipeCommand::parse(&cmd).unwrap().for_lane(0),
                SolverId::OxiZ,
                TRUNK_COMMIT,
            );
            let response = fresh.check(s);
            assert_eq!(fresh.processes_spawned(), 1);
            response
        })
        .collect();
    assert_eq!(
        reused_responses, fresh_responses,
        "(reset) reuse leaked state between queries"
    );
    assert!(
        reused_responses
            .iter()
            .any(|r| matches!(r.outcome, Outcome::Sat | Outcome::Unsat)),
        "the parity sweep never exercised a decisive answer"
    );
}
