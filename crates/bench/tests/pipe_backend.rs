//! The pipe-transport gauntlet: the overlapped campaign engine driving
//! **external solver processes** (the deterministic mock built from
//! `src/bin/mock_solver.rs`) over stdin/stdout pipes — offline, no real
//! Z3 required.
//!
//! The acceptance criteria this file pins down:
//!
//! * the serial-vs-overlapped equivalence law holds over the pipe
//!   transport for K ∈ {1, 4, 8} — including under crash injection;
//! * a crashing solver process becomes a `…::pipe::process-died` crash
//!   finding (and a respawn), never a hang;
//! * a wedged solver process is killed at the per-query deadline and
//!   becomes a `…::pipe::wedged` crash finding, never a hang;
//! * `sat` answers fetch and parse real `(model …)` replies off the pipe.

use o4a_core::{CampaignConfig, CampaignResult, Fuzzer, Once4AllFuzzer};
use o4a_exec::{run_campaign_sharded, run_shard_piped, ExecConfig, Parallelism, PipeBackend};
use o4a_smtlib::Symbol;
use o4a_solvers::{Outcome, PipeCommand, PipeSolver, SmtSolver, SolverId, TRUNK_COMMIT};
use std::time::{Duration, Instant};

/// The mock solver binary, built by cargo before this suite runs.
const MOCK: &str = env!("CARGO_BIN_EXE_mock_solver");

/// A mock command line with per-lane seeding and extra flags.
fn mock_cmd(extra: &str) -> String {
    let mut cmd = format!("{MOCK} --seed 11 --lane {{lane}}");
    if !extra.is_empty() {
        cmd.push(' ');
        cmd.push_str(extra);
    }
    cmd
}

fn quick_config() -> CampaignConfig {
    CampaignConfig {
        virtual_hours: 2,
        time_scale: 2_000_000, // smoke scale: a few dozen cases
        max_cases: 40,
        ..CampaignConfig::default()
    }
}

/// Everything observable, bit-comparable. Coverage is omitted: external
/// processes report none, so the maps are empty on every path.
type Fingerprint = (
    o4a_core::CampaignStats,
    Vec<(String, SolverId, String, Option<String>, u64)>,
    Vec<(u32, u64, usize)>,
);

fn fingerprint(result: &CampaignResult) -> Fingerprint {
    (
        result.stats.clone(),
        result
            .findings
            .iter()
            .map(|f| {
                (
                    f.case_text.clone(),
                    f.solver,
                    format!("{:?}", f.kind),
                    f.signature.clone(),
                    f.vhour.to_bits(),
                )
            })
            .collect(),
        result
            .snapshots
            .iter()
            .map(|s| (s.hour, s.cases, s.issues))
            .collect(),
    )
}

fn piped_shard(config: &CampaignConfig, inflight: usize, backend: &PipeBackend) -> CampaignResult {
    let mut fuzzer = Once4AllFuzzer::with_defaults();
    run_shard_piped(&mut fuzzer, config, 0, None, inflight, backend)
}

/// The tentpole law over the pipe transport: a campaign against external
/// solver processes is bit-identical whether queries go one at a time or
/// K ∈ {4, 8} in flight — completions re-sequence by case index before
/// campaign state sees them, and the mock's answers are pure functions of
/// the script, so fan-out across child processes cannot leak scheduling.
#[test]
fn piped_campaign_is_identical_for_k_1_4_8() {
    let config = quick_config();
    let backend = PipeBackend::new(mock_cmd("--latency-ms 3"));
    let reference = fingerprint(&piped_shard(&config, 1, &backend));
    assert!(reference.0.cases > 0, "reference ran no cases");
    assert!(
        reference.0.decisive > 0,
        "mock never answered sat/unsat — the transport is not being exercised"
    );
    for k in [4usize, 8] {
        assert_eq!(
            fingerprint(&piped_shard(&config, k, &backend)),
            reference,
            "K={k} diverged from serial over the pipe transport"
        );
    }
}

/// Crash injection: a mock that abruptly exits (mid-reply) on a seeded
/// subset of scripts. Every such query must surface as a
/// `…::pipe::process-died` crash finding, the lane must respawn, the
/// shard must run to completion — and the equivalence law must keep
/// holding, because crashes are per-script deterministic too.
#[test]
fn crash_injection_yields_findings_and_preserves_equivalence() {
    let config = quick_config();
    let backend = PipeBackend::new(mock_cmd("--crash-mod 5 --latency-ms 2"));
    let started = Instant::now();
    let reference = piped_shard(&config, 1, &backend);
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "crash-injected campaign took implausibly long — wedged?"
    );
    let died: Vec<_> = reference
        .findings
        .iter()
        .filter(|f| {
            f.signature
                .as_deref()
                .is_some_and(|s| s.ends_with("::pipe::process-died"))
        })
        .collect();
    assert!(
        !died.is_empty(),
        "crash-mod 5 produced no process-died findings in {} cases",
        reference.stats.cases
    );
    let reference = fingerprint(&reference);
    for k in [4usize, 8] {
        assert_eq!(
            fingerprint(&piped_shard(&config, k, &backend)),
            reference,
            "K={k} diverged under crash injection"
        );
    }
}

/// The engine-level wiring: `ExecConfig::solver_cmd` (the
/// `O4A_SOLVER_CMD` knob) routes a whole sharded campaign over pipes,
/// deterministically, with differential findings from the
/// independently-seeded lanes.
#[test]
fn sharded_engine_over_pipes_is_deterministic() {
    let config = quick_config();
    let exec = ExecConfig {
        shards: 2,
        parallelism: Parallelism::Threads(2),
        inflight: 4,
        solver_cmd: Some(mock_cmd("--latency-ms 2")),
        solver_timeout_ms: None,
    };
    let factory = |_shard: u32| Box::new(Once4AllFuzzer::with_defaults()) as Box<dyn Fuzzer>;
    let a = run_campaign_sharded(factory, &config, &exec);
    let b = run_campaign_sharded(factory, &config, &exec);
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert!(
        a.stats.bug_triggering > 0,
        "independently-seeded lanes never disagreed in {} cases",
        a.stats.cases
    );
}

/// A wedged solver process (answers nothing, forever) is killed at the
/// per-query deadline and becomes a finding — the shard worker never
/// hangs — and the lane recovers with a fresh process for the next query.
#[test]
fn wedged_mock_is_killed_at_deadline_and_lane_recovers() {
    let cmd = mock_cmd("--answer sat --wedge-on WEDGE-MARKER");
    let mut solver = PipeSolver::standalone(
        PipeCommand::parse(&cmd).unwrap().for_lane(0),
        SolverId::OxiZ,
        TRUNK_COMMIT,
    )
    .with_timeout(Duration::from_millis(200));

    let started = Instant::now();
    // The marker must precede `(check-sat)` — the request segment ends at
    // the delimiter.
    let wedged = solver.check("(assert true) ; WEDGE-MARKER\n(check-sat)");
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "per-query deadline did not fire"
    );
    match wedged.outcome {
        Outcome::Crash(info) => assert_eq!(info.signature, "oxiz::pipe::wedged"),
        other => panic!("expected wedge crash finding, got {other}"),
    }
    assert_eq!(solver.respawns(), 1);

    // The next query gets a fresh, answering process.
    let healthy = solver.check("(assert true)(check-sat)");
    assert_eq!(healthy.outcome, Outcome::Sat);
    assert_eq!(solver.processes_spawned(), 2);
}

/// `sat` replies pull a real `(model …)` s-expression off the pipe and
/// parse it into the same `Model` type the in-process engines return —
/// the full two-round-trip protocol, against a live child process.
#[test]
fn sat_reply_carries_a_parsed_model() {
    let cmd = mock_cmd("--answer sat");
    let mut solver = PipeSolver::standalone(
        PipeCommand::parse(&cmd).unwrap().for_lane(1),
        SolverId::Cervo,
        TRUNK_COMMIT,
    );
    let response = solver.check("(declare-const x Int)(declare-const p Bool)(assert p)(check-sat)");
    assert_eq!(response.outcome, Outcome::Sat);
    let model = response
        .model
        .as_ref()
        .expect("sat reply must carry a model");
    assert!(
        model.get_const(&Symbol::new("x")).is_some(),
        "declared Int const missing from the parsed model"
    );
    assert!(
        model.get_const(&Symbol::new("p")).is_some(),
        "declared Bool const missing from the parsed model"
    );
    // Model values are seeded: the same query yields the same model.
    let again = solver.check("(declare-const x Int)(declare-const p Bool)(assert p)(check-sat)");
    assert_eq!(response.model, again.model);
    // Process reuse: both queries were served by one child over (reset).
    assert_eq!(solver.processes_spawned(), 1);
    assert_eq!(solver.respawns(), 0);
}
