//! The scope-plane gauntlet: **watching a campaign cannot change it.**
//!
//! A 2-worker TCP fleet runs three ways — in-process reference, TCP
//! with the observatory off, TCP with `O4A_SCOPE` on *and* live
//! observers hammering all three endpoints mid-campaign — and every
//! fingerprint (findings down to the `vhour` bits, hourly snapshots,
//! coverage maps, `sans_transport` stats) must be identical.
//!
//! On top of the equivalence law, the scope-on leg pins the observatory
//! itself:
//!
//! * `/status` serves a JSON document [`ScopeStatus::from_json_text`]
//!   accepts, with live fleet rows mid-campaign;
//! * `/metrics` serves well-formed Prometheus text with the fleet
//!   gauges;
//! * `/events` streams SSE milestones (at least the four `done`s);
//! * the fleet-merged Chrome trace carries a `pid` lane for **every**
//!   worker plus the coordinator.

use o4a_core::{CampaignConfig, CampaignResult, Fuzzer, Once4AllFuzzer};
use o4a_dist::{run_distributed, DistConfig, DistReport, ScopeStatus};
use o4a_exec::{run_campaign_sharded, ExecConfig, Parallelism};
use o4a_obs::ObsConfig;
use o4a_solvers::coverage::universe;
use o4a_solvers::SolverId;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const WORKER: &str = env!("CARGO_BIN_EXE_dist_worker");
const SHARDS: u32 = 4;

fn quick_config() -> CampaignConfig {
    CampaignConfig {
        virtual_hours: 2,
        time_scale: 50_000, // smoke scale: ~8 cases and a few findings per shard
        max_cases: 120,
        ..CampaignConfig::default()
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("o4a-scope-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("journals")).expect("scratch dir");
    dir
}

fn free_addr() -> String {
    let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("probe bind");
    probe.local_addr().expect("probe addr").to_string()
}

/// The same bit-comparable fingerprint as the elastic-fleet gauntlet.
type Fingerprint = (
    o4a_core::CampaignStats,
    Vec<(String, SolverId, String, Option<String>, u64)>,
    Vec<(u32, u64, usize, Vec<(SolverId, u64, u64)>)>,
    Vec<(SolverId, Vec<(String, u32)>)>,
);

fn fingerprint(result: &CampaignResult) -> Fingerprint {
    (
        result.stats.sans_transport(),
        result
            .findings
            .iter()
            .map(|f| {
                (
                    f.case_text.clone(),
                    f.solver,
                    format!("{:?}", f.kind),
                    f.signature.clone(),
                    f.vhour.to_bits(),
                )
            })
            .collect(),
        result
            .snapshots
            .iter()
            .map(|s| {
                (
                    s.hour,
                    s.cases,
                    s.issues,
                    s.coverage
                        .iter()
                        .map(|(&id, p)| (id, p.line_pct.to_bits(), p.function_pct.to_bits()))
                        .collect(),
                )
            })
            .collect(),
        result
            .coverage
            .iter()
            .map(|(&id, map)| (id, map.export(&universe(id))))
            .collect(),
    )
}

fn in_process_reference() -> CampaignResult {
    let exec = ExecConfig {
        shards: SHARDS,
        parallelism: Parallelism::Serial,
        ..ExecConfig::default()
    };
    let factory = |_shard: u32| Box::new(Once4AllFuzzer::with_defaults()) as Box<dyn Fuzzer>;
    run_campaign_sharded(factory, &quick_config(), &exec)
}

/// Spawns a `dist_worker --connect` joiner; `traced` turns the worker's
/// own obs on (draining into the scratch dir, which is removed with the
/// rest of the run) so its ring has spans for the lease piggyback.
fn spawn_joiner(addr: &str, dir: &std::path::Path, id: u32, traced: bool) -> Child {
    let mut cmd = Command::new(WORKER);
    cmd.arg("--journal")
        .arg(dir.join(format!("journals/w{id}.jsonl")))
        .arg("--worker")
        .arg(id.to_string())
        .arg("--connect")
        .arg(addr)
        .arg("--slow-ms")
        .arg("40") // keep the campaign alive long enough to observe
        .stdin(Stdio::null())
        .stdout(Stdio::null());
    if traced {
        let obs_dir = dir.join("obs");
        cmd.env("O4A_TRACE", &obs_dir).env("O4A_METRICS", &obs_dir);
    } else {
        cmd.env_remove("O4A_TRACE").env_remove("O4A_METRICS");
    }
    cmd.spawn().expect("spawn dist_worker")
}

fn reap_clean(workers: Vec<Child>) -> Vec<u32> {
    let mut pids = Vec::new();
    for mut child in workers {
        pids.push(child.id());
        let deadline = Instant::now() + Duration::from_secs(30);
        let status = loop {
            match child.try_wait().expect("wait worker") {
                Some(status) => break status,
                None if Instant::now() >= deadline => {
                    child.kill().ok();
                    child.wait().ok();
                    panic!("worker did not exit after the campaign");
                }
                None => std::thread::sleep(Duration::from_millis(10)),
            }
        };
        assert!(status.success(), "worker exited dirty: {status:?}");
    }
    pids
}

fn tcp_coordinator(addr: &str, dir: &std::path::Path) -> DistConfig {
    DistConfig::new(Vec::new(), dir.join("journals"))
        .with_tcp(addr.to_string())
        .with_workers(2)
        .with_heartbeat_timeout(Duration::from_secs(30))
        .with_accept_timeout(Duration::from_secs(60))
}

/// One blocking HTTP GET against the scope plane (it closes per
/// request, so read-to-end delimits the response).
fn http_get(addr: &str, path: &str) -> Option<String> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok()?;
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
        .ok()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).ok()?;
    let text = String::from_utf8(raw).ok()?;
    let (head, body) = text.split_once("\r\n\r\n")?;
    head.starts_with("HTTP/1.1 200").then(|| body.to_string())
}

fn run_fleet(
    dir: &std::path::Path,
    addr: &str,
    dist: &DistConfig,
    traced: bool,
) -> (DistReport, Vec<u32>) {
    let workers: Vec<Child> = (0..2)
        .map(|id| spawn_joiner(addr, dir, id, traced))
        .collect();
    let report = run_distributed(&quick_config(), SHARDS, dist).expect("fleet");
    let pids = reap_clean(workers);
    (report, pids)
}

#[test]
fn scope_on_equals_scope_off_under_live_observation() {
    // Legs 1 and 2 run with the coordinator's obs fully off.
    o4a_obs::uninstall();
    let reference = fingerprint(&in_process_reference());

    // Leg 2: scope off — the plain TCP fleet baseline.
    let off_dir = scratch_dir("off");
    let off_addr = free_addr();
    let (off_report, _) = run_fleet(
        &off_dir,
        &off_addr,
        &tcp_coordinator(&off_addr, &off_dir),
        false,
    );
    assert_eq!(
        fingerprint(&off_report.result),
        reference,
        "scope-off TCP fleet diverged from the in-process engine"
    );
    assert!(
        off_report.stats.fleet_trace.is_none(),
        "no fleet trace without the scope plane"
    );
    let _ = std::fs::remove_dir_all(&off_dir);

    // Leg 3: scope on, coordinator obs on (in-memory), workers traced,
    // and three observer threads hammering the endpoints mid-campaign.
    o4a_obs::install(ObsConfig {
        trace: true,
        metrics: true,
        dir: None,
        ..ObsConfig::default()
    });
    let on_dir = scratch_dir("on");
    let on_addr = free_addr();
    let scope_addr = free_addr();
    let dist = tcp_coordinator(&on_addr, &on_dir).with_scope(scope_addr.clone());

    let stop = Arc::new(AtomicBool::new(false));
    let status_poller = {
        let (addr, stop) = (scope_addr.clone(), stop.clone());
        std::thread::spawn(move || {
            let mut last = None;
            let mut saw_fleet = false;
            while !stop.load(Ordering::Relaxed) {
                if let Some(body) = http_get(&addr, "/status") {
                    saw_fleet |= body.contains("\"lease\"");
                    last = Some(body);
                }
                std::thread::sleep(Duration::from_millis(25));
            }
            (last, saw_fleet)
        })
    };
    let metrics_poller = {
        let (addr, stop) = (scope_addr.clone(), stop.clone());
        std::thread::spawn(move || {
            let mut last = None;
            while !stop.load(Ordering::Relaxed) {
                if let Some(body) = http_get(&addr, "/metrics") {
                    last = Some(body);
                }
                std::thread::sleep(Duration::from_millis(25));
            }
            last
        })
    };
    let events_tail = {
        let (addr, stop) = (scope_addr.clone(), stop.clone());
        std::thread::spawn(move || {
            // Retry the dial until the coordinator binds, then hold the
            // SSE stream open until the campaign ends and it closes.
            let deadline = Instant::now() + Duration::from_secs(30);
            let mut stream = loop {
                match TcpStream::connect(&addr) {
                    Ok(stream) => break stream,
                    Err(_) if Instant::now() < deadline && !stop.load(Ordering::Relaxed) => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => return String::new(),
                }
            };
            if stream
                .write_all(b"GET /events HTTP/1.1\r\nHost: t\r\n\r\n")
                .is_err()
            {
                return String::new();
            }
            let mut text = String::new();
            let _ = stream.read_to_string(&mut text);
            text
        })
    };

    let (on_report, worker_pids) = run_fleet(&on_dir, &on_addr, &dist, true);
    stop.store(true, Ordering::Relaxed);
    let (status_body, saw_fleet) = status_poller.join().expect("status poller");
    let metrics_body = metrics_poller.join().expect("metrics poller");
    let events_text = events_tail.join().expect("events tail");
    o4a_obs::uninstall();

    // The law: live observation cannot move a bit.
    assert_eq!(
        fingerprint(&on_report.result),
        reference,
        "the scope plane leaked into the merged result"
    );

    // /status parses and showed a live fleet at some point mid-run.
    let status_body = status_body.expect("/status was never served");
    let status = ScopeStatus::from_json_text(&status_body).expect("/status body parses");
    assert_eq!(status.shards, SHARDS);
    assert!(saw_fleet, "/status never showed a live fleet row");

    // /metrics is well-formed Prometheus text with the fleet gauges.
    let metrics_body = metrics_body.expect("/metrics was never served");
    assert!(
        metrics_body.contains("# TYPE"),
        "no TYPE lines:\n{metrics_body}"
    );
    assert!(
        metrics_body.contains("fleet_shards_total"),
        "no fleet gauges:\n{metrics_body}"
    );

    // /events streamed SSE milestones — every shard completion at least.
    assert!(
        events_text.starts_with("HTTP/1.1 200"),
        "SSE preamble missing:\n{events_text}"
    );
    assert!(
        events_text.matches("event: done").count() >= SHARDS as usize,
        "missing done events:\n{events_text}"
    );

    // The fleet-merged Chrome trace has a lane for every worker plus
    // the coordinator.
    let trace_path = on_report
        .stats
        .fleet_trace
        .as_ref()
        .expect("scope-on campaign writes a fleet trace");
    let trace_text = std::fs::read_to_string(trace_path).expect("fleet trace readable");
    for pid in &worker_pids {
        assert!(
            trace_text.contains(&format!("\"pid\":{pid}")),
            "worker pid {pid} has no lane in the fleet trace"
        );
    }
    assert!(
        trace_text.contains(&format!("\"pid\":{}", std::process::id())),
        "coordinator has no lane in the fleet trace"
    );
    let _ = std::fs::remove_dir_all(&on_dir);
}
