//! Regenerates **Figure 6** (coverage growth for nine fuzzers on both
//! solvers) at bench scale and measures one coverage campaign.

use criterion::{criterion_group, criterion_main, Criterion};
use o4a_bench::{
    coverage_comparison, coverage_comparison_parallel, exec_knob, render_coverage_panel,
    trunk_solvers, Roster, Scale,
};
use o4a_solvers::SolverId;

const BENCH_SCALE: Scale = Scale {
    time_scale: 6_000,
    max_cases: 1_500,
    hours: 24,
};

fn bench(c: &mut Criterion) {
    let results = coverage_comparison_parallel(
        &Roster::paper_fuzzers(),
        BENCH_SCALE,
        trunk_solvers(),
        &exec_knob(),
    );
    for (solver, lines, title) in [
        (SolverId::OxiZ, true, "Figure 6a: line coverage on Z3*"),
        (SolverId::Cervo, true, "Figure 6b: line coverage on cvc5*"),
        (SolverId::OxiZ, false, "Figure 6c: function coverage on Z3*"),
        (
            SolverId::Cervo,
            false,
            "Figure 6d: function coverage on cvc5*",
        ),
    ] {
        println!("{}", render_coverage_panel(title, &results, solver, lines));
    }

    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    g.bench_function("one_coverage_campaign", |b| {
        b.iter(|| {
            let tiny = Scale {
                time_scale: 2_000_000,
                max_cases: 80,
                hours: 24,
            };
            coverage_comparison(
                vec![Box::new(o4a_core::Once4AllFuzzer::with_defaults())],
                tiny,
                trunk_solvers(),
            )
            .len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
