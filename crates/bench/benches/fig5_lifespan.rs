//! Regenerates **Figure 5** (bug lifespans across release versions) at
//! bench scale and measures the replay analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use o4a_bench::{fig5, render_fig5, trunk_campaign, Scale};
use o4a_core::{dedup, lifespan_series};
use o4a_solvers::SolverId;

const BENCH_SCALE: Scale = Scale {
    time_scale: 2_000,
    max_cases: 3_000,
    hours: 24,
};

fn bench(c: &mut Criterion) {
    let result = trunk_campaign(BENCH_SCALE);
    println!("{}", render_fig5(&fig5(&result)));

    let issues = dedup(&result.findings);
    let mut g = c.benchmark_group("fig5");
    g.sample_size(20);
    g.bench_function("lifespan_replay", |b| {
        b.iter(|| {
            lifespan_series(SolverId::OxiZ, &issues).len()
                + lifespan_series(SolverId::Cervo, &issues).len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
