//! Regenerates **Table 2** (bug types among the reported bugs) at bench
//! scale and measures triage/deduplication cost.

use criterion::{criterion_group, criterion_main, Criterion};
use o4a_bench::{render_table2, table2, trunk_campaign, Scale};
use o4a_core::dedup;

const BENCH_SCALE: Scale = Scale {
    time_scale: 2_000,
    max_cases: 3_000,
    hours: 24,
};

fn bench(c: &mut Criterion) {
    let result = trunk_campaign(BENCH_SCALE);
    println!("{}", render_table2(&table2(&result)));

    let mut g = c.benchmark_group("table2");
    g.sample_size(20);
    g.bench_function("triage_dedup", |b| b.iter(|| dedup(&result.findings).len()));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
