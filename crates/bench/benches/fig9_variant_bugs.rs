//! Regenerates **Figure 9** (unique known bugs found by Once4All variants)
//! at bench scale.

use criterion::{criterion_group, criterion_main, Criterion};
use o4a_bench::{
    exec_knob, known_bug_comparison, known_bug_comparison_parallel, render_known_bugs, Roster,
    Scale,
};

const BENCH_SCALE: Scale = Scale {
    time_scale: 3_000,
    max_cases: 1_500,
    hours: 24,
};

fn bench(c: &mut Criterion) {
    let sets = known_bug_comparison_parallel(&Roster::paper_variants(), BENCH_SCALE, &exec_knob());
    println!(
        "{}",
        render_known_bugs("Figure 9: unique known bugs found by variants", &sets)
    );

    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    g.bench_function("variant_known_bug_run", |b| {
        b.iter(|| {
            let tiny = Scale {
                time_scale: 3_000_000,
                max_cases: 60,
                hours: 24,
            };
            known_bug_comparison(
                vec![Box::new(o4a_core::Once4AllFuzzer::with_defaults())],
                tiny,
            )
            .len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
