//! Regenerates **Figure 8** (coverage for Once4All variants) at bench
//! scale and measures the w/oS variant campaign.

use criterion::{criterion_group, criterion_main, Criterion};
use o4a_bench::{
    coverage_comparison, coverage_comparison_parallel, exec_knob, render_coverage_panel,
    trunk_solvers, Roster, Scale,
};
use o4a_core::{Once4AllConfig, Once4AllFuzzer};
use o4a_solvers::SolverId;

const BENCH_SCALE: Scale = Scale {
    time_scale: 6_000,
    max_cases: 1_500,
    hours: 24,
};

fn bench(c: &mut Criterion) {
    let results = coverage_comparison_parallel(
        &Roster::paper_variants(),
        BENCH_SCALE,
        trunk_solvers(),
        &exec_knob(),
    );
    for (solver, lines, title) in [
        (
            SolverId::OxiZ,
            true,
            "Figure 8a: line coverage on Z3* (variants)",
        ),
        (
            SolverId::Cervo,
            true,
            "Figure 8b: line coverage on cvc5* (variants)",
        ),
        (
            SolverId::OxiZ,
            false,
            "Figure 8c: function coverage on Z3* (variants)",
        ),
        (
            SolverId::Cervo,
            false,
            "Figure 8d: function coverage on cvc5* (variants)",
        ),
    ] {
        println!("{}", render_coverage_panel(title, &results, solver, lines));
    }

    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    g.bench_function("wos_variant_campaign", |b| {
        b.iter(|| {
            let tiny = Scale {
                time_scale: 2_000_000,
                max_cases: 80,
                hours: 24,
            };
            coverage_comparison(
                vec![Box::new(Once4AllFuzzer::new(Once4AllConfig {
                    use_skeletons: false,
                    ..Once4AllConfig::default()
                }))],
                tiny,
                trunk_solvers(),
            )
            .len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
