//! Substrate micro-benchmarks: parsing, printing, sort checking, golden
//! evaluation, and solving throughput — the per-case costs behind every
//! campaign throughput number.

use criterion::{criterion_group, criterion_main, Criterion};
use o4a_smtlib::eval::{no_defs, DomainConfig, Evaluator};
use o4a_smtlib::{parse_script, typeck, Model, Symbol, Value};
use o4a_solvers::{Cervo, EngineConfig, OxiZ, SmtSolver};

const FORMULA: &str = "(declare-const x Int)(declare-const s String)\
    (assert (and (> x (str.len s)) (exists ((k Int)) (= (* k k) x))))\
    (assert (str.prefixof \"ab\" s))(check-sat)";

fn bench_substrate(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate");
    g.sample_size(20);

    g.bench_function("parse", |b| {
        b.iter(|| parse_script(std::hint::black_box(FORMULA)).unwrap())
    });

    let script = parse_script(FORMULA).unwrap();
    g.bench_function("print", |b| b.iter(|| script.to_string()));
    g.bench_function("typecheck", |b| {
        b.iter(|| typeck::check_script(&script).unwrap())
    });

    let mut model = Model::new();
    model.set_const(Symbol::new("x"), Value::Int(4));
    model.set_const(Symbol::new("s"), Value::Str("abc".into()));
    let cfg = DomainConfig::default();
    g.bench_function("golden_eval", |b| {
        b.iter(|| {
            let ev = Evaluator::new(&model, no_defs(), &cfg, 100_000);
            for a in script.assertions() {
                let _ = ev.eval(a);
            }
        })
    });

    let engine = EngineConfig {
        bugs_enabled: false,
        ..EngineConfig::default()
    };
    g.bench_function("solve_oxiz", |b| {
        b.iter(|| {
            let mut s = OxiZ::new().with_config(engine.clone());
            s.check(FORMULA)
        })
    });
    g.bench_function("solve_cervo", |b| {
        b.iter(|| {
            let mut s = Cervo::new().with_config(engine.clone());
            s.check(FORMULA)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_substrate);
criterion_main!(benches);
