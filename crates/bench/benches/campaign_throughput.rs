//! Campaign throughput across every execution mode, recorded as a
//! committed `BENCH_throughput.json` at the workspace root so the
//! repo's performance trajectory is tracked in-tree, run over run.
//!
//! Scenarios (all the identical campaign plan, so the cases/sec numbers
//! compare like for like):
//!
//! * `serial` — the classic one-query-at-a-time stepper loop;
//! * `serial_traced` — the same loop with the o4a-obs substrate armed
//!   (trace spans + metrics recorded in-memory, ring drained per run);
//!   the `serial` / `serial_traced` pair is the committed price of
//!   turning observability on;
//! * `overlapped_k1` / `overlapped_k8` — the async in-process backend
//!   with K queries in flight per shard worker;
//! * `pipe_spawn_k8` / `pipe_session_k8` — external mock-solver
//!   processes over stdin/stdout pipes (zero injected latency, so the
//!   number measures transport overhead, not sleeps);
//! * `pipe_dup_uncached` / `pipe_dup_cached` — a duplicate-heavy case
//!   stream (24 distinct scripts cycled over the whole plan) against a
//!   mock with injected per-query latency, without and with the verdict
//!   cache. The cached number is what `O4A_CACHE` buys on re-solved
//!   scripts: every repeat is served off the journal without touching a
//!   process.
//!
//! The JSON layout is one flat `scenarios` object of cases/sec values
//! plus the per-run constants needed to interpret them. No timestamps:
//! re-running on the same machine should produce a minimal diff.

use criterion::{criterion_group, criterion_main, Criterion};
use o4a_core::{
    adapt_fill_arena, parse_fill_into, skeletonize_arena, synthesize_arena, CampaignConfig,
    CampaignResult, Once4AllFuzzer, SkeletonConfig,
};
use o4a_exec::{run_shard_overlapped, run_shard_piped, PipeBackend};
use o4a_llm::RawTerm;
use o4a_obs::json::{obj, Json};
use o4a_smtlib::eval::{no_defs, DomainConfig, Evaluator};
use o4a_smtlib::{ArenaScript, Model, Symbol, TermArena, Value};
use o4a_solvers::SolverMode;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;
use std::time::Instant;

/// The mock solver binary, built by cargo before this bench runs.
const MOCK: &str = env!("CARGO_BIN_EXE_mock_solver");

/// Timed runs per scenario; the median lands in the JSON.
const RUNS: usize = 3;

fn plan() -> CampaignConfig {
    CampaignConfig {
        virtual_hours: 2,
        time_scale: 50_000,
        max_cases: 500,
        ..CampaignConfig::default()
    }
}

fn serial(config: &CampaignConfig) -> CampaignResult {
    let mut fuzzer = Once4AllFuzzer::with_defaults();
    o4a_exec::run_shard(&mut fuzzer, config, 0, None)
}

/// [`serial`] with tracing and metrics recording armed, the way a
/// campaign under the scope plane runs. The per-run ring drain is part
/// of the measured loop — a traced worker drains on every heartbeat.
fn serial_traced(config: &CampaignConfig) -> CampaignResult {
    let result = serial(config);
    let _ = o4a_obs::trace::drain_events();
    result
}

fn overlapped(config: &CampaignConfig, k: usize) -> CampaignResult {
    let mut fuzzer = Once4AllFuzzer::with_defaults();
    run_shard_overlapped(&mut fuzzer, config, 0, None, k)
}

fn piped(config: &CampaignConfig, k: usize, mode: SolverMode) -> CampaignResult {
    let backend = PipeBackend::new(format!("{MOCK} --seed 11 --lane {{lane}}")).with_mode(mode);
    let mut fuzzer = Once4AllFuzzer::with_defaults();
    run_shard_piped(&mut fuzzer, config, 0, None, k, &backend)
}

/// Wraps the standard fuzzer into a duplicate-heavy stream: the first
/// `period` generated cases repeat for the rest of the campaign — the
/// shape of a reduction/triage workload, where the same scripts re-solve
/// over and over.
struct CyclingFuzzer {
    inner: Once4AllFuzzer,
    period: usize,
    seen: Vec<o4a_core::TestCase>,
    next: usize,
}

impl CyclingFuzzer {
    fn new(period: usize) -> CyclingFuzzer {
        CyclingFuzzer {
            inner: Once4AllFuzzer::with_defaults(),
            period,
            seen: Vec::new(),
            next: 0,
        }
    }
}

impl o4a_core::Fuzzer for CyclingFuzzer {
    fn name(&self) -> String {
        format!("{}-dup{}", self.inner.name(), self.period)
    }

    fn setup(&mut self, rng: &mut rand::rngs::StdRng) -> u64 {
        self.inner.setup(rng)
    }

    fn next_case(&mut self, rng: &mut rand::rngs::StdRng) -> o4a_core::TestCase {
        if self.seen.len() < self.period {
            let case = self.inner.next_case(rng);
            self.seen.push(case.clone());
            return case;
        }
        let case = self.seen[self.next % self.period].clone();
        self.next += 1;
        case
    }
}

/// The duplicate-heavy pipe scenario: session transport at K = 8, a mock
/// that charges real wall-clock per query, cache on or off. The cache
/// dir persists across the timed runs, so the cached median measures the
/// steady warm state a long campaign converges to.
fn piped_duplicates(
    config: &CampaignConfig,
    cache_dir: Option<&std::path::Path>,
) -> CampaignResult {
    let mut backend = PipeBackend::new(format!("{MOCK} --seed 11 --lane {{lane}} --latency-ms 20"))
        .with_mode(SolverMode::Session);
    if let Some(dir) = cache_dir {
        backend = backend.with_cache_dir(dir);
    }
    let mut fuzzer = CyclingFuzzer::new(24);
    run_shard_piped(&mut fuzzer, config, 0, None, 8, &backend)
}

/// Iterations per timed run of each `term_*` micro scenario (the substrate
/// inner loop measured in isolation; values land in the same `scenarios`
/// object as ops/sec, gated by `bench_diff` like the campaign rates).
const MICRO_ITERS: usize = 5_000;

/// Median ops/sec over [`RUNS`] timed loops of `op`, `MICRO_ITERS` each.
fn micro_rate(mut op: impl FnMut()) -> f64 {
    let mut rates = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        let start = Instant::now();
        for _ in 0..MICRO_ITERS {
            op();
        }
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        rates.push(MICRO_ITERS as f64 / secs);
    }
    rates.sort_by(|a, b| a.total_cmp(b));
    rates[RUNS / 2]
}

/// The fixed seed script the micro scenarios mutate/print/eval — a
/// quantified multi-theory formula shaped like the committed seed corpus.
const MICRO_SEED: &str = "(declare-fun T () Int)(declare-const b Bool)\
     (declare-const s (Seq Int))\
     (assert (or (= T 0) (and b (< T 10))))\
     (assert (exists ((f Int)) (and (> f T) (distinct (seq.len s) f))))\
     (check-sat)";

/// One full per-case substrate pass: re-intern the seed, skeletonize,
/// parse + adapt two fills, synthesize — everything the fuzzer does per
/// case except solver execution and printing.
fn micro_term_fill() -> f64 {
    let seed = o4a_smtlib::parse_script(MICRO_SEED).expect("micro seed parses");
    let raws = [
        RawTerm {
            decls: vec!["(declare-const i0 Int)".into()],
            term: "(= (mod i0 3) 0)".into(),
        },
        RawTerm {
            decls: vec!["(declare-const str0 String)".into()],
            term: "(= str0 \"ab\")".into(),
        },
    ];
    let mut arena = TermArena::new();
    let mut rng = StdRng::seed_from_u64(11);
    micro_rate(move || {
        arena.reset();
        let aseed = ArenaScript::from_script(&seed, &mut arena);
        let sk = skeletonize_arena(&aseed, &mut arena, SkeletonConfig::default(), &mut rng);
        let fills: Vec<_> = raws
            .iter()
            .map(|r| {
                let f = parse_fill_into(r, &mut arena).expect("micro fill parses");
                adapt_fill_arena(&f, &sk, &mut arena, &mut rng)
            })
            .collect();
        let out = synthesize_arena(&sk, &fills, &mut arena, &mut rng);
        assert!(!out.commands.is_empty());
    })
}

/// Zero-copy printing of an interned script into a reused buffer.
fn micro_term_print() -> f64 {
    let seed = o4a_smtlib::parse_script(MICRO_SEED).expect("micro seed parses");
    let mut arena = TermArena::new();
    let script = ArenaScript::from_script(&seed, &mut arena);
    let mut buf = String::new();
    micro_rate(move || {
        buf.clear();
        script.print_into(&arena, &mut buf);
        assert!(buf.ends_with("(check-sat)"));
    })
}

/// Arena evaluation of the seed's assertions under a concrete model.
fn micro_term_eval() -> f64 {
    let seed = o4a_smtlib::parse_script(MICRO_SEED).expect("micro seed parses");
    let mut arena = TermArena::new();
    let script = ArenaScript::from_script(&seed, &mut arena);
    let terms: Vec<_> = script
        .commands
        .iter()
        .filter_map(|c| match c {
            o4a_smtlib::ArenaCommand::Assert(t) => Some(*t),
            _ => None,
        })
        .collect();
    let mut model = Model::new();
    model.set_const(Symbol::new("T"), Value::Int(3));
    model.set_const(Symbol::new("b"), Value::Bool(true));
    model.set_const(
        Symbol::new("s"),
        Value::Seq(o4a_smtlib::Sort::Int, vec![Value::Int(1), Value::Int(2)]),
    );
    let cfg = DomainConfig::default();
    micro_rate(move || {
        let ev = Evaluator::new(&model, no_defs(), &cfg, 100_000);
        for &t in &terms {
            let _ = ev.eval_arena(t, &arena);
        }
    })
}

/// Median cases/sec over [`RUNS`] timed executions of `run`.
fn cases_per_sec(
    config: &CampaignConfig,
    mut run: impl FnMut(&CampaignConfig) -> CampaignResult,
) -> f64 {
    let mut rates = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        let start = Instant::now();
        let result = run(config);
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        rates.push(result.stats.cases as f64 / secs);
    }
    rates.sort_by(|a, b| a.total_cmp(b));
    rates[RUNS / 2]
}

fn bench(c: &mut Criterion) {
    let config = plan();

    let scenarios: Vec<(&str, f64)> = vec![
        ("serial", cases_per_sec(&config, serial)),
        ("serial_traced", {
            o4a_obs::install(o4a_obs::ObsConfig {
                trace: true,
                metrics: true,
                dir: None,
                ..o4a_obs::ObsConfig::default()
            });
            let rate = cases_per_sec(&config, serial_traced);
            o4a_obs::uninstall();
            rate
        }),
        (
            "overlapped_k1",
            cases_per_sec(&config, |cfg| overlapped(cfg, 1)),
        ),
        (
            "overlapped_k8",
            cases_per_sec(&config, |cfg| overlapped(cfg, 8)),
        ),
        (
            "pipe_spawn_k8",
            cases_per_sec(&config, |cfg| piped(cfg, 8, SolverMode::Spawn)),
        ),
        (
            "pipe_session_k8",
            cases_per_sec(&config, |cfg| piped(cfg, 8, SolverMode::Session)),
        ),
        (
            "pipe_dup_uncached",
            cases_per_sec(&config, |cfg| piped_duplicates(cfg, None)),
        ),
        ("pipe_dup_cached", {
            let dir = std::env::temp_dir().join(format!("o4a-bench-cache-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).expect("create bench cache dir");
            let rate = cases_per_sec(&config, |cfg| piped_duplicates(cfg, Some(&dir)));
            let _ = std::fs::remove_dir_all(&dir);
            rate
        }),
        ("term_fill", micro_term_fill()),
        ("term_print", micro_term_print()),
        ("term_eval", micro_term_eval()),
    ];

    let report = obj(vec![
        ("bench", Json::Str("campaign_throughput".into())),
        ("unit", Json::Str("cases_per_sec".into())),
        ("cases", Json::U64(config.max_cases as u64)),
        ("runs_per_scenario", Json::U64(RUNS as u64)),
        (
            "scenarios",
            Json::Obj(
                scenarios
                    .iter()
                    .map(|(name, rate)| (name.to_string(), Json::F64((rate * 10.0).round() / 10.0)))
                    .collect(),
            ),
        ),
    ]);
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_throughput.json");
    let line = format!("{}\n", report.to_line());
    if let Err(e) = std::fs::write(&path, &line) {
        eprintln!("campaign_throughput: cannot write {}: {e}", path.display());
    }
    print!("{line}");

    // The criterion group re-measures the cheapest scenario pair so the
    // standard statistical machinery (outliers, regressions) also sees
    // the engine; the JSON above is the committed artifact.
    let mut g = c.benchmark_group("campaign_throughput");
    g.sample_size(10);
    let small = CampaignConfig {
        max_cases: 120,
        ..plan()
    };
    g.bench_function("serial_120_cases", |b| {
        b.iter(|| serial(&small).stats.cases)
    });
    g.bench_function("overlapped_k8_120_cases", |b| {
        b.iter(|| overlapped(&small, 8).stats.cases)
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
