//! Regenerates **Table 1** (status of bugs found in the solvers) at bench
//! scale and measures the trunk-campaign throughput that produces it.

use criterion::{criterion_group, criterion_main, Criterion};
use o4a_bench::{render_table1, table1, trunk_campaign, Scale};

const BENCH_SCALE: Scale = Scale {
    time_scale: 2_000,
    max_cases: 3_000,
    hours: 24,
};

fn bench(c: &mut Criterion) {
    // Print the regenerated table once (tee'd into bench_output.txt).
    let result = trunk_campaign(BENCH_SCALE);
    println!("{}", render_table1(&table1(&result)));

    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("trunk_campaign_200_cases", |b| {
        b.iter(|| {
            trunk_campaign(Scale {
                time_scale: 1_000_000,
                max_cases: 200,
                hours: 24,
            })
            .stats
            .cases
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
