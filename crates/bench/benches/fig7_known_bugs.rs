//! Regenerates **Figure 7** (unique known bugs found on previous solver
//! versions) at bench scale and measures correcting-commit bisection.

use criterion::{criterion_group, criterion_main, Criterion};
use o4a_bench::{exec_knob, known_bug_comparison_parallel, render_known_bugs, Roster, Scale};
use o4a_core::correcting_commit;
use o4a_solvers::{EngineConfig, SolverId, TRUNK_COMMIT};

const BENCH_SCALE: Scale = Scale {
    time_scale: 3_000,
    max_cases: 1_500,
    hours: 24,
};

fn bench(c: &mut Criterion) {
    let sets = known_bug_comparison_parallel(&Roster::paper_fuzzers(), BENCH_SCALE, &exec_knob());
    println!(
        "{}",
        render_known_bugs(
            "Figure 7: unique known bugs found on previous solver versions",
            &sets
        )
    );

    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    // A known-triggering case for hz-01 discovered by sweep.
    let case = (0..200)
        .map(|n| format!("(declare-const x Int)(assert (= (+ x {n}) (mod x 3)))(check-sat)"))
        .find(|text| {
            let script = o4a_smtlib::parse_script(text).unwrap();
            let f = o4a_solvers::FormulaFeatures::of(&script);
            o4a_solvers::bugs::registry()
                .iter()
                .find(|b| b.id == "hz-01")
                .unwrap()
                .trigger
                .fires(&f)
        });
    if let Some(case) = case {
        g.bench_function("bisect_one_bug", |b| {
            b.iter(|| {
                correcting_commit(
                    SolverId::OxiZ,
                    &case,
                    70,
                    TRUNK_COMMIT,
                    &EngineConfig::default(),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
