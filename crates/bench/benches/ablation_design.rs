//! Ablation benches for the design choices DESIGN.md calls out:
//! skeleton replacement probability, fills per skeleton, and mutation depth
//! per seed — measuring their effect on bug-triggering yield at a fixed
//! case budget.

use criterion::{criterion_group, criterion_main, Criterion};
use o4a_core::{run_campaign, CampaignConfig, Once4AllConfig, Once4AllFuzzer, SkeletonConfig};
use o4a_solvers::{SolverId, TRUNK_COMMIT};

fn yield_with(config: Once4AllConfig, cases: usize) -> u64 {
    let mut fuzzer = Once4AllFuzzer::new(config);
    let campaign = CampaignConfig {
        virtual_hours: 24,
        time_scale: 1_000_000,
        solvers: vec![
            (SolverId::OxiZ, TRUNK_COMMIT),
            (SolverId::Cervo, TRUNK_COMMIT),
        ],
        engine: Default::default(),
        seed: 0xab1a,
        max_cases: cases,
    };
    run_campaign(&mut fuzzer, &campaign).stats.bug_triggering
}

fn bench(c: &mut Criterion) {
    println!("\n=== Ablation: design-choice sweep (bug-triggering cases per 400 cases) ===");
    for (label, config) in [
        (
            "replace_p=0.3",
            Once4AllConfig {
                skeleton: SkeletonConfig {
                    replace_probability: 0.3,
                    max_placeholders: 4,
                },
                ..Once4AllConfig::default()
            },
        ),
        ("replace_p=0.6 (paper)", Once4AllConfig::default()),
        (
            "replace_p=0.9",
            Once4AllConfig {
                skeleton: SkeletonConfig {
                    replace_probability: 0.9,
                    max_placeholders: 4,
                },
                ..Once4AllConfig::default()
            },
        ),
        (
            "max_fills=1",
            Once4AllConfig {
                max_fills: 1,
                ..Once4AllConfig::default()
            },
        ),
        (
            "max_fills=4",
            Once4AllConfig {
                max_fills: 4,
                ..Once4AllConfig::default()
            },
        ),
        (
            "mutations_per_seed=1",
            Once4AllConfig {
                mutations_per_seed: 1,
                ..Once4AllConfig::default()
            },
        ),
        ("mutations_per_seed=10 (paper)", Once4AllConfig::default()),
    ] {
        let y = yield_with(config, 400);
        println!("{label:<28} bug-triggering: {y}");
    }

    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    g.bench_function("campaign_100_cases_default", |b| {
        b.iter(|| yield_with(Once4AllConfig::default(), 100))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
