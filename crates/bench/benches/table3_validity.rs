//! Regenerates the **§5.1 validity study** (Table 3 here): generator
//! validity before/after self-correction, per theory, and measures the
//! construction cost of Algorithm 1.

use criterion::{criterion_group, criterion_main, Criterion};
use o4a_bench::{render_table3, table3_validity};
use o4a_llm::{
    construct_generators, ConstructOptions, LlmProfile, SimulatedLlm, TypecheckValidator, Validator,
};

fn bench(c: &mut Criterion) {
    println!("{}", render_table3(&table3_validity(LlmProfile::gpt4())));

    let mut g = c.benchmark_group("table3");
    g.sample_size(10);
    g.bench_function("algorithm1_one_theory", |b| {
        b.iter(|| {
            let mut llm = SimulatedLlm::new(LlmProfile::gpt4());
            let docs = o4a_llm::corpus::corpus();
            let mut vs: Vec<Box<dyn Validator>> = vec![Box::new(TypecheckValidator)];
            construct_generators(&mut llm, &docs[..1], &mut vs, ConstructOptions::default())
                .generators
                .len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
