//! `dist_top`: a terminal fleet viewer for the o4a-scope observatory.
//!
//! Polls a coordinator's `GET /status` endpoint and renders each
//! snapshot through the same [`o4a_bench::render_dist_stats`] the bench
//! summaries use, plus the live rows the scope plane adds: per-worker
//! EWMA throughput, in-flight lease progress, and straggler warnings.
//! With `--events` it tails the SSE `GET /events` stream instead,
//! printing one line per campaign milestone.
//!
//! ```text
//! dist_top --connect HOST:PORT [--interval-ms MS] [--max-refreshes N] [--events]
//! ```
//!
//! Output is plain append-only text (no cursor control), so it works
//! under CI logs and examples as well as a terminal. `--max-refreshes`
//! bounds the run (0 = until the coordinator goes away).

use o4a_dist::ScopeStatus;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn usage(msg: &str) -> ! {
    eprintln!("dist_top: {msg}");
    eprintln!(
        "usage: dist_top --connect HOST:PORT [--interval-ms MS] [--max-refreshes N] [--events]"
    );
    std::process::exit(2);
}

/// One blocking HTTP/1.1 GET: returns the response body on a 200.
fn http_get(addr: &str, path: &str) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .map_err(|e| format!("send request: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read response: {e}"))?;
    let text = String::from_utf8_lossy(&raw);
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("malformed response: {text}"))?;
    if !head.starts_with("HTTP/1.1 200") && !head.starts_with("HTTP/1.0 200") {
        return Err(format!("{path}: {}", head.lines().next().unwrap_or("?")));
    }
    Ok(body.to_string())
}

/// Tails the SSE stream, printing one `event data` line per milestone.
/// Returns when the coordinator closes the stream (campaign over).
fn tail_events(addr: &str) -> Result<(), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .write_all(format!("GET /events HTTP/1.1\r\nHost: {addr}\r\n\r\n").as_bytes())
        .map_err(|e| format!("send request: {e}"))?;
    let reader = BufReader::new(stream);
    let mut event = String::new();
    for line in reader.lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => break, // coordinator gone — campaign over
        };
        if let Some(name) = line.strip_prefix("event: ") {
            event = name.to_string();
        } else if let Some(data) = line.strip_prefix("data: ") {
            println!("{event:<12} {data}");
        }
    }
    Ok(())
}

fn main() {
    let mut connect: Option<String> = None;
    let mut interval_ms: u64 = 1000;
    let mut max_refreshes: u64 = 0;
    let mut events = false;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--connect" => connect = Some(value()),
            "--interval-ms" => {
                interval_ms = value()
                    .parse()
                    .unwrap_or_else(|_| usage("--interval-ms needs an integer"));
            }
            "--max-refreshes" => {
                max_refreshes = value()
                    .parse()
                    .unwrap_or_else(|_| usage("--max-refreshes needs an integer"));
            }
            "--events" => events = true,
            other => usage(&format!("unknown flag '{other}'")),
        }
    }
    let Some(addr) = connect else {
        usage("--connect is required");
    };

    if events {
        if let Err(e) = tail_events(&addr) {
            eprintln!("dist_top: {e}");
            std::process::exit(1);
        }
        return;
    }

    let mut refreshes: u64 = 0;
    let mut ever_connected = false;
    loop {
        match http_get(&addr, "/status") {
            Ok(body) => {
                ever_connected = true;
                match ScopeStatus::from_json_text(&body) {
                    Ok(status) => {
                        println!(
                            "o4a-scope @ {addr}  t+{:.1}s  {}/{} shards done ({} queued)",
                            status.elapsed_ms as f64 / 1000.0,
                            status.shards_done,
                            status.shards,
                            status.shards_pending,
                        );
                        print!("{}", o4a_bench::render_dist_stats(&status.to_dist_stats()));
                        for worker in &status.fleet {
                            println!(
                                "live w{:<5} shard {:<5} {:>7} cases in flight  \
                                 {:>8.1}/s (ewma {:.1})  heard {:.1}s ago{}",
                                worker.worker,
                                worker.lease.map_or("-".to_string(), |s| s.to_string()),
                                worker.lease_cases,
                                worker.cases_per_sec,
                                worker.ewma_cases_per_sec,
                                worker.last_heard_ms as f64 / 1000.0,
                                if worker.straggler {
                                    "  [STRAGGLER]"
                                } else {
                                    ""
                                },
                            );
                        }
                        for warning in &status.warnings {
                            println!("warning: {warning}");
                        }
                        println!();
                    }
                    Err(e) => eprintln!("dist_top: bad /status body: {e}"),
                }
            }
            Err(e) => {
                if ever_connected {
                    // The coordinator served us before and is gone now:
                    // campaign over, a clean exit for watch loops.
                    println!("dist_top: coordinator gone ({e}) — campaign over");
                    return;
                }
                eprintln!("dist_top: {e}");
            }
        }
        refreshes += 1;
        if max_refreshes > 0 && refreshes >= max_refreshes {
            return;
        }
        std::thread::sleep(Duration::from_millis(interval_ms));
    }
}
