//! The reference elastic-fleet coordinator binary: `o4a_dist`'s
//! coordinator behind a CLI, listening on TCP for workers that join by
//! connecting (`dist_worker --connect`) and journaling lease state to a
//! checkpoint so a killed coordinator resumes.
//!
//! ```text
//! dist_coordinator (--plan JSON | --quick-plan SHARDS) --listen HOST:PORT \
//!     --journal-dir DIR \
//!     [--checkpoint PATH] [--heartbeat-ms MS] [--accept-timeout-ms MS] \
//!     [--workers N] [--static-split] [--exit-after-done K] [--scope HOST:PORT]
//! ```
//!
//! `--plan` is the canonical [`o4a_dist::CampaignPlan`] JSON (the same
//! encoding the `lease` frames carry), so the driving test and every
//! coordinator incarnation agree bit-for-bit on the campaign.
//! `--exit-after-done K` is the resumable-coordinator gauntlet's fault
//! injection: die abruptly (exit code 9) after recording K shard
//! completions. On success the final line on stdout is a parseable
//! `o4a-dist: done ...` stats record; the human-readable fleet summary
//! goes to stderr.

use o4a_dist::{run_distributed, CampaignPlan, DistConfig};
use std::time::Duration;

fn usage(msg: &str) -> ! {
    eprintln!("dist_coordinator: {msg}");
    eprintln!(
        "usage: dist_coordinator (--plan JSON | --quick-plan SHARDS) --listen HOST:PORT \
         --journal-dir DIR \
         [--checkpoint PATH] [--heartbeat-ms MS] [--accept-timeout-ms MS] \
         [--workers N] [--static-split] [--exit-after-done K] [--scope HOST:PORT]"
    );
    std::process::exit(2);
}

fn main() {
    let mut plan: Option<CampaignPlan> = None;
    let mut listen: Option<String> = None;
    let mut journal_dir: Option<String> = None;
    let mut checkpoint: Option<String> = None;
    let mut heartbeat_ms: u64 = 30_000;
    let mut accept_timeout_ms: u64 = 60_000;
    let mut workers: u32 = 2;
    let mut static_split = false;
    let mut exit_after_done: Option<u64> = None;
    let mut scope: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
        };
        let int = |flag: &str, v: String| -> u64 {
            v.parse()
                .unwrap_or_else(|_| usage(&format!("{flag} needs an integer")))
        };
        match flag.as_str() {
            "--plan" => {
                let json = o4a_exec::json::parse(&value())
                    .unwrap_or_else(|e| usage(&format!("--plan is not JSON: {e}")));
                plan = Some(
                    CampaignPlan::from_json(&json)
                        .unwrap_or_else(|e| usage(&format!("--plan is not a campaign plan: {e}"))),
                );
            }
            "--quick-plan" => {
                // The gauntlets' smoke-scale plan, built in-process so
                // shell drivers (the CI scope leg) need no JSON at all.
                plan = Some(CampaignPlan {
                    config: o4a_core::CampaignConfig {
                        virtual_hours: 2,
                        time_scale: 50_000,
                        max_cases: 120,
                        ..o4a_core::CampaignConfig::default()
                    },
                    shards: int("--quick-plan", value()) as u32,
                });
            }
            "--listen" => listen = Some(value()),
            "--journal-dir" => journal_dir = Some(value()),
            "--checkpoint" => checkpoint = Some(value()),
            "--heartbeat-ms" => heartbeat_ms = int("--heartbeat-ms", value()),
            "--accept-timeout-ms" => accept_timeout_ms = int("--accept-timeout-ms", value()),
            "--workers" => workers = int("--workers", value()) as u32,
            "--static-split" => static_split = true,
            "--exit-after-done" => exit_after_done = Some(int("--exit-after-done", value())),
            "--scope" => scope = Some(value()),
            other => usage(&format!("unknown flag '{other}'")),
        }
    }
    let Some(plan) = plan else {
        usage("--plan or --quick-plan is required");
    };
    let Some(listen) = listen else {
        usage("--listen is required");
    };
    let Some(journal_dir) = journal_dir else {
        usage("--journal-dir is required");
    };

    let mut dist = DistConfig::new(Vec::new(), journal_dir)
        .with_tcp(listen)
        .with_workers(workers)
        .with_static_split(static_split)
        .with_heartbeat_timeout(Duration::from_millis(heartbeat_ms))
        .with_accept_timeout(Duration::from_millis(accept_timeout_ms));
    if let Some(path) = checkpoint {
        dist = dist.with_checkpoint(path);
    }
    if let Some(k) = exit_after_done {
        dist = dist.with_exit_after_completions(k);
    }
    if let Some(addr) = scope {
        dist = dist.with_scope(addr);
    }

    match run_distributed(&plan.config, plan.shards, &dist) {
        Ok(report) => {
            eprintln!("{}", o4a_bench::render_dist_stats(&report.stats));
            // One machine-parseable line for the elastic-fleet gauntlet.
            println!(
                "o4a-dist: done resumed={} joined={} readopted={} left={} \
                 shards_readopted={} reissued={} granted={} cases={} findings={}",
                report.stats.resumed,
                report.stats.workers_joined,
                report.stats.workers_readopted,
                report.stats.workers_left,
                report.stats.shards_readopted,
                report.stats.leases_reissued,
                report.stats.leases_granted,
                report.result.stats.cases,
                report.result.findings.len(),
            );
        }
        Err(e) => {
            eprintln!("dist_coordinator: {e}");
            std::process::exit(1);
        }
    }
}
