//! Full-scale experiment driver: regenerates every table and figure.
//!
//! Usage:
//! ```text
//! experiments [table1|table2|table3|fig5|fig6|fig7|fig8|fig9|stats|all] [--quick]
//! ```

use o4a_bench::*;
use o4a_llm::LlmProfile;
use o4a_solvers::SolverId;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { QUICK } else { FULL };
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());

    let knob = exec_knob();
    let run_t12 = matches!(
        what.as_str(),
        "table1" | "table2" | "fig5" | "stats" | "all"
    );
    let mut trunk = None;
    if run_t12 {
        eprintln!("[experiments] running trunk bug-hunting campaign ({scale:?})...");
        trunk = Some(trunk_campaign(scale));
    }

    match what.as_str() {
        "table1" => {
            let r = trunk.as_ref().expect("campaign ran");
            print!("{}", render_table1(&table1(r)));
        }
        "table2" => {
            let r = trunk.as_ref().expect("campaign ran");
            print!("{}", render_table2(&table2(r)));
        }
        "table3" => {
            print!("{}", render_table3(&table3_validity(LlmProfile::gpt4())));
        }
        "fig5" => {
            let r = trunk.as_ref().expect("campaign ran");
            print!("{}", render_fig5(&fig5(r)));
        }
        "fig6" => {
            eprintln!("[experiments] running 9 coverage campaigns...");
            let results = coverage_comparison_parallel(
                &Roster::paper_fuzzers(),
                scale,
                trunk_solvers(),
                &knob,
            );
            for (solver, lines, title) in [
                (SolverId::OxiZ, true, "Figure 6a: line coverage on Z3*"),
                (SolverId::Cervo, true, "Figure 6b: line coverage on cvc5*"),
                (SolverId::OxiZ, false, "Figure 6c: function coverage on Z3*"),
                (
                    SolverId::Cervo,
                    false,
                    "Figure 6d: function coverage on cvc5*",
                ),
            ] {
                print!("{}", render_coverage_panel(title, &results, solver, lines));
            }
            let others: Vec<&o4a_core::CampaignResult> = results[1..].iter().collect();
            print!("{}", render_exclusive(&results[0], &others));
        }
        "fig7" => {
            eprintln!("[experiments] running 9 known-bug campaigns + bisection...");
            let sets = known_bug_comparison_parallel(&Roster::paper_fuzzers(), scale, &knob);
            print!(
                "{}",
                render_known_bugs(
                    "Figure 7: unique known bugs found on previous solver versions",
                    &sets
                )
            );
        }
        "fig8" => {
            eprintln!("[experiments] running 4 variant coverage campaigns...");
            let results = coverage_comparison_parallel(
                &Roster::paper_variants(),
                scale,
                trunk_solvers(),
                &knob,
            );
            for (solver, lines, title) in [
                (
                    SolverId::OxiZ,
                    true,
                    "Figure 8a: line coverage on Z3* (variants)",
                ),
                (
                    SolverId::Cervo,
                    true,
                    "Figure 8b: line coverage on cvc5* (variants)",
                ),
                (
                    SolverId::OxiZ,
                    false,
                    "Figure 8c: function coverage on Z3* (variants)",
                ),
                (
                    SolverId::Cervo,
                    false,
                    "Figure 8d: function coverage on cvc5* (variants)",
                ),
            ] {
                print!("{}", render_coverage_panel(title, &results, solver, lines));
            }
        }
        "fig9" => {
            eprintln!("[experiments] running 4 variant known-bug campaigns + bisection...");
            let sets = known_bug_comparison_parallel(&Roster::paper_variants(), scale, &knob);
            print!(
                "{}",
                render_known_bugs("Figure 9: unique known bugs found by variants", &sets)
            );
        }
        "stats" => {
            let r = trunk.as_ref().expect("campaign ran");
            print!("{}", render_stats(r));
        }
        "all" => {
            let r = trunk.as_ref().expect("campaign ran");
            print!("{}", render_table1(&table1(r)));
            print!("{}", render_table2(&table2(r)));
            print!("{}", render_fig5(&fig5(r)));
            print!("{}", render_stats(r));
            print!("{}", render_table3(&table3_validity(LlmProfile::gpt4())));
            eprintln!("[experiments] running 9 coverage campaigns (fig6)...");
            let results = coverage_comparison_parallel(
                &Roster::paper_fuzzers(),
                scale,
                trunk_solvers(),
                &knob,
            );
            for (solver, lines, title) in [
                (SolverId::OxiZ, true, "Figure 6a: line coverage on Z3*"),
                (SolverId::Cervo, true, "Figure 6b: line coverage on cvc5*"),
                (SolverId::OxiZ, false, "Figure 6c: function coverage on Z3*"),
                (
                    SolverId::Cervo,
                    false,
                    "Figure 6d: function coverage on cvc5*",
                ),
            ] {
                print!("{}", render_coverage_panel(title, &results, solver, lines));
            }
            let others: Vec<&o4a_core::CampaignResult> = results[1..].iter().collect();
            print!("{}", render_exclusive(&results[0], &others));
            eprintln!("[experiments] running known-bug comparisons (fig7)...");
            let sets = known_bug_comparison_parallel(&Roster::paper_fuzzers(), scale, &knob);
            print!(
                "{}",
                render_known_bugs(
                    "Figure 7: unique known bugs found on previous solver versions",
                    &sets
                )
            );
            eprintln!("[experiments] running variant campaigns (fig8/fig9)...");
            let vresults = coverage_comparison_parallel(
                &Roster::paper_variants(),
                scale,
                trunk_solvers(),
                &knob,
            );
            for (solver, lines, title) in [
                (
                    SolverId::OxiZ,
                    true,
                    "Figure 8a: line coverage on Z3* (variants)",
                ),
                (
                    SolverId::Cervo,
                    true,
                    "Figure 8b: line coverage on cvc5* (variants)",
                ),
            ] {
                print!("{}", render_coverage_panel(title, &vresults, solver, lines));
            }
            let vsets = known_bug_comparison_parallel(&Roster::paper_variants(), scale, &knob);
            print!(
                "{}",
                render_known_bugs("Figure 9: unique known bugs found by variants", &vsets)
            );
        }
        other => {
            eprintln!("unknown experiment '{other}'");
            std::process::exit(2);
        }
    }
}
