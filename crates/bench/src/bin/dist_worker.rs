//! The reference distributed-campaign worker binary: the lease-serving
//! loop from `o4a_dist::worker` wrapped around the paper's Once4All
//! fuzzer, so every worker of a fleet fuzzes with the identical
//! configuration and a shard result stays a pure function of the plan.
//!
//! ```text
//! dist_worker --journal PATH --worker N \
//!     [--crash-shard S --crash-token PATH [--crash-after CASES]]
//! ```
//!
//! The crash flags are the recovery gauntlet's fault injection: die
//! abruptly mid-way through shard `S`, once per campaign (whoever wins
//! the atomic creation of the token file crashes; every later holder of
//! the lease runs it to completion). See `crates/dist/README.md` for
//! the control protocol and the worker CLI contract.

use o4a_core::{Fuzzer, Once4AllFuzzer};
use o4a_dist::{run_worker, CrashInjection, WorkerConfig};
use std::path::PathBuf;

fn usage(msg: &str) -> ! {
    eprintln!("dist_worker: {msg}");
    eprintln!(
        "usage: dist_worker --journal PATH --worker N \
         [--crash-shard S --crash-token PATH [--crash-after CASES]]"
    );
    std::process::exit(2);
}

fn main() {
    let mut journal: Option<PathBuf> = None;
    let mut worker_id: u32 = 0;
    let mut crash_shard: Option<u32> = None;
    let mut crash_token: Option<PathBuf> = None;
    let mut crash_after: u64 = 5;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--journal" => journal = Some(PathBuf::from(value())),
            "--worker" => {
                worker_id = value()
                    .parse()
                    .unwrap_or_else(|_| usage("--worker needs an integer"))
            }
            "--crash-shard" => {
                crash_shard = Some(
                    value()
                        .parse()
                        .unwrap_or_else(|_| usage("--crash-shard needs an integer")),
                )
            }
            "--crash-token" => crash_token = Some(PathBuf::from(value())),
            "--crash-after" => {
                crash_after = value()
                    .parse()
                    .unwrap_or_else(|_| usage("--crash-after needs an integer"))
            }
            other => usage(&format!("unknown flag '{other}'")),
        }
    }
    let Some(journal) = journal else {
        usage("--journal is required");
    };
    let crash = match (crash_shard, crash_token) {
        (Some(shard), Some(token)) => Some(CrashInjection {
            shard,
            after_cases: crash_after,
            token,
        }),
        (None, None) => None,
        _ => usage("--crash-shard and --crash-token go together"),
    };

    let mut config = WorkerConfig::new(journal, worker_id);
    config.crash = crash;
    let factory = |_shard: u32| Box::new(Once4AllFuzzer::with_defaults()) as Box<dyn Fuzzer>;
    if let Err(e) = run_worker(
        factory,
        &config,
        std::io::stdin().lock(),
        std::io::stdout().lock(),
    ) {
        eprintln!("dist_worker: {e}");
        std::process::exit(1);
    }
}
