//! The reference distributed-campaign worker binary: the lease-serving
//! loop from `o4a_dist::worker` wrapped around the paper's Once4All
//! fuzzer, so every worker of a fleet fuzzes with the identical
//! configuration and a shard result stays a pure function of the plan.
//!
//! ```text
//! dist_worker --journal PATH --worker N \
//!     [--connect HOST:PORT [--reconnect-ms MS]] \
//!     [--slow-ms MS] [--leave-after-leases K] \
//!     [--crash-shard S --crash-token PATH [--crash-after CASES]]
//! ```
//!
//! Without `--connect` the worker speaks the pipe transport on
//! stdin/stdout (the coordinator spawned it); with `--connect` it joins
//! an elastic TCP fleet, retrying the dial for `--reconnect-ms` (default
//! 10000) so it can outlive a coordinator restart. The crash flags are
//! the recovery gauntlet's fault injection: die abruptly mid-way through
//! shard `S`, once per campaign (whoever wins the atomic creation of the
//! token file crashes; every later holder of the lease runs it to
//! completion). `--slow-ms` drags wall-clock per case (the heterogeneous
//! fleet's slow machine) and `--leave-after-leases` makes the worker say
//! goodbye mid-campaign (elastic scale-in). See `crates/dist/README.md`
//! for the control protocol and the worker CLI contract.

use o4a_core::{Fuzzer, Once4AllFuzzer};
use o4a_dist::{run_worker, run_worker_tcp, CrashInjection, WorkerConfig};
use std::path::PathBuf;
use std::time::Duration;

fn usage(msg: &str) -> ! {
    eprintln!("dist_worker: {msg}");
    eprintln!(
        "usage: dist_worker --journal PATH --worker N \
         [--connect HOST:PORT [--reconnect-ms MS]] \
         [--slow-ms MS] [--leave-after-leases K] \
         [--crash-shard S --crash-token PATH [--crash-after CASES]]"
    );
    std::process::exit(2);
}

fn main() {
    let mut journal: Option<PathBuf> = None;
    let mut worker_id: u32 = 0;
    let mut connect: Option<String> = None;
    let mut reconnect_ms: u64 = 10_000;
    let mut slow_ms: u64 = 0;
    let mut leave_after: Option<u32> = None;
    let mut crash_shard: Option<u32> = None;
    let mut crash_token: Option<PathBuf> = None;
    let mut crash_after: u64 = 5;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
        };
        let int = |flag: &str, v: String| -> u64 {
            v.parse()
                .unwrap_or_else(|_| usage(&format!("{flag} needs an integer")))
        };
        match flag.as_str() {
            "--journal" => journal = Some(PathBuf::from(value())),
            "--worker" => worker_id = int("--worker", value()) as u32,
            "--connect" => connect = Some(value()),
            "--reconnect-ms" => reconnect_ms = int("--reconnect-ms", value()),
            "--slow-ms" => slow_ms = int("--slow-ms", value()),
            "--leave-after-leases" => {
                leave_after = Some(int("--leave-after-leases", value()) as u32)
            }
            "--crash-shard" => crash_shard = Some(int("--crash-shard", value()) as u32),
            "--crash-token" => crash_token = Some(PathBuf::from(value())),
            "--crash-after" => crash_after = int("--crash-after", value()),
            other => usage(&format!("unknown flag '{other}'")),
        }
    }
    let Some(journal) = journal else {
        usage("--journal is required");
    };
    let crash = match (crash_shard, crash_token) {
        (Some(shard), Some(token)) => Some(CrashInjection {
            shard,
            after_cases: crash_after,
            token,
        }),
        (None, None) => None,
        _ => usage("--crash-shard and --crash-token go together"),
    };

    let mut config = WorkerConfig::new(journal, worker_id);
    config.crash = crash;
    config.slow_case_ms = slow_ms;
    config.leave_after_leases = leave_after;
    let factory = |_shard: u32| Box::new(Once4AllFuzzer::with_defaults()) as Box<dyn Fuzzer>;
    let served = match connect {
        Some(addr) => run_worker_tcp(factory, &config, &addr, Duration::from_millis(reconnect_ms)),
        None => run_worker(
            factory,
            &config,
            std::io::stdin().lock(),
            std::io::stdout().lock(),
        ),
    };
    if let Err(e) = served {
        eprintln!("dist_worker: {e}");
        std::process::exit(1);
    }
}
