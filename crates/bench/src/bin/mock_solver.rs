//! The deterministic mock SMT solver binary — the offline stand-in for
//! `z3 -in` behind the pipe backend (`o4a_solvers::PipeSolver`).
//!
//! All behavior lives in `o4a_solvers::pipe::mock` (seeded answers,
//! models, latency, crash/wedge injection — each a pure function of the
//! script text, which is what keeps the serial ≡ K-in-flight equivalence
//! law intact over the pipe transport); this binary is the thin
//! stdin/stdout loop around it. See `crates/solvers/README.md` for the
//! wire protocol and the flag reference.
//!
//! ```text
//! mock_solver --seed 7 --lane {lane} [--crash-mod N] [--latency-ms N]
//!             [--wedge-on STR] [--answer TOKEN]
//! ```

use o4a_solvers::pipe::mock::{config_from_args, serve, MockExit};

fn main() {
    let config = match config_from_args(std::env::args().skip(1)) {
        Ok(config) => config,
        Err(msg) => {
            eprintln!("mock_solver: {msg}");
            std::process::exit(2);
        }
    };
    match serve(&config, std::io::stdin().lock(), std::io::stdout().lock()) {
        // Crash injection: die abruptly, mid-reply, like a real solver
        // segfault would.
        Ok(MockExit::Crash) => std::process::exit(3),
        Ok(MockExit::Eof) => {}
        Err(e) => {
            // A closed pipe while replying is the driver killing us; any
            // other I/O error is still best reported as a crash.
            eprintln!("mock_solver: {e}");
            std::process::exit(3);
        }
    }
}
