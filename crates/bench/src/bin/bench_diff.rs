//! The bench-trend CI gate: diff a regenerated `BENCH_throughput.json`
//! against the committed baseline and fail on regressions.
//!
//! ```text
//! bench_diff --baseline PATH --fresh PATH [--max-regress-pct P]
//! ```
//!
//! Prints the per-scenario comparison table; exits 1 when any scenario
//! fell more than `P` percent (default 20) below its baseline or
//! disappeared from the bench, 2 on usage/parse errors. New scenarios
//! never fail the gate — commit the regenerated snapshot to teach the
//! baseline about them.

use o4a_bench::render_bench_diff;

fn usage(msg: &str) -> ! {
    eprintln!("bench_diff: {msg}");
    eprintln!("usage: bench_diff --baseline PATH --fresh PATH [--max-regress-pct P]");
    std::process::exit(2);
}

fn main() {
    let mut baseline: Option<String> = None;
    let mut fresh: Option<String> = None;
    let mut max_regress_pct: f64 = 20.0;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--baseline" => baseline = Some(value()),
            "--fresh" => fresh = Some(value()),
            "--max-regress-pct" => {
                max_regress_pct = value()
                    .parse()
                    .unwrap_or_else(|_| usage("--max-regress-pct needs a number"))
            }
            other => usage(&format!("unknown flag '{other}'")),
        }
    }
    let Some(baseline) = baseline else {
        usage("--baseline is required");
    };
    let Some(fresh) = fresh else {
        usage("--fresh is required");
    };
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| usage(&format!("cannot read {path}: {e}")))
    };
    let diff = match render_bench_diff(&read(&baseline), &read(&fresh), max_regress_pct) {
        Ok(diff) => diff,
        Err(e) => usage(&e.to_string()),
    };
    print!("{}", diff.report);
    if diff.regressions.is_empty() {
        println!("bench trend: OK");
    } else {
        for r in &diff.regressions {
            eprintln!("bench_diff: REGRESSION {r}");
        }
        std::process::exit(1);
    }
}
