//! Experiment drivers, one per table/figure of the evaluation.

use o4a_core::{
    correcting_commit, dedup, run_campaign, CampaignConfig, CampaignResult, Fuzzer, Issue,
    LifespanPoint, Once4AllConfig, Once4AllFuzzer,
};
use o4a_exec::{parallel_map, run_campaign_sharded, ExecConfig, Parallelism};
use o4a_llm::{
    construct_generators, ConstructOptions, ConstructionReport, LlmProfile, SimulatedLlm,
};
use o4a_solvers::versions::latest_release;
use o4a_solvers::{CommitIdx, EngineConfig, SolverId, TRUNK_COMMIT};
use std::collections::{BTreeMap, BTreeSet};

/// Experiment scale: trades real runtime for virtual-campaign resolution.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Campaign time scale (higher = fewer real cases per virtual hour).
    pub time_scale: u64,
    /// Hard case cap per campaign.
    pub max_cases: usize,
    /// Virtual hours per campaign.
    pub hours: u32,
}

/// Bench scale: seconds per campaign — used by `cargo bench`.
pub const QUICK: Scale = Scale {
    time_scale: 600,
    max_cases: 8_000,
    hours: 24,
};

/// Full scale: the `experiments` binary default.
pub const FULL: Scale = Scale {
    time_scale: 80,
    max_cases: 60_000,
    hours: 24,
};

impl Scale {
    fn config(&self, solvers: Vec<(SolverId, CommitIdx)>, seed: u64) -> CampaignConfig {
        CampaignConfig {
            virtual_hours: self.hours,
            time_scale: self.time_scale,
            solvers,
            engine: EngineConfig::default(),
            seed,
            max_cases: self.max_cases,
        }
    }
}

/// The parallelism knob every experiment driver routes through: shard
/// count from `O4A_SHARDS` (default 1 — bit-identical to the paper's
/// serial protocol), worker count from `O4A_WORKERS` (default: one per
/// CPU), and overlapped in-flight queries per worker from `O4A_INFLIGHT`
/// (default 1; any `K` is bit-identical to serial — the knob trades
/// nothing but executor scheduling). Campaigns *within* a comparison
/// additionally fan out across fuzzers, so even `O4A_SHARDS=1` benefits
/// from the pool.
pub fn exec_knob() -> ExecConfig {
    ExecConfig::from_env()
}

/// Trunk solvers (the RQ1 bug-hunting configuration).
pub fn trunk_solvers() -> Vec<(SolverId, CommitIdx)> {
    vec![
        (SolverId::OxiZ, TRUNK_COMMIT),
        (SolverId::Cervo, TRUNK_COMMIT),
    ]
}

/// Latest-release solvers (the RQ2 known-bug configuration).
pub fn release_solvers() -> Vec<(SolverId, CommitIdx)> {
    vec![
        (SolverId::OxiZ, latest_release(SolverId::OxiZ).commit),
        (SolverId::Cervo, latest_release(SolverId::Cervo).commit),
    ]
}

/// Runs the RQ1 trunk bug-hunting campaign with Once4All
/// (Tables 1–2, Figure 5 input, §4.2 statistics), sharded and pooled per
/// [`exec_knob`]. At the default `O4A_SHARDS=1` the result is
/// bit-identical to the paper's serial protocol.
pub fn trunk_campaign(scale: Scale) -> CampaignResult {
    trunk_campaign_with(scale, &exec_knob())
}

/// [`trunk_campaign`] with an explicit execution configuration.
pub fn trunk_campaign_with(scale: Scale, exec: &ExecConfig) -> CampaignResult {
    run_campaign_sharded(
        |_shard| Box::new(Once4AllFuzzer::new(Once4AllConfig::default())) as Box<dyn Fuzzer>,
        &scale.config(trunk_solvers(), 0x04a11),
        exec,
    )
}

/// Table 1: bug status per solver from a campaign's findings.
pub fn table1(result: &CampaignResult) -> BTreeMap<SolverId, o4a_core::StatusCounts> {
    o4a_core::status_table(&dedup(&result.findings))
}

/// Table 2: bug-type distribution per solver.
pub fn table2(result: &CampaignResult) -> BTreeMap<SolverId, BTreeMap<o4a_core::FoundKind, usize>> {
    o4a_core::type_table(&dedup(&result.findings))
}

/// Figure 5: lifespan series per solver from a campaign's issues.
pub fn fig5(result: &CampaignResult) -> BTreeMap<SolverId, Vec<LifespanPoint>> {
    let issues = dedup(&result.findings);
    SolverId::ALL
        .iter()
        .map(|&s| (s, o4a_core::lifespan_series(s, &issues)))
        .collect()
}

/// §5.1 / "Table 3": per-theory validity before and after self-correction.
pub fn table3_validity(profile: LlmProfile) -> ConstructionReport {
    let mut llm = SimulatedLlm::new(profile);
    let docs = o4a_llm::corpus::corpus();
    let mut validators: Vec<Box<dyn o4a_llm::Validator>> = vec![
        Box::new(o4a_core::FrontendValidator::new(SolverId::OxiZ)),
        Box::new(o4a_core::FrontendValidator::new(SolverId::Cervo)),
    ];
    construct_generators(
        &mut llm,
        &docs,
        &mut validators,
        ConstructOptions::default(),
    )
}

/// The nine fuzzers of Figure 6/7 in figure order: Once4All + baselines.
pub fn all_fuzzers() -> Vec<Box<dyn Fuzzer>> {
    let mut v: Vec<Box<dyn Fuzzer>> = vec![Box::new(Once4AllFuzzer::with_defaults())];
    v.extend(o4a_baselines::all_baselines());
    v
}

/// A display-ordered fuzzer roster that can construct fresh instances on
/// worker threads — what lets whole comparisons fan out across fuzzers
/// (and, per instance, across shards) on the `o4a-exec` pool.
pub struct Roster {
    len: usize,
    factory: Box<dyn Fn(usize) -> Box<dyn Fuzzer> + Send + Sync>,
}

impl Roster {
    /// Number of fuzzers in the roster.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the roster is empty (never, for the paper rosters).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Builds a fresh instance of fuzzer `i` (panics past the end).
    pub fn build(&self, i: usize) -> Box<dyn Fuzzer> {
        assert!(i < self.len, "fuzzer index {i} out of range");
        (self.factory)(i)
    }

    /// The nine fuzzers of Figures 6/7 ([`all_fuzzers`] as a roster).
    pub fn paper_fuzzers() -> Roster {
        Roster {
            len: all_fuzzers().len(),
            factory: Box::new(|i| {
                if i == 0 {
                    Box::new(Once4AllFuzzer::with_defaults())
                } else {
                    o4a_baselines::all_baselines()
                        .into_iter()
                        .nth(i - 1)
                        .expect("baseline index in range")
                }
            }),
        }
    }

    /// The four Once4All variants of Figures 8/9 ([`all_variants`] as a
    /// roster).
    pub fn paper_variants() -> Roster {
        Roster {
            len: all_variants().len(),
            factory: Box::new(|i| {
                all_variants()
                    .into_iter()
                    .nth(i)
                    .expect("variant index in range")
            }),
        }
    }
}

/// The four Once4All variants of Figures 8/9.
pub fn all_variants() -> Vec<Box<dyn Fuzzer>> {
    vec![
        Box::new(Once4AllFuzzer::new(Once4AllConfig::default())),
        Box::new(Once4AllFuzzer::new(Once4AllConfig {
            use_skeletons: false,
            ..Once4AllConfig::default()
        })),
        Box::new(Once4AllFuzzer::new(Once4AllConfig {
            profile: LlmProfile::claude(),
            ..Once4AllConfig::default()
        })),
        Box::new(Once4AllFuzzer::new(Once4AllConfig {
            profile: LlmProfile::gemini(),
            ..Once4AllConfig::default()
        })),
    ]
}

/// Runs one coverage-comparison campaign per fuzzer against the given
/// solver versions (Figures 6 and 8).
pub fn coverage_comparison(
    mut fuzzers: Vec<Box<dyn Fuzzer>>,
    scale: Scale,
    solvers: Vec<(SolverId, CommitIdx)>,
) -> Vec<CampaignResult> {
    fuzzers
        .iter_mut()
        .enumerate()
        .map(|(i, f)| {
            run_campaign(
                f.as_mut(),
                &scale.config(solvers.clone(), 0xf166 ^ (i as u64) << 8),
            )
        })
        .collect()
}

/// [`coverage_comparison`] on the worker pool: one campaign per roster
/// fuzzer, fanned out across fuzzers with `exec.parallelism`; each
/// campaign runs `exec.shards` shards serially on its worker (the fuzzer
/// fan-out already saturates the pool). Seeds and merge semantics make
/// the output order- and scheduling-independent, and at
/// `ExecConfig::default()` it is case-for-case identical to the serial
/// [`coverage_comparison`].
pub fn coverage_comparison_parallel(
    roster: &Roster,
    scale: Scale,
    solvers: Vec<(SolverId, CommitIdx)>,
    exec: &ExecConfig,
) -> Vec<CampaignResult> {
    let workers = exec.parallelism.workers(roster.len());
    parallel_map(roster.len(), workers, |i| {
        run_campaign_sharded(
            |_shard| roster.build(i),
            &scale.config(solvers.clone(), 0xf166 ^ (i as u64) << 8),
            // Serial per campaign: the roster itself is the parallel
            // axis here. Struct-update keeps every other knob (and any
            // future one) flowing through from the environment.
            &ExecConfig {
                parallelism: Parallelism::Serial,
                ..exec.clone()
            },
        )
    })
}

/// One fuzzer's unique known bugs: distinct (solver, correcting commit)
/// pairs recovered by bisection from its release-campaign findings
/// (Figures 7 and 9).
pub fn unique_known_bugs(
    result: &CampaignResult,
    engine: &EngineConfig,
) -> BTreeSet<(SolverId, CommitIdx)> {
    let mut out = BTreeSet::new();
    let issues: Vec<Issue> = dedup(&result.findings);
    for issue in issues {
        let release = latest_release(issue.solver);
        if let Some(fix) = correcting_commit(
            issue.solver,
            &issue.representative,
            release.commit,
            TRUNK_COMMIT,
            engine,
        ) {
            out.insert((issue.solver, fix));
        }
    }
    out
}

/// Runs the known-bug comparison for a set of fuzzers: campaign on the
/// latest releases, then bisection. Returns per-fuzzer unique-bug sets.
pub fn known_bug_comparison(
    mut fuzzers: Vec<Box<dyn Fuzzer>>,
    scale: Scale,
) -> Vec<(String, BTreeSet<(SolverId, CommitIdx)>)> {
    let engine = EngineConfig::default();
    fuzzers
        .iter_mut()
        .enumerate()
        .map(|(i, f)| {
            let result = run_campaign(
                f.as_mut(),
                &scale.config(release_solvers(), 0xf177 ^ (i as u64) << 8),
            );
            (f.name(), unique_known_bugs(&result, &engine))
        })
        .collect()
}

/// [`known_bug_comparison`] on the worker pool: release campaigns plus
/// bisection, one roster fuzzer per worker (see
/// [`coverage_comparison_parallel`] for the pool model).
pub fn known_bug_comparison_parallel(
    roster: &Roster,
    scale: Scale,
    exec: &ExecConfig,
) -> Vec<(String, BTreeSet<(SolverId, CommitIdx)>)> {
    let engine = EngineConfig::default();
    let workers = exec.parallelism.workers(roster.len());
    parallel_map(roster.len(), workers, |i| {
        let result = run_campaign_sharded(
            |_shard| roster.build(i),
            &scale.config(release_solvers(), 0xf177 ^ (i as u64) << 8),
            // Serial per campaign: the roster itself is the parallel
            // axis here. Struct-update keeps every other knob (and any
            // future one) flowing through from the environment.
            &ExecConfig {
                parallelism: Parallelism::Serial,
                ..exec.clone()
            },
        );
        (result.fuzzer.clone(), unique_known_bugs(&result, &engine))
    })
}

/// The coverage-complementarity analysis (§4.3): function names covered by
/// `a` but by none of `others`, per solver.
pub fn exclusive_coverage(
    a: &CampaignResult,
    others: &[&CampaignResult],
) -> BTreeMap<SolverId, Vec<String>> {
    let mut out = BTreeMap::new();
    for (solver, names) in &a.covered_functions {
        let mine: BTreeSet<&String> = names.iter().collect();
        let mut theirs: BTreeSet<&String> = BTreeSet::new();
        for o in others {
            if let Some(n) = o.covered_functions.get(solver) {
                theirs.extend(n.iter());
            }
        }
        out.insert(
            *solver,
            mine.difference(&theirs).map(|s| s.to_string()).collect(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMOKE: Scale = Scale {
        time_scale: 30_000,
        max_cases: 150,
        hours: 24,
    };

    #[test]
    fn trunk_campaign_finds_bugs_even_at_smoke_scale() {
        let result = trunk_campaign(SMOKE);
        assert!(result.stats.cases > 50);
        assert!(
            result.stats.bug_triggering > 0,
            "no bug-triggering formulas in {} cases",
            result.stats.cases
        );
        let t1 = table1(&result);
        let total_reported: usize = t1.values().map(|c| c.reported).sum();
        assert!(total_reported > 0);
    }

    #[test]
    fn validity_experiment_matches_paper_shape() {
        let report = table3_validity(LlmProfile::gpt4());
        let ff = report
            .generator_for(o4a_smtlib::Theory::FiniteFields)
            .unwrap();
        let reals = report.generator_for(o4a_smtlib::Theory::Reals).unwrap();
        assert!(ff.validity_before < reals.validity_before);
        assert!(ff.validity_after > 0.8);
    }

    #[test]
    fn fuzzer_rosters_have_paper_cardinality() {
        assert_eq!(all_fuzzers().len(), 9, "Figure 6 compares nine fuzzers");
        assert_eq!(all_variants().len(), 4, "Figure 8 compares four variants");
        assert_eq!(Roster::paper_fuzzers().len(), 9);
        assert_eq!(Roster::paper_variants().len(), 4);
    }

    #[test]
    fn rosters_rebuild_the_same_lineup() {
        let named: Vec<String> = all_fuzzers().iter().map(|f| f.name()).collect();
        let roster = Roster::paper_fuzzers();
        let rebuilt: Vec<String> = (0..roster.len()).map(|i| roster.build(i).name()).collect();
        assert_eq!(named, rebuilt);
        let vnamed: Vec<String> = all_variants().iter().map(|f| f.name()).collect();
        let vroster = Roster::paper_variants();
        let vrebuilt: Vec<String> = (0..vroster.len())
            .map(|i| vroster.build(i).name())
            .collect();
        assert_eq!(vnamed, vrebuilt);
    }

    #[test]
    fn parallel_comparison_matches_serial() {
        // Two fuzzers at smoke scale: the pooled comparison must reproduce
        // the serial one case for case.
        let scale = SMOKE;
        let serial = coverage_comparison(
            vec![
                Box::new(Once4AllFuzzer::with_defaults()),
                Box::new(Once4AllFuzzer::new(Once4AllConfig {
                    use_skeletons: false,
                    ..Once4AllConfig::default()
                })),
            ],
            scale,
            trunk_solvers(),
        );
        let roster = Roster {
            len: 2,
            factory: Box::new(|i| {
                if i == 0 {
                    Box::new(Once4AllFuzzer::with_defaults())
                } else {
                    Box::new(Once4AllFuzzer::new(Once4AllConfig {
                        use_skeletons: false,
                        ..Once4AllConfig::default()
                    }))
                }
            }),
        };
        let parallel = coverage_comparison_parallel(
            &roster,
            scale,
            trunk_solvers(),
            &ExecConfig {
                shards: 1,
                parallelism: Parallelism::Threads(2),
                ..ExecConfig::default()
            },
        );
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.fuzzer, p.fuzzer);
            assert_eq!(s.stats.cases, p.stats.cases);
            assert_eq!(s.stats.bug_triggering, p.stats.bug_triggering);
            assert_eq!(s.final_coverage, p.final_coverage);
        }
    }

    #[test]
    fn sharded_trunk_campaign_finds_bugs() {
        let result = trunk_campaign_with(
            SMOKE,
            &ExecConfig {
                shards: 4,
                parallelism: Parallelism::Auto,
                ..ExecConfig::default()
            },
        );
        assert!(result.stats.cases > 100, "4 shards should multiply cases");
        assert!(result.stats.bug_triggering > 0);
    }
}
