//! Experiment drivers, one per table/figure of the evaluation.

use o4a_core::{
    correcting_commit, dedup, run_campaign, CampaignConfig, CampaignResult, Fuzzer, Issue,
    LifespanPoint, Once4AllConfig, Once4AllFuzzer,
};
use o4a_llm::{
    construct_generators, ConstructOptions, ConstructionReport, LlmProfile, SimulatedLlm,
};
use o4a_solvers::versions::latest_release;
use o4a_solvers::{CommitIdx, EngineConfig, SolverId, TRUNK_COMMIT};
use std::collections::{BTreeMap, BTreeSet};

/// Experiment scale: trades real runtime for virtual-campaign resolution.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Campaign time scale (higher = fewer real cases per virtual hour).
    pub time_scale: u64,
    /// Hard case cap per campaign.
    pub max_cases: usize,
    /// Virtual hours per campaign.
    pub hours: u32,
}

/// Bench scale: seconds per campaign — used by `cargo bench`.
pub const QUICK: Scale = Scale {
    time_scale: 600,
    max_cases: 8_000,
    hours: 24,
};

/// Full scale: the `experiments` binary default.
pub const FULL: Scale = Scale {
    time_scale: 80,
    max_cases: 60_000,
    hours: 24,
};

impl Scale {
    fn config(&self, solvers: Vec<(SolverId, CommitIdx)>, seed: u64) -> CampaignConfig {
        CampaignConfig {
            virtual_hours: self.hours,
            time_scale: self.time_scale,
            solvers,
            engine: EngineConfig::default(),
            seed,
            max_cases: self.max_cases,
        }
    }
}

/// Trunk solvers (the RQ1 bug-hunting configuration).
pub fn trunk_solvers() -> Vec<(SolverId, CommitIdx)> {
    vec![
        (SolverId::OxiZ, TRUNK_COMMIT),
        (SolverId::Cervo, TRUNK_COMMIT),
    ]
}

/// Latest-release solvers (the RQ2 known-bug configuration).
pub fn release_solvers() -> Vec<(SolverId, CommitIdx)> {
    vec![
        (SolverId::OxiZ, latest_release(SolverId::OxiZ).commit),
        (SolverId::Cervo, latest_release(SolverId::Cervo).commit),
    ]
}

/// Runs the RQ1 trunk bug-hunting campaign with Once4All
/// (Tables 1–2, Figure 5 input, §4.2 statistics).
pub fn trunk_campaign(scale: Scale) -> CampaignResult {
    let mut fuzzer = Once4AllFuzzer::new(Once4AllConfig::default());
    run_campaign(&mut fuzzer, &scale.config(trunk_solvers(), 0x04a1_1))
}

/// Table 1: bug status per solver from a campaign's findings.
pub fn table1(result: &CampaignResult) -> BTreeMap<SolverId, o4a_core::StatusCounts> {
    o4a_core::status_table(&dedup(&result.findings))
}

/// Table 2: bug-type distribution per solver.
pub fn table2(
    result: &CampaignResult,
) -> BTreeMap<SolverId, BTreeMap<o4a_core::FoundKind, usize>> {
    o4a_core::type_table(&dedup(&result.findings))
}

/// Figure 5: lifespan series per solver from a campaign's issues.
pub fn fig5(result: &CampaignResult) -> BTreeMap<SolverId, Vec<LifespanPoint>> {
    let issues = dedup(&result.findings);
    SolverId::ALL
        .iter()
        .map(|&s| (s, o4a_core::lifespan_series(s, &issues)))
        .collect()
}

/// §5.1 / "Table 3": per-theory validity before and after self-correction.
pub fn table3_validity(profile: LlmProfile) -> ConstructionReport {
    let mut llm = SimulatedLlm::new(profile);
    let docs = o4a_llm::corpus::corpus();
    let mut validators: Vec<Box<dyn o4a_llm::Validator>> = vec![
        Box::new(o4a_core::FrontendValidator::new(SolverId::OxiZ)),
        Box::new(o4a_core::FrontendValidator::new(SolverId::Cervo)),
    ];
    construct_generators(&mut llm, &docs, &mut validators, ConstructOptions::default())
}

/// The nine fuzzers of Figure 6/7 in figure order: Once4All + baselines.
pub fn all_fuzzers() -> Vec<Box<dyn Fuzzer>> {
    let mut v: Vec<Box<dyn Fuzzer>> = vec![Box::new(Once4AllFuzzer::with_defaults())];
    v.extend(o4a_baselines::all_baselines());
    v
}

/// The four Once4All variants of Figures 8/9.
pub fn all_variants() -> Vec<Box<dyn Fuzzer>> {
    vec![
        Box::new(Once4AllFuzzer::new(Once4AllConfig::default())),
        Box::new(Once4AllFuzzer::new(Once4AllConfig {
            use_skeletons: false,
            ..Once4AllConfig::default()
        })),
        Box::new(Once4AllFuzzer::new(Once4AllConfig {
            profile: LlmProfile::claude(),
            ..Once4AllConfig::default()
        })),
        Box::new(Once4AllFuzzer::new(Once4AllConfig {
            profile: LlmProfile::gemini(),
            ..Once4AllConfig::default()
        })),
    ]
}

/// Runs one coverage-comparison campaign per fuzzer against the given
/// solver versions (Figures 6 and 8).
pub fn coverage_comparison(
    mut fuzzers: Vec<Box<dyn Fuzzer>>,
    scale: Scale,
    solvers: Vec<(SolverId, CommitIdx)>,
) -> Vec<CampaignResult> {
    fuzzers
        .iter_mut()
        .enumerate()
        .map(|(i, f)| {
            run_campaign(
                f.as_mut(),
                &scale.config(solvers.clone(), 0xf16_6 ^ (i as u64) << 8),
            )
        })
        .collect()
}

/// One fuzzer's unique known bugs: distinct (solver, correcting commit)
/// pairs recovered by bisection from its release-campaign findings
/// (Figures 7 and 9).
pub fn unique_known_bugs(
    result: &CampaignResult,
    engine: &EngineConfig,
) -> BTreeSet<(SolverId, CommitIdx)> {
    let mut out = BTreeSet::new();
    let issues: Vec<Issue> = dedup(&result.findings);
    for issue in issues {
        let release = latest_release(issue.solver);
        if let Some(fix) = correcting_commit(
            issue.solver,
            &issue.representative,
            release.commit,
            TRUNK_COMMIT,
            engine,
        ) {
            out.insert((issue.solver, fix));
        }
    }
    out
}

/// Runs the known-bug comparison for a set of fuzzers: campaign on the
/// latest releases, then bisection. Returns per-fuzzer unique-bug sets.
pub fn known_bug_comparison(
    mut fuzzers: Vec<Box<dyn Fuzzer>>,
    scale: Scale,
) -> Vec<(String, BTreeSet<(SolverId, CommitIdx)>)> {
    let engine = EngineConfig::default();
    fuzzers
        .iter_mut()
        .enumerate()
        .map(|(i, f)| {
            let result = run_campaign(
                f.as_mut(),
                &scale.config(release_solvers(), 0xf17_7 ^ (i as u64) << 8),
            );
            (f.name(), unique_known_bugs(&result, &engine))
        })
        .collect()
}

/// The coverage-complementarity analysis (§4.3): function names covered by
/// `a` but by none of `others`, per solver.
pub fn exclusive_coverage(
    a: &CampaignResult,
    others: &[&CampaignResult],
) -> BTreeMap<SolverId, Vec<String>> {
    let mut out = BTreeMap::new();
    for (solver, names) in &a.covered_functions {
        let mine: BTreeSet<&String> = names.iter().collect();
        let mut theirs: BTreeSet<&String> = BTreeSet::new();
        for o in others {
            if let Some(n) = o.covered_functions.get(solver) {
                theirs.extend(n.iter());
            }
        }
        out.insert(
            *solver,
            mine.difference(&theirs).map(|s| s.to_string()).collect(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMOKE: Scale = Scale {
        time_scale: 30_000,
        max_cases: 150,
        hours: 24,
    };

    #[test]
    fn trunk_campaign_finds_bugs_even_at_smoke_scale() {
        let result = trunk_campaign(SMOKE);
        assert!(result.stats.cases > 50);
        assert!(
            result.stats.bug_triggering > 0,
            "no bug-triggering formulas in {} cases",
            result.stats.cases
        );
        let t1 = table1(&result);
        let total_reported: usize = t1.values().map(|c| c.reported).sum();
        assert!(total_reported > 0);
    }

    #[test]
    fn validity_experiment_matches_paper_shape() {
        let report = table3_validity(LlmProfile::gpt4());
        let ff = report
            .generator_for(o4a_smtlib::Theory::FiniteFields)
            .unwrap();
        let reals = report.generator_for(o4a_smtlib::Theory::Reals).unwrap();
        assert!(ff.validity_before < reals.validity_before);
        assert!(ff.validity_after > 0.8);
    }

    #[test]
    fn fuzzer_rosters_have_paper_cardinality() {
        assert_eq!(all_fuzzers().len(), 9, "Figure 6 compares nine fuzzers");
        assert_eq!(all_variants().len(), 4, "Figure 8 compares four variants");
    }
}
