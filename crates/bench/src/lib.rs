//! # o4a-bench
//!
//! The experiment harness: one function per table/figure of the paper's
//! evaluation, shared by the Criterion benches (scaled-down) and the
//! `experiments` binary (full scale). See `EXPERIMENTS.md` for the
//! paper-vs-measured record.

#![warn(missing_docs)]

pub mod experiments;
pub mod render;

pub use experiments::*;
pub use render::*;
