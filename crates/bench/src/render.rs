//! ASCII rendering of tables and figure series, matching the paper's
//! row/column layout so outputs can be compared side by side.

use crate::experiments;
use o4a_core::{CampaignResult, FoundKind, LifespanPoint, StatusCounts};
use o4a_llm::ConstructionReport;
use o4a_solvers::{CommitIdx, SolverId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

fn header(title: &str) -> String {
    format!("\n=== {title} ===\n")
}

/// Renders Table 1 (status of bugs found in the solvers).
pub fn render_table1(table: &BTreeMap<SolverId, StatusCounts>) -> String {
    let mut out = header("Table 1: Status of bugs found in the solvers");
    let oz = table.get(&SolverId::OxiZ).copied().unwrap_or_default();
    let cv = table.get(&SolverId::Cervo).copied().unwrap_or_default();
    let _ = writeln!(
        out,
        "{:<12} {:>8} {:>8} {:>8}",
        "Status", "Z3*", "cvc5*", "Total"
    );
    for (label, a, b) in [
        ("Reported", oz.reported, cv.reported),
        ("Confirmed", oz.confirmed, cv.confirmed),
        ("Fixed", oz.fixed, cv.fixed),
        ("Duplicate", oz.duplicate, cv.duplicate),
    ] {
        let _ = writeln!(out, "{label:<12} {a:>8} {b:>8} {:>8}", a + b);
    }
    out.push_str("(Z3* = OxiZ, cvc5* = Cervo; see DESIGN.md)\n");
    out
}

/// Renders Table 2 (bug types among the reported bugs).
pub fn render_table2(table: &BTreeMap<SolverId, BTreeMap<FoundKind, usize>>) -> String {
    let mut out = header("Table 2: Bug types among the reported bugs");
    let get = |s: SolverId, k: FoundKind| -> usize {
        table.get(&s).and_then(|m| m.get(&k)).copied().unwrap_or(0)
    };
    let _ = writeln!(
        out,
        "{:<15} {:>8} {:>8} {:>8}",
        "Type", "Z3*", "cvc5*", "Total"
    );
    for kind in [
        FoundKind::Crash,
        FoundKind::InvalidModel,
        FoundKind::Soundness,
    ] {
        let a = get(SolverId::OxiZ, kind);
        let b = get(SolverId::Cervo, kind);
        let _ = writeln!(out, "{:<15} {a:>8} {b:>8} {:>8}", kind.label(), a + b);
    }
    out
}

/// Renders the §5.1 validity study ("Table 3").
pub fn render_table3(report: &ConstructionReport) -> String {
    let mut out = header("Table 3 (§5.1): Generator validity before/after self-correction");
    let _ = writeln!(
        out,
        "{:<16} {:>10} {:>10} {:>6}",
        "Theory", "Before", "After", "Iters"
    );
    for g in &report.generators {
        let _ = writeln!(
            out,
            "{:<16} {:>9.0}% {:>9.0}% {:>6}",
            g.program.theory.name(),
            g.validity_before * 100.0,
            g.validity_after * 100.0,
            g.iterations
        );
    }
    let _ = writeln!(
        out,
        "One-time LLM investment: {} requests, {:.1} virtual minutes",
        report.total_requests,
        report.total_llm_micros as f64 / 60_000_000.0
    );
    out
}

/// Renders Figure 5 (confirmed bugs affecting release versions).
pub fn render_fig5(series: &BTreeMap<SolverId, Vec<LifespanPoint>>) -> String {
    let mut out = header("Figure 5: Confirmed bugs affecting release versions");
    for (solver, points) in series {
        let _ = writeln!(out, "[{}]", solver.stands_for());
        for p in points {
            let bar: String = "#".repeat(p.affected);
            let _ = writeln!(out, "  {:>8}: {:>3} {bar}", p.release.version, p.affected);
        }
    }
    out
}

/// Renders one Figure 6/8 panel: hourly coverage series for many fuzzers.
pub fn render_coverage_panel(
    title: &str,
    results: &[CampaignResult],
    solver: SolverId,
    lines: bool,
) -> String {
    let mut out = header(title);
    let hours: Vec<u32> = results
        .first()
        .map(|r| r.snapshots.iter().map(|s| s.hour).collect())
        .unwrap_or_default();
    let _ = write!(out, "{:<20}", "Fuzzer \\ hour");
    for h in hours.iter().filter(|h| *h % 4 == 0 || **h == 1) {
        let _ = write!(out, "{h:>7}");
    }
    out.push('\n');
    for r in results {
        let _ = write!(out, "{:<20}", r.fuzzer);
        for s in &r.snapshots {
            if s.hour % 4 == 0 || s.hour == 1 {
                let cov = s.coverage.get(&solver).copied().unwrap_or_default();
                let v = if lines {
                    cov.line_pct
                } else {
                    cov.function_pct
                };
                let _ = write!(out, "{v:>6.1}%");
            }
        }
        out.push('\n');
    }
    out
}

/// Renders a Figure 7/9 known-bug comparison.
pub fn render_known_bugs(
    title: &str,
    sets: &[(String, BTreeSet<(SolverId, CommitIdx)>)],
) -> String {
    let mut out = header(title);
    let mut all: BTreeSet<(SolverId, CommitIdx)> = BTreeSet::new();
    for (_, s) in sets {
        all.extend(s.iter().copied());
    }
    for (name, s) in sets {
        let exclusive = s
            .iter()
            .filter(|b| {
                sets.iter()
                    .filter(|(n, _)| n != name)
                    .all(|(_, o)| !o.contains(b))
            })
            .count();
        let _ = writeln!(
            out,
            "{name:<22} unique known bugs: {:>2}   (exclusive: {exclusive})",
            s.len()
        );
    }
    let _ = writeln!(out, "{:<22} distinct bugs overall: {}", "", all.len());
    out
}

/// Renders campaign statistics (§4.2).
pub fn render_stats(result: &CampaignResult) -> String {
    let mut out = header("Campaign statistics (§4.2)");
    let s = &result.stats;
    let _ = writeln!(out, "test cases executed      : {}", s.cases);
    let _ = writeln!(
        out,
        "mean formula size        : {:.0} bytes",
        s.mean_bytes()
    );
    let _ = writeln!(out, "bug-triggering formulas  : {}", s.bug_triggering);
    let _ = writeln!(out, "frontend-rejected inputs : {}", s.rejected);
    let _ = writeln!(out, "decisive (sat/unsat)     : {}", s.decisive);
    let _ = writeln!(out, "virtual time             : {} s", s.virtual_seconds);
    let _ = writeln!(
        out,
        "one-time setup (LLM)     : {} s virtual",
        s.setup_virtual_seconds
    );
    // Pipe-transport process churn — only meaningful when an external
    // solver backend ran (in-process campaigns report zero).
    if s.processes_spawned > 0 || s.scopes_pushed > 0 {
        let _ = writeln!(
            out,
            "solver processes spawned : {} ({} respawned after crash/wedge)",
            s.processes_spawned, s.process_respawns
        );
        let _ = writeln!(out, "incremental scopes pushed: {}", s.scopes_pushed);
    }
    // Verdict-cache traffic — only campaigns run with `O4A_CACHE` (or a
    // `PipeBackend` cache dir) see any; the counters are transport
    // observables, scrubbed by `sans_transport`.
    if s.cache_hits > 0 || s.cache_misses > 0 || s.prefix_reuses > 0 {
        let looked_up = s.cache_hits + s.cache_misses;
        let hit_pct = if looked_up > 0 {
            s.cache_hits as f64 * 100.0 / looked_up as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "verdict cache            : {} hits / {} misses ({hit_pct:.1}% hit rate)",
            s.cache_hits, s.cache_misses
        );
        if s.prefix_reuses > 0 {
            let _ = writeln!(out, "prefix scopes reused     : {}", s.prefix_reuses);
        }
    }
    // Distribution-layer lease churn — only a distributed coordinator
    // (`o4a-dist`) grants leases.
    if s.leases_granted > 0 {
        let _ = writeln!(
            out,
            "shard leases granted     : {} ({} re-issued after worker deaths)",
            s.leases_granted, s.leases_reissued
        );
    }
    for (solver, cov) in &result.final_coverage {
        let _ = writeln!(
            out,
            "final coverage {:<9} : {:.1}% lines, {:.1}% functions",
            solver.to_string(),
            cov.line_pct,
            cov.function_pct
        );
    }
    out
}

/// Renders the fleet summary of a distributed campaign (`o4a-dist`):
/// lease churn and per-worker throughput, the distribution-layer
/// counterpart of the process-churn lines in [`render_stats`].
pub fn render_dist_stats(stats: &o4a_dist::DistStats) -> String {
    let mut out = header("Distributed campaign (o4a-dist)");
    let _ = writeln!(
        out,
        "shard plan               : {} shards on {} workers",
        stats.shards, stats.workers
    );
    let _ = writeln!(
        out,
        "worker processes spawned : {} ({} died or were killed as wedged)",
        stats.workers_spawned, stats.worker_deaths
    );
    let _ = writeln!(
        out,
        "shard leases granted     : {} ({} re-issued after a worker died mid-lease)",
        stats.leases_granted, stats.leases_reissued
    );
    // Elastic-fleet churn — only TCP fleets join/leave/re-adopt, and
    // only a checkpointed coordinator resumes; pipe fleets skip it all.
    if stats.workers_joined > 0 || stats.workers_left > 0 || stats.resumed {
        let _ = writeln!(
            out,
            "elastic fleet            : {} joins, {} goodbyes, {} re-adopted ({} shards credited)",
            stats.workers_joined,
            stats.workers_left,
            stats.workers_readopted,
            stats.shards_readopted
        );
    }
    if stats.resumed {
        let _ = writeln!(out, "coordinator              : resumed from checkpoint");
    }
    let _ = writeln!(
        out,
        "{:<8} {:>7} {:>9} {:>9} {:>13} {:>13}  exit",
        "worker", "leases", "cases", "wall", "throughput", "live"
    );
    for w in &stats.per_worker {
        let _ = writeln!(
            out,
            "w{:<7} {:>7} {:>9} {:>8.2}s {:>11.1}/s {:>11.1}/s  {}",
            w.worker,
            w.leases_completed,
            w.cases,
            w.wall.as_secs_f64(),
            w.cases_per_sec(),
            w.last_cases_per_sec,
            if w.clean_exit { "clean" } else { "died" },
        );
    }
    // Fleet-wide cache traffic rides the workers' `done` frames; a
    // cache-off fleet reports the zero trio and the line is skipped.
    if !stats.cache.is_zero() {
        let _ = writeln!(
            out,
            "verdict cache (fleet)    : {} hits / {} misses, {} prefix reuses",
            stats.cache.hits, stats.cache.misses, stats.cache.prefix_reuses
        );
    }
    // Fleet-wide metrics ride the workers' done/progress frames only
    // when the fleet ran with `O4A_METRICS` on.
    if !stats.fleet_metrics.is_empty() {
        let _ = writeln!(out, "fleet metrics (all workers, merged):");
        for (name, value) in &stats.fleet_metrics.counters {
            let _ = writeln!(out, "  {name:<24} : {value}");
        }
        for (name, h) in &stats.fleet_metrics.histograms {
            let _ = writeln!(out, "  {name:<24} : {}", render_histogram_line(h));
        }
    }
    // Running coverage maxima arrive on `done` frames only when fleet
    // tracing (o4a-scope) was on.
    for (solver, pct) in &stats.coverage {
        let _ = writeln!(out, "coverage (running max)   : {solver} {pct:.1}% lines");
    }
    if let Some(path) = &stats.fleet_trace {
        let _ = writeln!(out, "fleet trace              : {}", path.display());
    }
    out
}

/// One-line histogram summary: exact count and mean (snapshots carry an
/// exact sum, so the mean is not bucket-quantized) plus the log2-bucket
/// ceilings for the p50/p95/p99 quantiles.
pub fn render_histogram_line(h: &o4a_obs::metrics::HistogramSnapshot) -> String {
    format!(
        "n={} mean={:.1} p50<={} p95<={} p99<={}",
        h.count,
        h.mean(),
        h.quantile(0.5),
        h.quantile(0.95),
        h.quantile(0.99)
    )
}

/// The outcome of comparing two `BENCH_throughput.json` snapshots: a
/// human-readable table plus the scenarios that regressed past the
/// threshold — CI fails iff `regressions` is non-empty.
#[derive(Debug)]
pub struct BenchDiff {
    /// Per-scenario comparison table.
    pub report: String,
    /// Scenarios slower than `baseline * (1 - max_regress_pct/100)`,
    /// or present in the baseline but missing from the regenerated run.
    pub regressions: Vec<String>,
}

/// Diffs a regenerated `BENCH_throughput.json` against the committed
/// baseline (the bench-trend CI gate). Both arguments are the raw file
/// contents. A scenario regresses when its fresh cases/sec falls more
/// than `max_regress_pct` percent below the baseline, or when it
/// disappears entirely; new scenarios are reported but never fail the
/// gate (the baseline simply hasn't learned them yet).
///
/// # Errors
///
/// Either file failing to parse as the bench's flat
/// `{"scenarios": {name: cases_per_sec}}` layout.
pub fn render_bench_diff(
    baseline: &str,
    fresh: &str,
    max_regress_pct: f64,
) -> std::io::Result<BenchDiff> {
    use o4a_exec::json::{parse, Json};
    fn scenarios(raw: &str, which: &str) -> std::io::Result<BTreeMap<String, f64>> {
        let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        let json = parse(raw.trim())
            .map_err(|e| bad(format!("{which} BENCH_throughput.json does not parse: {e}")))?;
        let Some(Json::Obj(map)) = json.get("scenarios").cloned() else {
            return Err(bad(format!(
                "{which} BENCH_throughput.json has no scenarios object"
            )));
        };
        map.into_iter()
            .map(|(name, v)| {
                v.as_f64()
                    .map(|rate| (name.clone(), rate))
                    .ok_or_else(|| bad(format!("{which} scenario '{name}' is not a number")))
            })
            .collect()
    }
    let old = scenarios(baseline, "baseline")?;
    let new = scenarios(fresh, "fresh")?;
    let mut report = header(&format!(
        "Bench trend: cases/sec vs committed baseline (gate: -{max_regress_pct:.0}%)"
    ));
    let _ = writeln!(
        report,
        "{:<22} {:>10} {:>10} {:>8}",
        "scenario", "baseline", "fresh", "delta"
    );
    let mut regressions = Vec::new();
    for (name, &was) in &old {
        match new.get(name) {
            None => {
                let _ = writeln!(report, "{name:<22} {was:>10.1} {:>10} {:>8}", "gone", "—");
                regressions.push(format!("{name}: dropped from the bench"));
            }
            Some(&now) => {
                let delta_pct = if was > 0.0 {
                    (now - was) * 100.0 / was
                } else {
                    0.0
                };
                let regressed = now < was * (1.0 - max_regress_pct / 100.0);
                let _ = writeln!(
                    report,
                    "{name:<22} {was:>10.1} {now:>10.1} {delta_pct:>+7.1}%{}",
                    if regressed { "  << REGRESSION" } else { "" }
                );
                if regressed {
                    regressions.push(format!(
                        "{name}: {was:.1} -> {now:.1} cases/sec ({delta_pct:+.1}%)"
                    ));
                }
            }
        }
    }
    for name in new.keys().filter(|n| !old.contains_key(*n)) {
        let _ = writeln!(
            report,
            "{name:<22} {:>10} {:>10.1} {:>8}  (new scenario)",
            "—", new[name], "—"
        );
    }
    Ok(BenchDiff {
        report,
        regressions,
    })
}

/// Renders the exclusive-coverage analysis (which modules only Once4All
/// reaches).
pub fn render_exclusive(once4all: &CampaignResult, others: &[&CampaignResult]) -> String {
    let mut out = header("Coverage complementarity: functions only Once4All reaches");
    let excl = experiments::exclusive_coverage(once4all, others);
    for (solver, names) in excl {
        let extended: Vec<&String> = names
            .iter()
            .filter(|n| {
                n.contains("::sets") || n.contains("::bags") || n.contains("::finite-fields")
            })
            .collect();
        let _ = writeln!(
            out,
            "[{}] {} exclusive functions, {} in extended-theory modules",
            solver.stands_for(),
            names.len(),
            extended.len()
        );
        for n in extended.iter().take(6) {
            let _ = writeln!(out, "    {n}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_renders_all_rows() {
        let mut t = BTreeMap::new();
        t.insert(
            SolverId::OxiZ,
            StatusCounts {
                reported: 27,
                confirmed: 25,
                fixed: 24,
                duplicate: 2,
            },
        );
        t.insert(
            SolverId::Cervo,
            StatusCounts {
                reported: 18,
                confirmed: 18,
                fixed: 16,
                duplicate: 0,
            },
        );
        let s = render_table1(&t);
        assert!(s.contains("Reported"));
        assert!(s.contains("45"));
        assert!(s.contains("43"));
        assert!(s.contains("40"));
    }

    #[test]
    fn dist_stats_render_shows_lease_churn_and_throughput() {
        let mut fleet_metrics = o4a_obs::metrics::MetricsSnapshot::default();
        fleet_metrics.counters.insert("campaign.cases".into(), 120);
        fleet_metrics.histograms.insert(
            "pipe.query_micros".into(),
            o4a_obs::metrics::HistogramSnapshot {
                count: 4,
                sum: 400,
                buckets: vec![(7, 4)],
            },
        );
        let stats = o4a_dist::DistStats {
            shards: 8,
            workers: 4,
            workers_spawned: 5,
            worker_deaths: 1,
            leases_granted: 9,
            leases_reissued: 1,
            workers_joined: 2,
            workers_readopted: 1,
            workers_left: 1,
            shards_readopted: 2,
            resumed: true,
            per_worker: vec![o4a_dist::WorkerSummary {
                worker: 0,
                journal: std::path::PathBuf::from("/tmp/worker-0.jsonl"),
                leases_completed: 3,
                cases: 120,
                wall: std::time::Duration::from_millis(800),
                clean_exit: true,
                last_cases_per_sec: 155.5,
                metrics: None,
            }],
            cache: o4a_dist::CacheCounters {
                hits: 40,
                misses: 80,
                prefix_reuses: 12,
            },
            fleet_metrics,
            coverage: BTreeMap::from([("oxiz".to_string(), 61.5)]),
            fleet_trace: Some(std::path::PathBuf::from("/tmp/fleet-trace.json")),
        };
        let s = render_dist_stats(&stats);
        assert!(s.contains("8 shards on 4 workers"));
        assert!(s.contains("9 (1 re-issued"));
        assert!(s.contains("5 (1 died"));
        assert!(s.contains("w0"));
        assert!(s.contains("150.0/s"), "throughput column missing: {s}");
        assert!(s.contains("155.5/s"), "live-rate column missing: {s}");
        assert!(s.contains("clean"));
        assert!(s.contains("fleet metrics"), "metrics section missing: {s}");
        assert!(s.contains("campaign.cases"));
        assert!(
            s.contains("n=4 mean=100.0 p50<=127 p95<=127 p99<=127"),
            "histogram line missing quantiles: {s}"
        );
        assert!(
            s.contains("coverage (running max)   : oxiz 61.5% lines"),
            "coverage line missing: {s}"
        );
        assert!(
            s.contains("fleet trace              : /tmp/fleet-trace.json"),
            "fleet trace line missing: {s}"
        );
        assert!(
            s.contains("verdict cache (fleet)    : 40 hits / 80 misses, 12 prefix reuses"),
            "fleet cache line missing: {s}"
        );
        assert!(
            s.contains("2 joins, 1 goodbyes, 1 re-adopted (2 shards credited)"),
            "elastic churn line missing: {s}"
        );
        assert!(
            s.contains("resumed from checkpoint"),
            "resume line missing: {s}"
        );
    }

    #[test]
    fn pipe_fleet_stats_skip_the_elastic_lines() {
        let stats = o4a_dist::DistStats {
            shards: 4,
            workers: 2,
            ..Default::default()
        };
        let s = render_dist_stats(&stats);
        assert!(!s.contains("elastic fleet"), "pipe fleets never join: {s}");
        assert!(!s.contains("resumed"), "pipe fleets never resume: {s}");
    }

    fn bench_json(scenarios: &[(&str, f64)]) -> String {
        let body: Vec<String> = scenarios
            .iter()
            .map(|(n, v)| format!("\"{n}\":{v:?}"))
            .collect();
        format!(
            "{{\"bench\":\"campaign_throughput\",\"scenarios\":{{{}}},\"unit\":\"cases_per_sec\"}}",
            body.join(",")
        )
    }

    #[test]
    fn bench_diff_passes_within_threshold_and_reports_new_scenarios() {
        let baseline = bench_json(&[("serial", 30.0), ("pipe_k8", 150.0)]);
        // -10% and +5%: both inside a 20% gate; a new scenario is noted.
        let fresh = bench_json(&[("serial", 27.0), ("pipe_k8", 157.5), ("tcp_fleet", 90.0)]);
        let diff = render_bench_diff(&baseline, &fresh, 20.0).expect("parse");
        assert!(diff.regressions.is_empty(), "{:?}", diff.regressions);
        assert!(diff.report.contains("serial"));
        assert!(diff.report.contains("-10.0%"), "{}", diff.report);
        assert!(diff.report.contains("(new scenario)"), "{}", diff.report);
        assert!(!diff.report.contains("REGRESSION"), "{}", diff.report);
    }

    #[test]
    fn bench_diff_flags_regressions_and_dropped_scenarios() {
        let baseline = bench_json(&[("serial", 30.0), ("pipe_k8", 150.0), ("cached", 100.0)]);
        // serial fell 50% (past the 20% gate), cached vanished.
        let fresh = bench_json(&[("serial", 15.0), ("pipe_k8", 149.0)]);
        let diff = render_bench_diff(&baseline, &fresh, 20.0).expect("parse");
        assert_eq!(diff.regressions.len(), 2, "{:?}", diff.regressions);
        assert!(diff.regressions.iter().any(|r| r.starts_with("serial:")));
        assert!(diff
            .regressions
            .iter()
            .any(|r| r.contains("dropped from the bench")));
        assert!(diff.report.contains("REGRESSION"), "{}", diff.report);
        // The boundary case: exactly -20% is NOT a regression (strict <).
        let at_gate = bench_json(&[("serial", 24.0), ("pipe_k8", 150.0), ("cached", 100.0)]);
        let diff = render_bench_diff(&baseline, &at_gate, 20.0).expect("parse");
        assert!(
            diff.regressions.is_empty(),
            "exactly at the gate must pass: {:?}",
            diff.regressions
        );
    }

    #[test]
    fn bench_diff_refuses_malformed_snapshots() {
        let good = bench_json(&[("serial", 30.0)]);
        assert!(render_bench_diff("not json", &good, 20.0).is_err());
        assert!(render_bench_diff(&good, "{\"scenarios\":[]}", 20.0).is_err());
        assert!(
            render_bench_diff(&good, "{\"scenarios\":{\"serial\":\"fast\"}}", 20.0).is_err(),
            "non-numeric scenario must be refused"
        );
    }

    #[test]
    fn stats_render_shows_cache_traffic_only_when_cached() {
        let mut result = CampaignResult {
            fuzzer: "test".into(),
            snapshots: Vec::new(),
            findings: Vec::new(),
            stats: Default::default(),
            final_coverage: BTreeMap::new(),
            covered_functions: BTreeMap::new(),
            coverage: BTreeMap::new(),
            hourly_coverage: Vec::new(),
        };
        assert!(
            !render_stats(&result).contains("verdict cache"),
            "cache-off campaigns must not mention the cache"
        );
        result.stats.cache_hits = 30;
        result.stats.cache_misses = 10;
        result.stats.prefix_reuses = 7;
        let s = render_stats(&result);
        assert!(
            s.contains("verdict cache            : 30 hits / 10 misses (75.0% hit rate)"),
            "cache line missing or wrong: {s}"
        );
        assert!(s.contains("prefix scopes reused     : 7"));
    }

    #[test]
    fn known_bugs_rendering_counts_exclusives() {
        let sets = vec![
            (
                "Once4All".to_string(),
                [(SolverId::OxiZ, 75u32), (SolverId::Cervo, 65u32)]
                    .into_iter()
                    .collect::<BTreeSet<_>>(),
            ),
            (
                "OpFuzz".to_string(),
                [(SolverId::OxiZ, 75u32)].into_iter().collect(),
            ),
        ];
        let s = render_known_bugs("Figure 7", &sets);
        assert!(s.contains("Once4All"));
        assert!(s.contains("distinct bugs overall: 2"));
        assert!(s.contains("(exclusive: 1)"));
    }
}
