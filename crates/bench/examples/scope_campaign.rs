//! A live o4a-scope session, end to end: a 2-worker pipe fleet runs a
//! small campaign with the observatory on, while a real `dist_top`
//! process polls `GET /status` and renders the fleet view into this
//! terminal. When the campaign finishes, the coordinator's own summary
//! and the fleet-merged Chrome trace path are printed.
//!
//! Build the fleet binaries first, then run the example:
//!
//! ```text
//! cargo build -p o4a-bench --bins
//! cargo run -p o4a-bench --example scope_campaign
//! ```

use o4a_core::CampaignConfig;
use o4a_dist::{run_distributed, DistConfig};
use o4a_obs::ObsConfig;
use std::path::PathBuf;
use std::process::Command;

/// Sibling binary next to this example (`target/<profile>/<name>`).
fn bin(name: &str) -> PathBuf {
    let mut path = std::env::current_exe().expect("current exe");
    path.pop(); // scope_campaign
    path.pop(); // examples/
    path.push(name);
    if !path.exists() {
        eprintln!(
            "scope_campaign: {} not built — run `cargo build -p o4a-bench --bins` first",
            path.display()
        );
        std::process::exit(2);
    }
    path
}

fn main() {
    let scope_addr = {
        let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("probe bind");
        probe.local_addr().expect("probe addr").to_string()
    };
    let journal_dir =
        std::env::temp_dir().join(format!("o4a-scope-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&journal_dir);

    // Coordinator obs on (in-memory) so the fleet trace gets its lane
    // and /metrics has counters; the workers get the same via env.
    o4a_obs::install(ObsConfig {
        trace: true,
        metrics: true,
        dir: None,
        ..ObsConfig::default()
    });

    let config = CampaignConfig {
        virtual_hours: 2,
        time_scale: 50_000,
        max_cases: 120,
        ..CampaignConfig::default()
    };
    let dist = DistConfig::new(
        vec![
            bin("dist_worker").display().to_string(),
            "--slow-ms".into(),
            "60".into(), // drag the campaign out so the live view has frames to show
        ],
        &journal_dir,
    )
    .with_workers(2)
    .with_scope(scope_addr.clone())
    .with_env("O4A_TRACE", journal_dir.join("obs").display().to_string())
    .with_env("O4A_METRICS", journal_dir.join("obs").display().to_string());

    let mut top = Command::new(bin("dist_top"))
        .arg("--connect")
        .arg(&scope_addr)
        .arg("--interval-ms")
        .arg("300")
        .spawn()
        .expect("spawn dist_top");

    let report = run_distributed(&config, 4, &dist).expect("campaign");

    // dist_top notices the coordinator is gone and exits on its own.
    top.wait().expect("dist_top exit");
    o4a_obs::uninstall();

    println!("=== campaign over: the coordinator's own summary ===");
    print!("{}", o4a_bench::render_dist_stats(&report.stats));
    println!(
        "{} cases, {} findings — open the fleet trace in a Chrome `about:tracing` tab",
        report.result.stats.cases,
        report.result.findings.len()
    );
    // Keep the journal dir: it holds the fleet trace named above.
}
