//! LLM-based baselines: Fuzz4All and LaST.
//!
//! * **Fuzz4All** (Xia et al., ICSE 2024) prompts an LLM for *complete
//!   formulas*, paying a full model request per input and living with
//!   ~50% syntactic invalidity. Simulated as sampling from
//!   freshly-synthesized (uncorrected) generators with per-case LLM
//!   latency.
//! * **LaST** (Sun et al., ASE 2023) is a *retrained* LM: better validity
//!   (~80%) and no per-request remote latency, but its training
//!   distribution is the historical seed corpus — standard theories only,
//!   modest structural novelty. Simulated as grammar resampling over
//!   seed-derived structure.

use crate::common::{random_seed, seed_pool, swap_ops, typed_subterms};
use o4a_core::{Fuzzer, TestCase};
use o4a_llm::{ConstructOptions, LlmProfile, SimulatedLlm};
use o4a_smtlib::{Script, Sort, Term};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The Fuzz4All baseline: direct whole-formula generation by an LLM.
pub struct Fuzz4All {
    programs: Vec<o4a_llm::GeneratorProgram>,
    latency_micros: u64,
}

impl Fuzz4All {
    /// Creates the fuzzer (generator programs are drawn in setup).
    pub fn new() -> Fuzz4All {
        Fuzz4All {
            programs: Vec::new(),
            latency_micros: LlmProfile::gpt4().request_latency_micros,
        }
    }
}

impl Default for Fuzz4All {
    fn default() -> Self {
        Self::new()
    }
}

impl Fuzzer for Fuzz4All {
    fn name(&self) -> String {
        "Fuzz4All".into()
    }

    fn setup(&mut self, _rng: &mut StdRng) -> u64 {
        // Autoprompting: a couple of requests to distill the system prompt.
        let mut llm = SimulatedLlm::new(LlmProfile::gpt4());
        let docs = o4a_llm::corpus::corpus();
        for doc in &docs {
            // Fuzz4All does not run self-correction: it samples raw model
            // output. We keep the *uncorrected* generator programs as its
            // output distribution (≈50% invalid, as the paper reports).
            let bnf = llm.summarize_cfg(doc);
            if let Ok(p) = llm.implement_generator(doc.theory, &bnf) {
                self.programs.push(p);
            }
        }
        let _ = ConstructOptions::default();
        llm.spent_micros
    }

    fn next_case(&mut self, rng: &mut StdRng) -> TestCase {
        // One LLM request per generated input: the recurring cost the paper
        // criticizes.
        let mut text = String::new();
        if !self.programs.is_empty() {
            let p = &self.programs[rng.gen_range(0..self.programs.len())];
            let mut sample_rng = StdRng::seed_from_u64(rng.gen());
            let mut decls: Vec<String> = Vec::new();
            let mut asserts: Vec<String> = Vec::new();
            for _ in 0..rng.gen_range(1..=2) {
                if let Ok(raw) = p.generate(&mut sample_rng) {
                    for d in raw.decls {
                        if !decls.contains(&d) {
                            decls.push(d);
                        }
                    }
                    asserts.push(format!("(assert {})", raw.term));
                }
            }
            text = decls.join("\n");
            if !text.is_empty() {
                text.push('\n');
            }
            text.push_str(&asserts.join("\n"));
            text.push_str("\n(check-sat)");
        }
        if text.is_empty() {
            text = "(assert true)\n(check-sat)".into();
        }
        TestCase {
            gen_micros: self.latency_micros + text.len() as u64,
            text,
        }
    }
}

/// The LaST baseline: a retrained language model resampling seed-like
/// structure.
pub struct LaST {
    seeds: Vec<Script>,
}

impl LaST {
    /// Creates the fuzzer over the shared seed pool.
    pub fn new() -> LaST {
        LaST { seeds: seed_pool() }
    }
}

impl Default for LaST {
    fn default() -> Self {
        Self::new()
    }
}

impl Fuzzer for LaST {
    fn name(&self) -> String {
        "LaST".into()
    }

    fn next_case(&mut self, rng: &mut StdRng) -> TestCase {
        let mut script = random_seed(&self.seeds, rng);
        // The retrained model interpolates between seeds: operator
        // resampling plus occasional constant perturbation, with a
        // characteristic ~20% ill-formed tail.
        let swaps = rng.gen_range(1..=4);
        for term in script.assertions_mut() {
            *term = swap_ops(term, swaps, rng);
            *term = term.map_bottom_up(&mut |node| match node {
                Term::Const(o4a_smtlib::Value::Int(i)) if rng.gen_bool(0.3) => {
                    Term::int(i + rng.gen_range(-2..=2))
                }
                other => other,
            });
        }
        let mut text = script.to_string();
        // LM hallucination tail: ~18% of outputs get a token-level defect.
        if rng.gen_bool(0.18) {
            let subs = typed_subterms(&script);
            if let Some((t, _)) = subs
                .iter()
                .find(|(_, s)| matches!(s, Sort::Int | Sort::Bool))
            {
                // Reference an undeclared identifier, the classic LM slip.
                text = text.replacen(&t.to_string(), "undeclared_sym", 1);
            }
        }
        TestCase {
            gen_micros: 900 + text.len() as u64, // local model inference cost
            text,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn validity(fuzzer: &mut dyn Fuzzer, n: usize) -> f64 {
        let mut setup_rng = StdRng::seed_from_u64(0);
        fuzzer.setup(&mut setup_rng);
        let mut rng = StdRng::seed_from_u64(13);
        let mut ok = 0;
        for _ in 0..n {
            let case = fuzzer.next_case(&mut rng);
            if o4a_smtlib::parse_script(&case.text)
                .map_err(|e| e.to_string())
                .and_then(|s| {
                    o4a_smtlib::typeck::check_script(&s)
                        .map(|_| ())
                        .map_err(|e| e.to_string())
                })
                .is_ok()
            {
                ok += 1;
            }
        }
        ok as f64 / n as f64
    }

    #[test]
    fn fuzz4all_validity_is_mediocre() {
        // The paper reports ≈50% invalid for direct LLM generation.
        let v = validity(&mut Fuzz4All::new(), 120);
        assert!(v < 0.8, "Fuzz4All validity {v} suspiciously high");
        assert!(v > 0.15, "Fuzz4All validity {v} suspiciously low");
    }

    #[test]
    fn fuzz4all_pays_latency_per_case() {
        let mut f = Fuzz4All::new();
        let mut rng = StdRng::seed_from_u64(0);
        f.setup(&mut rng);
        let case = f.next_case(&mut rng);
        assert!(case.gen_micros >= 1_000_000, "per-case LLM latency missing");
    }

    #[test]
    fn last_validity_is_high_but_imperfect() {
        let v = validity(&mut LaST::new(), 120);
        assert!(v > 0.6, "LaST validity {v} too low");
        assert!(v < 0.98, "LaST validity {v} too perfect");
    }

    #[test]
    fn last_stays_in_standard_theories() {
        let mut f = LaST::new();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..60 {
            let case = f.next_case(&mut rng);
            assert!(!case.text.contains("ff."));
            assert!(!case.text.contains("set."));
        }
    }
}
