//! Mutation-based baselines: OpFuzz, TypeFuzz, Storm, and YinYang.
//!
//! Each implements the published technique's *input-distribution essence*
//! on our substrate: what matters for the comparison is which regions of
//! the input space each baseline can reach (operator swaps cannot invent
//! new theories; seed fusion cannot invent quantifiers that no seed has;
//! none of them can reach cvc5-only extensions absent from seeds).

use crate::common::{random_seed, seed_pool, swap_ops, typed_subterms};
use o4a_core::{Fuzzer, TestCase};
use o4a_smtlib::{Command, Op, Script, Sort, Term};
use rand::rngs::StdRng;
use rand::Rng;

/// OpFuzz (Winterer et al., OOPSLA 2020): type-aware operator mutation of
/// seed formulas.
pub struct OpFuzz {
    seeds: Vec<Script>,
}

impl OpFuzz {
    /// Creates the fuzzer over the shared seed pool.
    pub fn new() -> OpFuzz {
        OpFuzz { seeds: seed_pool() }
    }
}

impl Default for OpFuzz {
    fn default() -> Self {
        Self::new()
    }
}

impl Fuzzer for OpFuzz {
    fn name(&self) -> String {
        "OpFuzz".into()
    }

    fn next_case(&mut self, rng: &mut StdRng) -> TestCase {
        let mut script = random_seed(&self.seeds, rng);
        let swaps = rng.gen_range(1..=3);
        for term in script.assertions_mut() {
            *term = swap_ops(term, swaps, rng);
        }
        let text = script.to_string();
        let gen_micros = 60 + text.len() as u64 / 2;
        TestCase { text, gen_micros }
    }
}

/// TypeFuzz (Park et al., OOPSLA 2021): generative type-aware mutation —
/// replace a subterm with a fresh term of the same sort built from other
/// subterms of that sort.
pub struct TypeFuzz {
    seeds: Vec<Script>,
}

impl TypeFuzz {
    /// Creates the fuzzer over the shared seed pool.
    pub fn new() -> TypeFuzz {
        TypeFuzz { seeds: seed_pool() }
    }

    /// Builds a same-sort replacement from pool terms (the "generative"
    /// part: new operators applied to existing well-typed pieces).
    fn build_replacement(sort: &Sort, pool: &[(Term, Sort)], rng: &mut StdRng) -> Option<Term> {
        let same: Vec<&Term> = pool
            .iter()
            .filter(|(_, s)| s == sort)
            .map(|(t, _)| t)
            .collect();
        if same.is_empty() {
            return None;
        }
        let pick = |rng: &mut StdRng| same[rng.gen_range(0..same.len())].clone();
        let t = match sort {
            Sort::Int => match rng.gen_range(0..4) {
                0 => Term::App(Op::Add, vec![pick(rng), pick(rng)]),
                1 => Term::App(Op::Mul, vec![pick(rng), Term::int(2)]),
                2 => Term::App(Op::Abs, vec![pick(rng)]),
                _ => Term::App(Op::Mod, vec![pick(rng), Term::int(3)]),
            },
            Sort::Bool => match rng.gen_range(0..3) {
                0 => Term::App(Op::Not, vec![pick(rng)]),
                1 => Term::App(Op::And, vec![pick(rng), pick(rng)]),
                _ => Term::App(Op::Or, vec![pick(rng), pick(rng)]),
            },
            Sort::Real => Term::App(Op::Add, vec![pick(rng), pick(rng)]),
            Sort::String => Term::App(Op::StrConcat, vec![pick(rng), pick(rng)]),
            Sort::BitVec(_) => Term::App(Op::BvAdd, vec![pick(rng), pick(rng)]),
            Sort::Seq(_) => Term::App(Op::SeqConcat, vec![pick(rng), pick(rng)]),
            _ => pick(rng),
        };
        Some(t)
    }
}

impl Default for TypeFuzz {
    fn default() -> Self {
        Self::new()
    }
}

impl Fuzzer for TypeFuzz {
    fn name(&self) -> String {
        "TypeFuzz".into()
    }

    fn next_case(&mut self, rng: &mut StdRng) -> TestCase {
        let mut script = random_seed(&self.seeds, rng);
        let pool = typed_subterms(&script);
        if !pool.is_empty() {
            // Replace one random pooled occurrence per assertion.
            let (target, sort) = pool[rng.gen_range(0..pool.len())].clone();
            if let Some(replacement) = Self::build_replacement(&sort, &pool, rng) {
                for term in script.assertions_mut() {
                    let mut done = false;
                    *term = term.map_bottom_up(&mut |node| {
                        if !done && node == target {
                            done = true;
                            replacement.clone()
                        } else {
                            node
                        }
                    });
                }
            }
        }
        let text = script.to_string();
        // Typed-pool construction dominates TypeFuzz's per-case cost.
        let gen_micros = 2_500 + 3 * text.len() as u64;
        TestCase { text, gen_micros }
    }
}

/// Storm (Mansur et al., ESEC/FSE 2020): blackbox mutation that rebuilds
/// formulas from seed fragments (atom shuffling over satisfying
/// structure).
pub struct Storm {
    seeds: Vec<Script>,
}

impl Storm {
    /// Creates the fuzzer over the shared seed pool.
    pub fn new() -> Storm {
        Storm { seeds: seed_pool() }
    }
}

impl Default for Storm {
    fn default() -> Self {
        Self::new()
    }
}

impl Fuzzer for Storm {
    fn name(&self) -> String {
        "Storm".into()
    }

    fn next_case(&mut self, rng: &mut StdRng) -> TestCase {
        let script = random_seed(&self.seeds, rng);
        let atoms: Vec<(Term, Sort)> = typed_subterms(&script)
            .into_iter()
            .filter(|(t, s)| *s == Sort::Bool && matches!(t, Term::App(_, _)))
            .collect();
        let mut out = Script::new();
        for c in &script.commands {
            if matches!(
                c,
                Command::DeclareConst(_, _)
                    | Command::DeclareFun(_, _, _)
                    | Command::DeclareSort(_)
                    | Command::DefineFun(_, _, _, _)
                    | Command::SetLogic(_)
            ) {
                out.commands.push(c.clone());
            }
        }
        if atoms.is_empty() {
            out.commands.push(Command::Assert(Term::tru()));
        } else {
            // Random conjunction of disjunctions over (possibly negated)
            // seed atoms.
            let clauses = rng.gen_range(1..=3);
            for _ in 0..clauses {
                let width = rng.gen_range(1..=3);
                let mut lits = Vec::new();
                for _ in 0..width {
                    let (a, _) = &atoms[rng.gen_range(0..atoms.len())];
                    let lit = if rng.gen_bool(0.4) {
                        Term::App(Op::Not, vec![a.clone()])
                    } else {
                        a.clone()
                    };
                    lits.push(lit);
                }
                let clause = if lits.len() == 1 {
                    lits.pop().expect("non-empty")
                } else {
                    Term::App(Op::Or, lits)
                };
                out.commands.push(Command::Assert(clause));
            }
        }
        out.ensure_check_sat();
        let text = out.to_string();
        let gen_micros = 100 + text.len() as u64;
        TestCase { text, gen_micros }
    }
}

/// YinYang (Winterer et al., PLDI 2020): semantic fusion of two seed
/// formulas — declarations merged under renaming, assertions combined, and
/// one variable pair fused with an equality bridge.
pub struct YinYang {
    seeds: Vec<Script>,
}

impl YinYang {
    /// Creates the fuzzer over the shared seed pool.
    pub fn new() -> YinYang {
        YinYang { seeds: seed_pool() }
    }
}

impl Default for YinYang {
    fn default() -> Self {
        Self::new()
    }
}

impl Fuzzer for YinYang {
    fn name(&self) -> String {
        "YinYang".into()
    }

    fn next_case(&mut self, rng: &mut StdRng) -> TestCase {
        let first = random_seed(&self.seeds, rng);
        let second = random_seed(&self.seeds, rng);
        let mut out = Script::new();
        let mut declared: Vec<(o4a_smtlib::Symbol, Sort)> = Vec::new();

        // First seed verbatim.
        for c in &first.commands {
            match c {
                Command::CheckSat | Command::GetModel | Command::Exit => {}
                Command::DeclareConst(n, s) => {
                    declared.push((n.clone(), s.clone()));
                    out.commands.push(c.clone());
                }
                other => out.commands.push(other.clone()),
            }
        }
        // Second seed with all declared symbols suffixed to avoid clashes.
        let decls2 = second.declarations();
        let mut renames: Vec<(o4a_smtlib::Symbol, o4a_smtlib::Symbol)> = Vec::new();
        for (name, args, ret) in &decls2 {
            let fresh = name.with_suffix(1);
            renames.push((name.clone(), fresh.clone()));
            if args.is_empty() {
                declared.push((fresh.clone(), ret.clone()));
                out.commands.push(Command::DeclareConst(fresh, ret.clone()));
            } else {
                out.commands
                    .push(Command::DeclareFun(fresh, args.clone(), ret.clone()));
            }
        }
        for a in second.assertions() {
            let mut t = a.clone();
            for (from, to) in &renames {
                t = t.rename_free_var(from, to);
            }
            out.commands.push(Command::Assert(t));
        }
        // Fusion bridge: equate one same-sort variable pair across seeds.
        let mut by_sort: std::collections::BTreeMap<&Sort, Vec<&o4a_smtlib::Symbol>> =
            Default::default();
        for (n, s) in &declared {
            by_sort.entry(s).or_default().push(n);
        }
        if let Some(group) = by_sort.values().find(|g| g.len() >= 2) {
            let a = group[rng.gen_range(0..group.len())];
            let b = group[rng.gen_range(0..group.len())];
            if a != b {
                out.commands.push(Command::Assert(Term::App(
                    Op::Eq,
                    vec![Term::Var(a.clone()), Term::Var(b.clone())],
                )));
            }
        }
        out.ensure_check_sat();
        let text = out.to_string();
        // Fusion pre-solves both seeds, the dominant per-case cost.
        let gen_micros = 3_000 + 2 * text.len() as u64;
        TestCase { text, gen_micros }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use o4a_smtlib::typeck;
    use rand::SeedableRng;

    fn well_formed_rate(fuzzer: &mut dyn Fuzzer, n: usize) -> f64 {
        let mut rng = StdRng::seed_from_u64(11);
        let mut ok = 0;
        for _ in 0..n {
            let case = fuzzer.next_case(&mut rng);
            if o4a_smtlib::parse_script(&case.text)
                .map_err(|e| e.to_string())
                .and_then(|s| {
                    typeck::check_script(&s)
                        .map(|_| ())
                        .map_err(|e| e.to_string())
                })
                .is_ok()
            {
                ok += 1;
            }
        }
        ok as f64 / n as f64
    }

    #[test]
    fn opfuzz_output_is_overwhelmingly_valid() {
        let rate = well_formed_rate(&mut OpFuzz::new(), 80);
        assert!(rate > 0.95, "OpFuzz validity {rate}");
    }

    #[test]
    fn typefuzz_output_is_mostly_valid() {
        let rate = well_formed_rate(&mut TypeFuzz::new(), 80);
        assert!(rate > 0.9, "TypeFuzz validity {rate}");
    }

    #[test]
    fn storm_output_is_valid() {
        let rate = well_formed_rate(&mut Storm::new(), 80);
        assert!(rate > 0.95, "Storm validity {rate}");
    }

    #[test]
    fn yinyang_output_is_valid() {
        let rate = well_formed_rate(&mut YinYang::new(), 60);
        assert!(rate > 0.9, "YinYang validity {rate}");
    }

    #[test]
    fn baselines_never_emit_cvc5_extensions() {
        // The decisive structural limitation: mutation of standard-theory
        // seeds cannot reach Sets/Bags/FiniteFields.
        let mut rng = StdRng::seed_from_u64(5);
        for fuzzer in [
            &mut OpFuzz::new() as &mut dyn Fuzzer,
            &mut TypeFuzz::new(),
            &mut Storm::new(),
            &mut YinYang::new(),
        ] {
            for _ in 0..40 {
                let case = fuzzer.next_case(&mut rng);
                assert!(!case.text.contains("ff."), "{}", fuzzer.name());
                assert!(!case.text.contains("set."), "{}", fuzzer.name());
                assert!(!case.text.contains("bag"), "{}", fuzzer.name());
            }
        }
    }

    #[test]
    fn opfuzz_actually_mutates() {
        let mut f = OpFuzz::new();
        let mut rng = StdRng::seed_from_u64(2);
        let seeds: Vec<String> = seed_pool().iter().map(|s| s.to_string()).collect();
        let mut changed = 0;
        for _ in 0..40 {
            let case = f.next_case(&mut rng);
            if !seeds.contains(&case.text) {
                changed += 1;
            }
        }
        assert!(changed > 20, "only {changed}/40 cases differ from seeds");
    }

    #[test]
    fn yinyang_merges_two_seeds() {
        let mut f = YinYang::new();
        let mut rng = StdRng::seed_from_u64(8);
        let case = f.next_case(&mut rng);
        assert!(case.text.contains("!1"), "no renamed second-seed symbol");
    }
}
