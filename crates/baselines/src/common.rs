//! Shared machinery for the baseline fuzzers: seed pools, operator swap
//! tables, atom mining, and typed-subterm collection.

use o4a_core::parsed_seeds;
use o4a_smtlib::typeck::{check_term, SortContext};
use o4a_smtlib::{Op, Script, Sort, Term};
use rand::rngs::StdRng;
use rand::Rng;

/// A shared, lazily-parsed seed pool (all baselines use the same seeds as
/// Once4All, per the paper's fair-comparison protocol).
pub fn seed_pool() -> Vec<Script> {
    parsed_seeds()
}

/// Picks a random seed.
pub fn random_seed(seeds: &[Script], rng: &mut StdRng) -> Script {
    seeds[rng.gen_range(0..seeds.len())].clone()
}

/// Type-preserving operator swap groups (the OpFuzz mutation space).
pub fn swap_group(op: &Op) -> Option<&'static [Op]> {
    use Op::*;
    const CMP: &[Op] = &[Le, Lt, Ge, Gt];
    const EQ: &[Op] = &[Eq, Distinct];
    const BOOL2: &[Op] = &[And, Or, Xor];
    const ARITH: &[Op] = &[Add, Sub, Mul];
    const IDIV: &[Op] = &[IntDiv, Mod];
    const BVA: &[Op] = &[BvAdd, BvSub, BvMul];
    const BVB: &[Op] = &[BvAnd, BvOr, BvXor];
    const BVCMP: &[Op] = &[BvUlt, BvUle, BvUgt, BvUge, BvSlt, BvSle, BvSgt, BvSge];
    const BVSH: &[Op] = &[BvShl, BvLshr, BvAshr];
    const STRP: &[Op] = &[StrContains, StrPrefixof, StrSuffixof];
    const STRC: &[Op] = &[StrLt, StrLe];
    const SEQP: &[Op] = &[SeqPrefixof, SeqSuffixof, SeqContains];
    let group: &[Op] = match op {
        Le | Lt | Ge | Gt => CMP,
        Eq | Distinct => EQ,
        And | Or | Xor => BOOL2,
        Add | Sub | Mul => ARITH,
        IntDiv | Mod => IDIV,
        BvAdd | BvSub | BvMul => BVA,
        BvAnd | BvOr | BvXor => BVB,
        BvUlt | BvUle | BvUgt | BvUge | BvSlt | BvSle | BvSgt | BvSge => BVCMP,
        BvShl | BvLshr | BvAshr => BVSH,
        StrContains | StrPrefixof | StrSuffixof => STRP,
        StrLt | StrLe => STRC,
        SeqPrefixof | SeqSuffixof | SeqContains => SEQP,
        _ => return None,
    };
    Some(group)
}

/// Replaces `count` random swappable operators in a term.
pub fn swap_ops(term: &Term, count: usize, rng: &mut StdRng) -> Term {
    // First pass: index swappable positions.
    let mut positions = 0usize;
    term.visit(&mut |t| {
        if let Term::App(op, _) = t {
            if swap_group(op).is_some() {
                positions += 1;
            }
        }
    });
    if positions == 0 {
        return term.clone();
    }
    let targets: Vec<usize> = (0..count.max(1))
        .map(|_| rng.gen_range(0..positions))
        .collect();
    let mut idx = 0usize;
    let mut replacements: Vec<(usize, Op)> = Vec::new();
    term.visit(&mut |t| {
        if let Term::App(op, _) = t {
            if let Some(group) = swap_group(op) {
                if targets.contains(&idx) {
                    let choice = group[rng.gen_range(0..group.len())].clone();
                    replacements.push((idx, choice));
                }
                idx += 1;
            }
        }
    });
    // Second pass: rebuild.
    let mut seen = 0usize;
    rebuild_with_swaps(term, &mut seen, &replacements)
}

fn rebuild_with_swaps(t: &Term, seen: &mut usize, repl: &[(usize, Op)]) -> Term {
    match t {
        Term::App(op, args) => {
            // Pre-order numbering, matching the indexing pass above.
            let mut new_op = op.clone();
            if swap_group(op).is_some() {
                if let Some((_, r)) = repl.iter().find(|(i, _)| *i == *seen) {
                    new_op = r.clone();
                }
                *seen += 1;
            }
            let new_args: Vec<Term> = args
                .iter()
                .map(|a| rebuild_with_swaps(a, seen, repl))
                .collect();
            Term::App(new_op, new_args)
        }
        Term::Let(binds, body) => Term::Let(
            binds
                .iter()
                .map(|(n, v)| (n.clone(), rebuild_with_swaps(v, seen, repl)))
                .collect(),
            Box::new(rebuild_with_swaps(body, seen, repl)),
        ),
        Term::Quant(q, vars, body) => Term::Quant(
            *q,
            vars.clone(),
            Box::new(rebuild_with_swaps(body, seen, repl)),
        ),
        other => other.clone(),
    }
}

/// Collects binder-free subterms of the script's assertions together with
/// their sorts (TypeFuzz's replacement pool).
pub fn typed_subterms(script: &Script) -> Vec<(Term, Sort)> {
    let Ok(ctx) = SortContext::from_script(script) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for a in script.assertions() {
        collect_free_subterms(a, &ctx, &mut out);
    }
    out
}

fn collect_free_subterms(t: &Term, ctx: &SortContext, out: &mut Vec<(Term, Sort)>) {
    // Stop at binders: bound variables make sorts context-dependent.
    match t {
        Term::Quant(_, _, _) | Term::Let(_, _) => {}
        Term::App(_, args) => {
            if let Ok(sort) = check_term(t, ctx) {
                out.push((t.clone(), sort));
            }
            for a in args {
                collect_free_subterms(a, ctx, out);
            }
        }
        Term::Var(_) | Term::Const(_) => {
            if let Ok(sort) = check_term(t, ctx) {
                out.push((t.clone(), sort));
            }
        }
        Term::Placeholder(_) => {}
    }
}

/// Mines Boolean atoms (non-connective Boolean subterms outside binders)
/// from a set of scripts — HistFuzz's historical-atom pool.
pub fn mine_atoms(scripts: &[Script]) -> Vec<(Term, Script)> {
    let mut out = Vec::new();
    for s in scripts {
        for (t, sort) in typed_subterms(s) {
            if sort == Sort::Bool && !t.is_logical_connective() && matches!(t, Term::App(_, _)) {
                out.push((t, s.clone()));
            }
        }
    }
    out
}

/// Builds the full declaration prefix needed by `term`'s free variables,
/// looked up in its origin script. Returns `None` when a symbol cannot be
/// resolved (e.g. mined from under a binder).
pub fn decls_for(term: &Term, origin: &Script) -> Option<Vec<o4a_smtlib::Command>> {
    let decls = origin.declarations();
    let mut out = Vec::new();
    for v in term.free_vars() {
        let (name, args, ret) = decls.iter().find(|(n, _, _)| *n == v)?.clone();
        out.push(if args.is_empty() {
            o4a_smtlib::Command::DeclareConst(name, ret)
        } else {
            o4a_smtlib::Command::DeclareFun(name, args, ret)
        });
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use o4a_smtlib::parse_script;
    use rand::SeedableRng;

    #[test]
    fn swap_groups_are_type_preserving() {
        for op in Op::all_simple() {
            if let Some(group) = swap_group(&op) {
                assert!(group.contains(&op), "{op:?} not in its own group");
                for other in group {
                    assert_eq!(
                        op.theory().is_standard(),
                        other.theory().is_standard(),
                        "{op:?} vs {other:?} cross theory class"
                    );
                }
            }
        }
    }

    #[test]
    fn swap_ops_keeps_well_sortedness() {
        let s = parse_script(
            "(declare-const x Int)(declare-const y Int)\
             (assert (and (< x y) (= (+ x 1) (* y 2))))(check-sat)",
        )
        .unwrap();
        let term = s.assertions().next().unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..30 {
            let mutated = swap_ops(term, 2, &mut rng);
            let mut s2 = s.clone();
            *s2.assertions_mut().next().unwrap() = mutated;
            o4a_smtlib::typeck::check_script(&s2).unwrap_or_else(|e| panic!("{e}\n{s2}"));
        }
    }

    #[test]
    fn typed_subterms_exclude_binder_scopes() {
        let s = parse_script(
            "(declare-const x Int)\
             (assert (and (> x 0) (forall ((k Int)) (distinct k x))))(check-sat)",
        )
        .unwrap();
        let subs = typed_subterms(&s);
        assert!(subs.iter().any(|(t, _)| t.to_string() == "(> x 0)"));
        // Terms from inside the binder scope (mentioning `k` freely) must
        // be excluded; the enclosing quantified term itself is fine since
        // it is closed.
        assert!(
            !subs.iter().any(|(t, _)| t.free_vars().contains("k")),
            "binder-scoped terms must be excluded"
        );
        assert!(
            !subs.iter().any(|(t, _)| t.to_string() == "(distinct k x)"),
            "the binder-internal atom must not be pooled"
        );
    }

    #[test]
    fn atom_mining_finds_atoms() {
        let pool = mine_atoms(&seed_pool());
        assert!(pool.len() > 50, "only {} atoms mined", pool.len());
        for (t, _) in pool.iter().take(20) {
            assert!(!t.is_logical_connective());
        }
    }

    #[test]
    fn decls_for_resolves_free_vars() {
        let s = parse_script(
            "(declare-const x Int)(declare-fun f (Int) Int)\
             (assert (= (f x) 0))(check-sat)",
        )
        .unwrap();
        let term = s.assertions().next().unwrap();
        let decls = decls_for(term, &s).unwrap();
        assert_eq!(decls.len(), 2);
    }
}
