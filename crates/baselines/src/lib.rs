//! # o4a-baselines
//!
//! The eight comparison fuzzers of the paper's RQ2 (Figures 6–7), all
//! implementing [`o4a_core::Fuzzer`] so the shared campaign runner
//! compares them under identical seeds, solvers, and time accounting:
//!
//! | Baseline | Class | Simulated essence |
//! |---|---|---|
//! | ET | generation | expert grammar, systematic enumeration, standard theories |
//! | Storm | mutation | atom shuffling over seed fragments |
//! | YinYang | mutation | semantic fusion of seed pairs |
//! | OpFuzz | mutation | type-aware operator swaps |
//! | TypeFuzz | mutation | generative same-sort subterm replacement |
//! | HistFuzz | mutation | seed skeletons + mined seed atoms |
//! | Fuzz4All | LLM | whole-formula generation, per-case LLM latency, ~50% invalid |
//! | LaST | LLM | retrained-LM seed interpolation, ~80% valid |

#![warn(missing_docs)]

mod common;
mod et;
mod histfuzz;
mod llm_based;
mod mutation;

pub use common::{mine_atoms, seed_pool, swap_group, swap_ops, typed_subterms};
pub use et::Et;
pub use histfuzz::HistFuzz;
pub use llm_based::{Fuzz4All, LaST};
pub use mutation::{OpFuzz, Storm, TypeFuzz, YinYang};

use o4a_core::Fuzzer;

/// All baselines, freshly constructed, in the order the paper's figures
/// list them.
pub fn all_baselines() -> Vec<Box<dyn Fuzzer>> {
    vec![
        Box::new(Et::new()),
        Box::new(Fuzz4All::new()),
        Box::new(HistFuzz::new()),
        Box::new(LaST::new()),
        Box::new(OpFuzz::new()),
        Box::new(Storm::new()),
        Box::new(TypeFuzz::new()),
        Box::new(YinYang::new()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_baselines_constructible_and_named() {
        let names: Vec<String> = all_baselines().iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            vec!["ET", "Fuzz4All", "HistFuzz", "LaST", "OpFuzz", "Storm", "TypeFuzz", "YinYang"]
        );
    }
}
