//! ET (Winterer & Su, OOPSLA 2024): grammar-based enumeration from
//! expert-crafted generation rules. The hand-written grammar below covers
//! the *standard* theories carefully (that is exactly what expert effort
//! buys) but, by design, knows nothing about recently added or
//! solver-specific extensions — the paper's core criticism of
//! generation-based approaches.

use o4a_core::{Fuzzer, TestCase};
use o4a_grammar::{Deriver, Grammar, Hooks};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::RefCell;

/// The expert-crafted enumeration grammar (standard theories only).
const ET_GRAMMAR: &str = "\
<Formula> ::= <BoolTerm>
<BoolTerm> ::= <Atom>
 | (not <BoolTerm>)
 | (and <BoolTerm> <BoolTerm>)
 | (or <BoolTerm> <BoolTerm>)
 | (=> <BoolTerm> <BoolTerm>)
 | (xor <BoolTerm> <BoolTerm>)
 | (ite <BoolTerm> <BoolTerm> <BoolTerm>)
<Atom> ::= (= <IntTerm> <IntTerm>) | (< <IntTerm> <IntTerm>) | (<= <IntTerm> <IntTerm>)
 | (> <IntTerm> <IntTerm>) | (>= <IntTerm> <IntTerm>) | (distinct <IntTerm> <IntTerm>)
 | (= <RealTerm> <RealTerm>) | (< <RealTerm> <RealTerm>)
 | (= <StrTerm> <StrTerm>) | (str.contains <StrTerm> <StrTerm>)
 | (str.prefixof <StrTerm> <StrTerm>)
 | (= <BvTerm> <BvTerm>) | (bvult <BvTerm> <BvTerm>) | (bvslt <BvTerm> <BvTerm>)
 | ((_ divisible 3) <IntTerm>)
<IntTerm> ::= <ic> | <iv> | (+ <IntTerm> <IntTerm>) | (- <IntTerm> <IntTerm>)
 | (* <IntTerm> <IntTerm>) | (div <IntTerm> <IntTerm>) | (mod <IntTerm> <IntTerm>)
 | (abs <IntTerm>) | (str.len <StrTerm>) | (str.to_int <StrTerm>)
<RealTerm> ::= <rc> | <rv> | (+ <RealTerm> <RealTerm>) | (- <RealTerm> <RealTerm>)
 | (* <RealTerm> <RealTerm>) | (/ <RealTerm> <RealTerm>) | (to_real <IntTerm>)
<StrTerm> ::= <sc> | <sv> | (str.++ <StrTerm> <StrTerm>) | (str.at <StrTerm> <IntTerm>)
 | (str.substr <StrTerm> <IntTerm> <IntTerm>) | (str.replace <StrTerm> <StrTerm> <StrTerm>)
 | (str.from_int <IntTerm>)
<BvTerm> ::= <bc> | <bv> | (bvadd <BvTerm> <BvTerm>) | (bvsub <BvTerm> <BvTerm>)
 | (bvmul <BvTerm> <BvTerm>) | (bvand <BvTerm> <BvTerm>) | (bvor <BvTerm> <BvTerm>)
 | (bvnot <BvTerm>) | (bvneg <BvTerm>) | (bvshl <BvTerm> <BvTerm>)
";

/// The ET baseline.
pub struct Et {
    grammar: Grammar,
    /// Enumeration index: seeds the per-case RNG so the stream is a
    /// systematic walk rather than i.i.d. sampling.
    index: u64,
}

impl Et {
    /// Creates the fuzzer.
    ///
    /// # Panics
    ///
    /// Panics when the built-in grammar fails to parse (compile-time bug,
    /// covered by tests).
    pub fn new() -> Et {
        Et {
            grammar: Grammar::parse_bnf(ET_GRAMMAR).expect("built-in ET grammar parses"),
            index: 0,
        }
    }
}

impl Default for Et {
    fn default() -> Self {
        Self::new()
    }
}

impl Fuzzer for Et {
    fn name(&self) -> String {
        "ET".into()
    }

    fn next_case(&mut self, rng: &mut StdRng) -> TestCase {
        let _ = rng; // enumeration order is internal and systematic
        self.index += 1;
        // Depth grows slowly with the enumeration index (small formulas
        // first, as grammar enumeration does).
        let depth = 3 + (self.index / 500).min(5) as usize;
        let mut case_rng = StdRng::seed_from_u64(0xe7 ^ self.index);
        let decls = RefCell::new(Vec::<String>::new());
        let var = |prefix: &str, sort: &str, decls: &RefCell<Vec<String>>, n: u32| {
            let k = n % 3;
            let name = format!("{prefix}{k}");
            let line = format!("(declare-const {name} {sort})");
            let mut d = decls.borrow_mut();
            if !d.contains(&line) {
                d.push(line);
            }
            name
        };
        let mut hooks = Hooks::new();
        hooks.register("ic", |r| (r.next_u32() % 9).to_string());
        hooks.register("iv", |r| var("ei", "Int", &decls, r.next_u32()));
        hooks.register("rc", |r| {
            format!("{}.{}", r.next_u32() % 4, r.next_u32() % 10)
        });
        hooks.register("rv", |r| var("er", "Real", &decls, r.next_u32()));
        hooks.register("sc", |r| {
            let n = r.next_u32() % 3;
            let body: String = (0..n)
                .map(|_| (b'a' + (r.next_u32() % 2) as u8) as char)
                .collect();
            format!("\"{body}\"")
        });
        hooks.register("sv", |r| var("es", "String", &decls, r.next_u32()));
        hooks.register("bc", |r| format!("(_ bv{} 8)", r.next_u32() % 256));
        hooks.register("bv", |r| var("eb", "(_ BitVec 8)", &decls, r.next_u32()));
        let term = Deriver::new(&self.grammar)
            .max_depth(depth)
            .derive(&mut case_rng, &mut hooks)
            .unwrap_or_else(|_| "true".to_string());
        let mut text = decls.borrow().join("\n");
        if !text.is_empty() {
            text.push('\n');
        }
        text.push_str(&format!("(assert {term})\n(check-sat)"));
        let gen_micros = 40 + text.len() as u64 / 2;
        TestCase { text, gen_micros }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_compiles() {
        let g = Grammar::parse_bnf(ET_GRAMMAR).unwrap();
        assert!(g.production_count() > 40);
    }

    #[test]
    fn et_output_is_valid() {
        let mut f = Et::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut ok = 0;
        for _ in 0..80 {
            let case = f.next_case(&mut rng);
            if o4a_smtlib::parse_script(&case.text)
                .map_err(|e| e.to_string())
                .and_then(|s| {
                    o4a_smtlib::typeck::check_script(&s)
                        .map(|_| ())
                        .map_err(|e| e.to_string())
                })
                .is_ok()
            {
                ok += 1;
            }
        }
        assert!(ok >= 76, "only {ok}/80 valid");
    }

    #[test]
    fn et_is_systematic_not_random() {
        // Two instances walking from index 0 produce identical streams.
        let mut a = Et::new();
        let mut b = Et::new();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(a.next_case(&mut rng).text, b.next_case(&mut rng).text);
        }
    }

    #[test]
    fn et_never_emits_quantifiers_or_extensions() {
        let mut f = Et::new();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..60 {
            let case = f.next_case(&mut rng);
            assert!(!case.text.contains("forall"));
            assert!(!case.text.contains("exists"));
            assert!(!case.text.contains("seq."));
            assert!(!case.text.contains("ff."));
        }
    }
}
