//! HistFuzz (Sun et al., ICSE 2023): skeletons from historical
//! bug-triggering formulas, filled with *atoms mined from the same seed
//! corpus* — the strongest mutation baseline and Once4All's direct
//! ancestor. The difference from Once4All is exactly the generator source:
//! HistFuzz can only recombine atoms that already exist in seeds, so new
//! and solver-specific theories stay out of reach.

use crate::common::{decls_for, mine_atoms, seed_pool};
use o4a_core::{skeletonize, Fuzzer, ParsedFill, SkeletonConfig, TestCase};
use o4a_smtlib::{Script, Sort, Term};
use rand::rngs::StdRng;
use rand::Rng;

/// The HistFuzz baseline.
pub struct HistFuzz {
    seeds: Vec<Script>,
    /// Atom pool: (atom, origin script) pairs.
    atoms: Vec<(Term, Script)>,
    skeleton: SkeletonConfig,
}

impl HistFuzz {
    /// Creates the fuzzer, mining the atom pool from the shared seeds.
    pub fn new() -> HistFuzz {
        let seeds = seed_pool();
        let atoms = mine_atoms(&seeds);
        HistFuzz {
            seeds,
            atoms,
            skeleton: SkeletonConfig::default(),
        }
    }

    /// Converts a mined atom into a fill with its original declarations.
    fn atom_fill(&self, idx: usize) -> Option<ParsedFill> {
        let (atom, origin) = &self.atoms[idx];
        let decls = decls_for(atom, origin)?;
        let decls = decls
            .into_iter()
            .filter_map(|c| match c {
                o4a_smtlib::Command::DeclareConst(n, s) => Some((n, s)),
                // Atoms whose free symbols include n-ary functions cannot be
                // re-declared as constants; skip them.
                _ => None,
            })
            .collect::<Vec<(o4a_smtlib::Symbol, Sort)>>();
        // Reject atoms that needed an n-ary function (decl count mismatch).
        if decls.len() != atom.free_vars().len() {
            return None;
        }
        Some(ParsedFill {
            decls,
            term: atom.clone(),
        })
    }
}

impl Default for HistFuzz {
    fn default() -> Self {
        Self::new()
    }
}

impl Fuzzer for HistFuzz {
    fn name(&self) -> String {
        "HistFuzz".into()
    }

    fn next_case(&mut self, rng: &mut StdRng) -> TestCase {
        let seed = self.seeds[rng.gen_range(0..self.seeds.len())].clone();
        let skeleton = skeletonize(&seed, self.skeleton, rng);
        let mut fills = Vec::new();
        for _ in 0..rng.gen_range(1..=2) {
            if self.atoms.is_empty() {
                break;
            }
            let idx = rng.gen_range(0..self.atoms.len());
            if let Some(fill) = self.atom_fill(idx) {
                fills.push(o4a_core::adapt_fill(&fill, &skeleton, rng));
            }
        }
        let script = if fills.is_empty() {
            seed
        } else {
            o4a_core::synthesize(&skeleton, &fills, rng)
        };
        let text = script.to_string();
        let gen_micros = 140 + text.len() as u64;
        TestCase { text, gen_micros }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn histfuzz_output_is_mostly_valid() {
        let mut f = HistFuzz::new();
        let mut rng = StdRng::seed_from_u64(4);
        let mut ok = 0;
        for _ in 0..60 {
            let case = f.next_case(&mut rng);
            if o4a_smtlib::parse_script(&case.text)
                .map_err(|e| e.to_string())
                .and_then(|s| {
                    o4a_smtlib::typeck::check_script(&s)
                        .map(|_| ())
                        .map_err(|e| e.to_string())
                })
                .is_ok()
            {
                ok += 1;
            }
        }
        assert!(ok >= 54, "only {ok}/60 valid");
    }

    #[test]
    fn histfuzz_preserves_quantified_skeletons() {
        let mut f = HistFuzz::new();
        let mut rng = StdRng::seed_from_u64(5);
        let mut quantified = 0;
        for _ in 0..80 {
            if f.next_case(&mut rng).text.contains("exists")
                || f.next_case(&mut rng).text.contains("forall")
            {
                quantified += 1;
            }
        }
        assert!(quantified > 10);
    }

    #[test]
    fn histfuzz_recombines_seed_atoms_only() {
        let mut f = HistFuzz::new();
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..40 {
            let case = f.next_case(&mut rng);
            assert!(!case.text.contains("ff."));
            assert!(!case.text.contains("set."));
        }
    }
}
