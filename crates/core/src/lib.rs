//! # o4a-core
//!
//! The Once4All fuzzing framework (the paper's primary contribution):
//! skeleton-guided mutation with LLM-synthesized term generators, a
//! differential oracle with model re-evaluation, triage/deduplication,
//! correcting-commit bisection, bug-lifespan analysis, and the campaign
//! runner behind every evaluation figure.
//!
//! ```no_run
//! use o4a_core::{run_campaign, CampaignConfig, Once4AllConfig, Once4AllFuzzer};
//!
//! let mut fuzzer = Once4AllFuzzer::new(Once4AllConfig::default());
//! let result = run_campaign(&mut fuzzer, &CampaignConfig::default());
//! println!("{} cases, {} bug-triggering", result.stats.cases,
//!          result.stats.bug_triggering);
//! ```

#![warn(missing_docs)]

pub mod bisect;
pub mod campaign;
pub mod fill;
pub mod fuzzer;
pub mod lifespan;
pub mod oracle;
pub mod seeds;
pub mod skeleton;
pub mod triage;

pub use bisect::correcting_commit;
pub use campaign::{
    run_campaign, CampaignConfig, CampaignResult, CampaignStats, CampaignStepper, CaseExecution,
    CoveragePoint, HourlySnapshot, SolverRun, StepOutcome,
};
pub use fill::{
    adapt_fill, adapt_fill_arena, parse_fill, parse_fill_into, synthesize, synthesize_arena,
    ArenaFill, ParsedFill, ADAPT_PROBABILITY,
};
pub use fuzzer::{FrontendValidator, Fuzzer, Once4AllConfig, Once4AllFuzzer, TestCase};
pub use lifespan::{lifespan_series, long_latent_count, LifespanPoint};
pub use oracle::{judge, model_satisfies, Verdict};
pub use seeds::{parsed_seeds, SEED_TEXTS};
pub use skeleton::{skeletonize, skeletonize_arena, ArenaSkeleton, Skeleton, SkeletonConfig};
pub use triage::{
    attribute, dedup, dedup_refs, extended_theory_count, status_table, type_table, Finding,
    FoundKind, Issue, StatusCounts,
};
