//! Term adaptation and formula synthesis (paper §3.3, steps 2–3): parse
//! generator output, rename generated variables to sort-compatible skeleton
//! variables, merge declarations, and fill the placeholders.

use crate::skeleton::{ArenaSkeleton, Skeleton};
use o4a_llm::RawTerm;
use o4a_smtlib::{
    parse_script, parse_script_arena, typeck, ArenaCommand, ArenaScript, Command, Script, Sort,
    Symbol, Term, TermArena, TermId,
};
use rand::Rng;
use std::collections::BTreeMap;

/// A parsed, well-formed generator sample ready for insertion.
#[derive(Clone, Debug)]
pub struct ParsedFill {
    /// Declarations the term needs (name → sort).
    pub decls: Vec<(Symbol, Sort)>,
    /// The Boolean term.
    pub term: Term,
}

/// Parses and validates one generator sample.
///
/// # Errors
///
/// Returns the solver-style error message when the sample does not parse
/// or does not sort-check as a Boolean assertion — the fuzzer then submits
/// the raw text instead (invalid inputs still exercise solver frontends).
pub fn parse_fill(raw: &RawTerm) -> Result<ParsedFill, String> {
    let script_text = raw.to_script_text();
    let script = parse_script(&script_text).map_err(|e| e.to_string())?;
    typeck::check_script(&script).map_err(|e| e.to_string())?;
    let decls = script
        .declarations()
        .into_iter()
        .filter(|(_, args, _)| args.is_empty())
        .map(|(n, _, s)| (n, s))
        .collect();
    let term = script
        .assertions()
        .next()
        .cloned()
        .ok_or_else(|| "generator sample has no assertion".to_string())?;
    Ok(ParsedFill { decls, term })
}

/// Probability that a generated variable with a sort-compatible skeleton
/// variable is renamed to it ("enhancing semantic interactions", §3.3).
pub const ADAPT_PROBABILITY: f64 = 0.6;

/// Adapts a fill to a skeleton: generated variables are renamed to skeleton
/// variables of the same sort with [`ADAPT_PROBABILITY`]; adapted variables
/// lose their own declarations.
pub fn adapt_fill(fill: &ParsedFill, skeleton: &Skeleton, rng: &mut impl Rng) -> ParsedFill {
    let mut by_sort: BTreeMap<&Sort, Vec<&Symbol>> = BTreeMap::new();
    for (name, sort) in &skeleton.variables {
        by_sort.entry(sort).or_default().push(name);
    }
    let mut term = fill.term.clone();
    let mut decls = Vec::new();
    for (name, sort) in &fill.decls {
        let candidates = by_sort.get(sort);
        let adapt = candidates
            .filter(|c| !c.is_empty())
            .filter(|_| rng.gen_bool(ADAPT_PROBABILITY));
        match adapt {
            Some(c) => {
                let target = c[rng.gen_range(0..c.len())].clone();
                term = term.rename_free_var(name, &target);
            }
            None => decls.push((name.clone(), sort.clone())),
        }
    }
    ParsedFill { decls, term }
}

/// Fills a skeleton's placeholders with adapted terms and merges
/// declarations, producing a complete test script ending in `check-sat`.
///
/// Generated declarations that clash with existing names (same name,
/// different sort) are renamed with a numeric suffix; clashes with equal
/// sorts are merged silently.
pub fn synthesize(skeleton: &Skeleton, fills: &[ParsedFill], rng: &mut impl Rng) -> Script {
    let mut script = skeleton.script.clone();
    crate::skeleton::strip_commands(&mut script);

    // Merge declarations, renaming on sort clashes.
    let mut declared: BTreeMap<Symbol, Sort> = skeleton
        .script
        .declarations()
        .into_iter()
        .filter(|(_, args, _)| args.is_empty())
        .map(|(n, _, s)| (n, s))
        .collect();
    let mut renames: Vec<(Symbol, Symbol)> = Vec::new();
    let mut new_decls: Vec<(Symbol, Sort)> = Vec::new();
    for fill in fills {
        for (name, sort) in &fill.decls {
            match declared.get(name) {
                Some(existing) if existing == sort => {} // share the variable
                Some(_) => {
                    let mut k = 0u64;
                    let fresh = loop {
                        let candidate = name.with_suffix(k);
                        if !declared.contains_key(&candidate) {
                            break candidate;
                        }
                        k += 1;
                    };
                    declared.insert(fresh.clone(), sort.clone());
                    new_decls.push((fresh.clone(), sort.clone()));
                    renames.push((name.clone(), fresh));
                }
                None => {
                    declared.insert(name.clone(), sort.clone());
                    new_decls.push((name.clone(), sort.clone()));
                }
            }
        }
    }

    // Insert declarations before the first assert.
    let insert_at = script
        .commands
        .iter()
        .position(|c| matches!(c, Command::Assert(_)))
        .unwrap_or(script.commands.len());
    for (i, (name, sort)) in new_decls.into_iter().enumerate() {
        script
            .commands
            .insert(insert_at + i, Command::DeclareConst(name, sort));
    }

    // Fill placeholders round-robin (with per-fill renames applied).
    let adapted: Vec<Term> = fills
        .iter()
        .map(|f| {
            let mut t = f.term.clone();
            for (from, to) in &renames {
                if f.decls.iter().any(|(n, _)| n == from) {
                    t = t.rename_free_var(from, to);
                }
            }
            t
        })
        .collect();
    let mut next = 0usize;
    for term in script.assertions_mut() {
        *term = term.map_bottom_up(&mut |node| match node {
            Term::Placeholder(_) if !adapted.is_empty() => {
                let t = adapted[next % adapted.len()].clone();
                next += 1;
                t
            }
            Term::Placeholder(_) => Term::tru(),
            other => other,
        });
    }
    let _ = rng;
    script.ensure_check_sat();
    script
}

/// Arena twin of [`ParsedFill`]: the term is a [`TermId`] into the
/// fuzzer's arena.
#[derive(Clone, Debug)]
pub struct ArenaFill {
    /// Declarations the term needs (name → sort).
    pub decls: Vec<(Symbol, Sort)>,
    /// The Boolean term.
    pub term: TermId,
}

/// Arena twin of [`parse_fill`]: parses the sample straight into `arena`
/// (no reset — the caller owns arena lifetime) and sort-checks it there,
/// producing identical error strings.
///
/// # Errors
///
/// Same messages as [`parse_fill`].
pub fn parse_fill_into(raw: &RawTerm, arena: &mut TermArena) -> Result<ArenaFill, String> {
    let script_text = raw.to_script_text();
    let script = parse_script_arena(&script_text, arena).map_err(|e| e.to_string())?;
    typeck::check_script_arena(&script, arena).map_err(|e| e.to_string())?;
    let decls = script
        .commands
        .iter()
        .filter_map(|c| match c {
            ArenaCommand::DeclareConst(n, s) => Some((n.clone(), s.clone())),
            ArenaCommand::DeclareFun(n, args, ret) if args.is_empty() => {
                Some((n.clone(), ret.clone()))
            }
            _ => None,
        })
        .collect();
    let term = script
        .commands
        .iter()
        .find_map(|c| match c {
            ArenaCommand::Assert(t) => Some(*t),
            _ => None,
        })
        .ok_or_else(|| "generator sample has no assertion".to_string())?;
    Ok(ArenaFill { decls, term })
}

/// Arena twin of [`adapt_fill`]: identical RNG draw sequence
/// (`gen_bool` only when a sort-compatible candidate list exists, then
/// `gen_range` over it), renaming through the arena.
pub fn adapt_fill_arena(
    fill: &ArenaFill,
    skeleton: &ArenaSkeleton,
    arena: &mut TermArena,
    rng: &mut impl Rng,
) -> ArenaFill {
    let mut by_sort: BTreeMap<&Sort, Vec<&Symbol>> = BTreeMap::new();
    for (name, sort) in &skeleton.variables {
        by_sort.entry(sort).or_default().push(name);
    }
    let mut term = fill.term;
    let mut decls = Vec::new();
    for (name, sort) in &fill.decls {
        let candidates = by_sort.get(sort);
        let adapt = candidates
            .filter(|c| !c.is_empty())
            .filter(|_| rng.gen_bool(ADAPT_PROBABILITY));
        match adapt {
            Some(c) => {
                let target = c[rng.gen_range(0..c.len())].clone();
                term = arena.rename_free_var(term, name, &target);
            }
            None => decls.push((name.clone(), sort.clone())),
        }
    }
    ArenaFill { decls, term }
}

/// Arena twin of [`synthesize`]: identical declaration merging, clash
/// renaming, insertion position, and round-robin placeholder fill — fills
/// are shared by id rather than cloned per placeholder.
pub fn synthesize_arena(
    skeleton: &ArenaSkeleton,
    fills: &[ArenaFill],
    arena: &mut TermArena,
    rng: &mut impl Rng,
) -> ArenaScript {
    let mut script = skeleton.script.clone();
    crate::skeleton::strip_commands_arena(&mut script);

    // Merge declarations, renaming on sort clashes.
    let mut declared: BTreeMap<Symbol, Sort> = skeleton
        .script
        .commands
        .iter()
        .filter_map(|c| match c {
            ArenaCommand::DeclareConst(n, s) => Some((n.clone(), s.clone())),
            ArenaCommand::DeclareFun(n, args, ret) if args.is_empty() => {
                Some((n.clone(), ret.clone()))
            }
            _ => None,
        })
        .collect();
    let mut renames: Vec<(Symbol, Symbol)> = Vec::new();
    let mut new_decls: Vec<(Symbol, Sort)> = Vec::new();
    for fill in fills {
        for (name, sort) in &fill.decls {
            match declared.get(name) {
                Some(existing) if existing == sort => {} // share the variable
                Some(_) => {
                    let mut k = 0u64;
                    let fresh = loop {
                        let candidate = name.with_suffix(k);
                        if !declared.contains_key(&candidate) {
                            break candidate;
                        }
                        k += 1;
                    };
                    declared.insert(fresh.clone(), sort.clone());
                    new_decls.push((fresh.clone(), sort.clone()));
                    renames.push((name.clone(), fresh));
                }
                None => {
                    declared.insert(name.clone(), sort.clone());
                    new_decls.push((name.clone(), sort.clone()));
                }
            }
        }
    }

    // Insert declarations before the first assert.
    let insert_at = script
        .commands
        .iter()
        .position(|c| matches!(c, ArenaCommand::Assert(_)))
        .unwrap_or(script.commands.len());
    for (i, (name, sort)) in new_decls.into_iter().enumerate() {
        script
            .commands
            .insert(insert_at + i, ArenaCommand::DeclareConst(name, sort));
    }

    // Fill placeholders round-robin (with per-fill renames applied).
    let adapted: Vec<TermId> = fills
        .iter()
        .map(|f| {
            let mut t = f.term;
            for (from, to) in &renames {
                if f.decls.iter().any(|(n, _)| n == from) {
                    t = arena.rename_free_var(t, from, to);
                }
            }
            t
        })
        .collect();
    let mut next = 0usize;
    for cmd in script.commands.iter_mut() {
        if let ArenaCommand::Assert(t) = cmd {
            *t = arena.fill_placeholders(*t, &adapted, &mut next);
        }
    }
    let _ = rng;
    script.ensure_check_sat();
    script
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skeleton::{skeletonize, SkeletonConfig};
    use o4a_smtlib::parse_term;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    fn fill_from(decl_sorts: &[(&str, Sort)], term: &str) -> ParsedFill {
        ParsedFill {
            decls: decl_sorts
                .iter()
                .map(|(n, s)| (Symbol::new(n), s.clone()))
                .collect(),
            term: parse_term(term).unwrap(),
        }
    }

    fn skeleton_of(text: &str, p: f64) -> Skeleton {
        let seed = parse_script(text).unwrap();
        skeletonize(
            &seed,
            SkeletonConfig {
                replace_probability: p,
                max_placeholders: 4,
            },
            &mut rng(),
        )
    }

    #[test]
    fn parse_fill_accepts_valid_samples() {
        let raw = RawTerm {
            decls: vec!["(declare-const i0 Int)".into()],
            term: "(= (mod i0 3) 0)".into(),
        };
        let f = parse_fill(&raw).unwrap();
        assert_eq!(f.decls.len(), 1);
        assert_eq!(f.decls[0].1, Sort::Int);
    }

    #[test]
    fn parse_fill_rejects_flawed_samples() {
        let raw = RawTerm {
            decls: vec![],
            term: "(= i9 0)".into(), // undeclared
        };
        assert!(parse_fill(&raw).is_err());
        let raw2 = RawTerm {
            decls: vec!["(declare-const i0 Int)".into()],
            term: "(+ i0 1)".into(), // not Boolean
        };
        assert!(parse_fill(&raw2).is_err());
    }

    #[test]
    fn synthesized_script_is_well_formed() {
        // The paper's Figure 4 walk-through: seed with Int variable T,
        // Int+String fills, adapted and merged.
        let sk = skeleton_of(
            "(declare-fun T () Int)(assert (or (= T 0) (< T 1)))(check-sat)",
            1.0,
        );
        let fills = [
            fill_from(&[("int0", Sort::Int)], "((_ divisible 3) (mod int0 3))"),
            fill_from(&[("str0", Sort::String)], "(= str0 \"\")"),
        ];
        let mut r = rng();
        let out = synthesize(
            &sk,
            &fills
                .iter()
                .map(|f| adapt_fill(f, &sk, &mut r))
                .collect::<Vec<_>>(),
            &mut r,
        );
        typeck::check_script(&out).unwrap_or_else(|e| panic!("{e}\n{out}"));
        let text = out.to_string();
        assert!(text.ends_with("(check-sat)"));
        assert!(!out.has_placeholders());
    }

    #[test]
    fn adaptation_renames_to_skeleton_variable() {
        let sk = skeleton_of(
            "(declare-fun T () Int)(assert (or (= T 0) (< T 1)))(check-sat)",
            1.0,
        );
        let fill = fill_from(&[("int0", Sort::Int)], "(> int0 5)");
        // Sweep seeds until adaptation fires (probability 0.6).
        let mut adapted_seen = false;
        for s in 0..20 {
            let mut r = StdRng::seed_from_u64(s);
            let a = adapt_fill(&fill, &sk, &mut r);
            if a.decls.is_empty() {
                adapted_seen = true;
                assert!(a.term.free_vars().contains("T"));
            }
        }
        assert!(adapted_seen, "adaptation never fired in 20 trials");
    }

    #[test]
    fn clashing_declarations_renamed() {
        // Skeleton declares T : Int; fill declares T : String.
        let sk = skeleton_of("(declare-fun T () Int)(assert (= T 0))(check-sat)", 1.0);
        let fill = fill_from(&[("T", Sort::String)], "(= T \"x\")");
        let mut r = rng();
        let out = synthesize(&sk, &[fill], &mut r);
        typeck::check_script(&out).unwrap_or_else(|e| panic!("{e}\n{out}"));
        assert!(out.to_string().contains("T!0"));
    }

    #[test]
    fn shared_sort_declarations_merge() {
        let sk = skeleton_of("(declare-fun T () Int)(assert (= T 0))(check-sat)", 1.0);
        let fill = fill_from(&[("T", Sort::Int)], "(> T 5)");
        let mut r = rng();
        let out = synthesize(&sk, &[fill], &mut r);
        typeck::check_script(&out).unwrap();
        // Only one declaration of T.
        assert_eq!(out.to_string().matches("declare-").count(), 1);
    }

    #[test]
    fn quantified_skeleton_fill_typechecks() {
        let sk = skeleton_of(
            "(declare-fun s () (Seq Int))\
             (assert (exists ((f Int)) (distinct (seq.len s) 0)))(check-sat)",
            1.0,
        );
        let fill = fill_from(&[("i0", Sort::Int)], "(= (div i0 2) 1)");
        let mut r = rng();
        let out = synthesize(&sk, &[adapt_fill(&fill, &sk, &mut r)], &mut r);
        typeck::check_script(&out).unwrap_or_else(|e| panic!("{e}\n{out}"));
        assert!(out.to_string().contains("exists"));
    }

    #[test]
    fn arena_pipeline_matches_boxed() {
        use crate::skeleton::skeletonize_arena;
        // Fixed generator samples exercising rename, clash, and merge paths.
        let raws = [
            RawTerm {
                decls: vec!["(declare-const i0 Int)".into()],
                term: "(= (mod i0 3) 0)".into(),
            },
            RawTerm {
                decls: vec![
                    "(declare-const s0 (Seq Int))".into(),
                    "(declare-const i1 Int)".into(),
                ],
                term: "(= (seq.len s0) i1)".into(),
            },
            RawTerm {
                decls: vec!["(declare-const T String)".into()],
                term: "(= T \"x\")".into(),
            },
        ];
        for seed in crate::seeds::parsed_seeds().iter().take(8) {
            for s in 0..4u64 {
                let mut rb = StdRng::seed_from_u64(s);
                let mut ra = StdRng::seed_from_u64(s);
                let mut cur_boxed = seed.clone();
                let mut arena = TermArena::new();
                let mut cur_arena = ArenaScript::from_script(seed, &mut arena);
                // Three chained mutation rounds: the mutant feeds back as
                // the next round's seed, exactly like the fuzzer loop.
                for round in 0..3 {
                    let sk = skeletonize(&cur_boxed, SkeletonConfig::default(), &mut rb);
                    let fills: Vec<ParsedFill> = raws
                        .iter()
                        .map(|r| adapt_fill(&parse_fill(r).unwrap(), &sk, &mut rb))
                        .collect();
                    let out_boxed = synthesize(&sk, &fills, &mut rb);
                    let expected = out_boxed.to_string();

                    let ask = skeletonize_arena(
                        &cur_arena,
                        &mut arena,
                        SkeletonConfig::default(),
                        &mut ra,
                    );
                    let afills: Vec<ArenaFill> = raws
                        .iter()
                        .map(|r| {
                            let f = parse_fill_into(r, &mut arena).unwrap();
                            adapt_fill_arena(&f, &ask, &mut arena, &mut ra)
                        })
                        .collect();
                    let out_arena = synthesize_arena(&ask, &afills, &mut arena, &mut ra);
                    let mut printed = String::new();
                    out_arena.print_into(&arena, &mut printed);
                    assert_eq!(expected, printed, "diverged at rng seed {s}, round {round}");
                    cur_boxed = out_boxed;
                    cur_arena = out_arena;
                }
            }
        }
    }

    #[test]
    fn more_placeholders_than_fills_reuses_round_robin() {
        let sk = skeleton_of(
            "(declare-const a Bool)(declare-const b Bool)(declare-const c Bool)\
             (assert (and a b c))(check-sat)",
            1.0,
        );
        assert!(sk.placeholder_count >= 2);
        let fill = fill_from(&[("i0", Sort::Int)], "(> i0 0)");
        let mut r = rng();
        let out = synthesize(&sk, &[fill], &mut r);
        typeck::check_script(&out).unwrap();
        assert!(!out.has_placeholders());
    }
}
