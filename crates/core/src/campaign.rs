//! The campaign runner: executes one fuzzer against the solvers under test
//! for a virtual duration, with hourly coverage snapshots, differential
//! judging, and finding collection. All comparison experiments (Figures
//! 6–9, Tables 1–2) are campaigns with different fuzzers/solver versions.

use crate::fuzzer::{Fuzzer, TestCase};
use crate::oracle::{judge, Verdict};
use crate::triage::Finding;
use o4a_solvers::{
    solver_with_config, CommitIdx, EngineConfig, FormulaFeatures, Outcome, SmtSolver, SolverId,
    TRUNK_COMMIT,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Campaign configuration.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Virtual campaign length in hours (paper: 24).
    pub virtual_hours: u32,
    /// Multiplier applied to all virtual costs. Scaling up makes each case
    /// "cost more" virtual time, shrinking the number of real cases a
    /// campaign executes while preserving every relative comparison
    /// (documented in EXPERIMENTS.md).
    pub time_scale: u64,
    /// Solvers under test and the commits they are built from.
    pub solvers: Vec<(SolverId, CommitIdx)>,
    /// Engine configuration (bugs on/off, budgets).
    pub engine: EngineConfig,
    /// Campaign RNG seed.
    pub seed: u64,
    /// Hard cap on real test cases (safety valve for CI).
    pub max_cases: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            virtual_hours: 24,
            time_scale: 3_000,
            solvers: vec![
                (SolverId::OxiZ, TRUNK_COMMIT),
                (SolverId::Cervo, TRUNK_COMMIT),
            ],
            engine: EngineConfig::default(),
            seed: 0xf00d,
            max_cases: 200_000,
        }
    }
}

/// Coverage percentages at one snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CoveragePoint {
    /// Line coverage percent.
    pub line_pct: f64,
    /// Function coverage percent.
    pub function_pct: f64,
}

/// One hourly snapshot.
#[derive(Clone, Debug)]
pub struct HourlySnapshot {
    /// Virtual hour (1-based).
    pub hour: u32,
    /// Coverage per solver.
    pub coverage: BTreeMap<SolverId, CoveragePoint>,
    /// Cases executed so far.
    pub cases: u64,
    /// Deduplicated issue count so far.
    pub issues: usize,
}

/// Aggregate campaign statistics (paper §4.2 "Statistics of Bugs").
#[derive(Clone, Debug, Default)]
pub struct CampaignStats {
    /// Test cases executed.
    pub cases: u64,
    /// Total bytes of generated formulas.
    pub total_bytes: u64,
    /// Bug-triggering formulas recorded.
    pub bug_triggering: u64,
    /// Cases rejected by every frontend (invalid inputs).
    pub rejected: u64,
    /// Cases answered sat/unsat by at least one solver.
    pub decisive: u64,
    /// Virtual seconds consumed.
    pub virtual_seconds: u64,
    /// Setup cost in virtual seconds (the LLM one-time investment for
    /// Once4All; per-request costs land in case generation instead).
    pub setup_virtual_seconds: u64,
}

impl CampaignStats {
    /// Mean formula size in bytes.
    pub fn mean_bytes(&self) -> f64 {
        if self.cases == 0 {
            0.0
        } else {
            self.total_bytes as f64 / self.cases as f64
        }
    }
}

/// The result of one campaign.
#[derive(Clone, Debug)]
pub struct CampaignResult {
    /// Fuzzer display name.
    pub fuzzer: String,
    /// Hourly snapshots (length = virtual hours).
    pub snapshots: Vec<HourlySnapshot>,
    /// All bug-triggering findings (pre-dedup).
    pub findings: Vec<Finding>,
    /// Aggregate statistics.
    pub stats: CampaignStats,
    /// Final coverage per solver.
    pub final_coverage: BTreeMap<SolverId, CoveragePoint>,
    /// Names of covered functions per solver (for the directory-level
    /// complementarity analysis).
    pub covered_functions: BTreeMap<SolverId, Vec<String>>,
}

/// Runs one fuzzing campaign.
pub fn run_campaign(fuzzer: &mut dyn Fuzzer, config: &CampaignConfig) -> CampaignResult {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut solvers: Vec<Box<dyn SmtSolver>> = config
        .solvers
        .iter()
        .map(|(id, commit)| solver_with_config(*id, *commit, config.engine.clone()))
        .collect();
    let commits: BTreeMap<SolverId, CommitIdx> = config.solvers.iter().copied().collect();

    let mut stats = CampaignStats::default();
    // Setup is a one-time investment and is charged unscaled; `time_scale`
    // only shrinks the number of *cases* a campaign executes (each real
    // case stands for `time_scale` virtual ones, preserving per-case cost
    // ratios between fuzzers).
    let setup_micros = fuzzer.setup(&mut rng);
    stats.setup_virtual_seconds = setup_micros / 1_000_000;

    let budget_micros = config.virtual_hours as u64 * 3_600_000_000;
    let mut clock_micros = setup_micros.min(budget_micros);
    let mut findings: Vec<Finding> = Vec::new();
    let mut snapshots: Vec<HourlySnapshot> = Vec::new();
    let mut next_snapshot_hour = 1u32;

    while clock_micros < budget_micros && (stats.cases as usize) < config.max_cases {
        let TestCase { text, gen_micros } = fuzzer.next_case(&mut rng);
        stats.cases += 1;
        stats.total_bytes += text.len() as u64;
        let mut case_cost = gen_micros;

        let mut responses = Vec::with_capacity(solvers.len());
        let mut any_accepted = false;
        let mut any_decisive = false;
        for solver in solvers.iter_mut() {
            let r = solver.check(&text);
            case_cost += r.stats.virtual_micros;
            match &r.outcome {
                Outcome::ParseError(_) => {}
                o => {
                    any_accepted = true;
                    if o.is_decisive() {
                        any_decisive = true;
                    }
                }
            }
            responses.push((solver.id(), r));
        }
        if !any_accepted {
            stats.rejected += 1;
        }
        if any_decisive {
            stats.decisive += 1;
        }

        clock_micros = clock_micros.saturating_add(case_cost.saturating_mul(config.time_scale));
        let vhour = clock_micros as f64 / 3_600_000_000.0;

        let verdict = judge(&text, &responses);
        if verdict.is_bug() {
            stats.bug_triggering += 1;
            if let Some(finding) = Finding::from_verdict(
                &text,
                &verdict,
                &FormulaFeatures::of(
                    &o4a_smtlib::parse_script(&text).unwrap_or_default(),
                ),
                &commits,
                vhour,
            ) {
                findings.push(finding);
            }
        } else if let Verdict::NotComparable = verdict {
            // nothing to record
        }

        // Hourly snapshots (catching up if a case jumped several hours).
        while next_snapshot_hour <= config.virtual_hours
            && clock_micros >= next_snapshot_hour as u64 * 3_600_000_000
        {
            snapshots.push(snapshot(
                next_snapshot_hour,
                &solvers,
                stats.cases,
                &findings,
            ));
            next_snapshot_hour += 1;
        }
    }
    // Fill any missing trailing snapshots (campaign may end early on
    // max_cases).
    while next_snapshot_hour <= config.virtual_hours {
        snapshots.push(snapshot(
            next_snapshot_hour,
            &solvers,
            stats.cases,
            &findings,
        ));
        next_snapshot_hour += 1;
    }
    stats.virtual_seconds = clock_micros / 1_000_000;

    let mut final_coverage = BTreeMap::new();
    let mut covered_functions = BTreeMap::new();
    for solver in &solvers {
        final_coverage.insert(
            solver.id(),
            CoveragePoint {
                line_pct: solver.coverage().line_coverage_pct(solver.universe()),
                function_pct: solver.coverage().function_coverage_pct(solver.universe()),
            },
        );
        covered_functions.insert(
            solver.id(),
            solver
                .coverage()
                .covered_function_names(solver.universe())
                .iter()
                .map(|s| s.to_string())
                .collect(),
        );
    }

    CampaignResult {
        fuzzer: fuzzer.name(),
        snapshots,
        findings,
        stats,
        final_coverage,
        covered_functions,
    }
}

fn snapshot(
    hour: u32,
    solvers: &[Box<dyn SmtSolver>],
    cases: u64,
    findings: &[Finding],
) -> HourlySnapshot {
    let mut coverage = BTreeMap::new();
    for s in solvers {
        coverage.insert(
            s.id(),
            CoveragePoint {
                line_pct: s.coverage().line_coverage_pct(s.universe()),
                function_pct: s.coverage().function_coverage_pct(s.universe()),
            },
        );
    }
    HourlySnapshot {
        hour,
        coverage,
        cases,
        issues: crate::triage::dedup(findings).len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzzer::{Once4AllConfig, Once4AllFuzzer};

    fn quick_config() -> CampaignConfig {
        CampaignConfig {
            virtual_hours: 2,
            time_scale: 2_000_000, // few cases: smoke-test scale
            max_cases: 60,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn campaign_runs_and_snapshots() {
        let mut fuzzer = Once4AllFuzzer::new(Once4AllConfig::default());
        let result = run_campaign(&mut fuzzer, &quick_config());
        assert_eq!(result.snapshots.len(), 2);
        assert!(result.stats.cases > 0);
        assert!(result.stats.mean_bytes() > 0.0);
        // Coverage monotone across snapshots.
        for id in [SolverId::OxiZ, SolverId::Cervo] {
            let a = result.snapshots[0].coverage[&id].line_pct;
            let b = result.snapshots[1].coverage[&id].line_pct;
            assert!(b >= a, "{id}: coverage decreased {a} -> {b}");
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let run = || {
            let mut fuzzer = Once4AllFuzzer::new(Once4AllConfig::default());
            let r = run_campaign(&mut fuzzer, &quick_config());
            (
                r.stats.cases,
                r.stats.bug_triggering,
                r.findings.len() as u64,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn bugs_disabled_yields_no_findings() {
        let mut fuzzer = Once4AllFuzzer::new(Once4AllConfig::default());
        let config = CampaignConfig {
            engine: EngineConfig {
                bugs_enabled: false,
                ..EngineConfig::default()
            },
            ..quick_config()
        };
        let result = run_campaign(&mut fuzzer, &config);
        assert_eq!(
            result.findings.len(),
            0,
            "clean solvers must never disagree: {:?}",
            result.findings.first().map(|f| &f.case_text)
        );
    }

    #[test]
    fn setup_cost_charged_to_clock() {
        let mut fuzzer = Once4AllFuzzer::new(Once4AllConfig::default());
        let result = run_campaign(&mut fuzzer, &quick_config());
        assert!(result.stats.setup_virtual_seconds > 0);
    }
}
