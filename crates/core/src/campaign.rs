//! The campaign runner: executes one fuzzer against the solvers under test
//! for a virtual duration, with hourly coverage snapshots, differential
//! judging, and finding collection. All comparison experiments (Figures
//! 6–9, Tables 1–2) are campaigns with different fuzzers/solver versions.

use crate::fuzzer::{Fuzzer, TestCase};
use crate::oracle::{judge, Verdict};
use crate::triage::Finding;
use o4a_solvers::coverage::{universe, Universe};
use o4a_solvers::{
    solver_with_config, CommitIdx, CoverageMap, EngineConfig, FormulaFeatures, Outcome, SmtSolver,
    SolverId, SolverResponse, TRUNK_COMMIT,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Campaign configuration.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Virtual campaign length in hours (paper: 24).
    pub virtual_hours: u32,
    /// Multiplier applied to all virtual costs. Scaling up makes each case
    /// "cost more" virtual time, shrinking the number of real cases a
    /// campaign executes while preserving every relative comparison
    /// (documented in EXPERIMENTS.md).
    pub time_scale: u64,
    /// Solvers under test and the commits they are built from.
    pub solvers: Vec<(SolverId, CommitIdx)>,
    /// Engine configuration (bugs on/off, budgets).
    pub engine: EngineConfig,
    /// Campaign RNG seed.
    pub seed: u64,
    /// Hard cap on real test cases (safety valve for CI).
    pub max_cases: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            virtual_hours: 24,
            time_scale: 3_000,
            solvers: vec![
                (SolverId::OxiZ, TRUNK_COMMIT),
                (SolverId::Cervo, TRUNK_COMMIT),
            ],
            engine: EngineConfig::default(),
            seed: 0xf00d,
            max_cases: 200_000,
        }
    }
}

/// Coverage percentages at one snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CoveragePoint {
    /// Line coverage percent.
    pub line_pct: f64,
    /// Function coverage percent.
    pub function_pct: f64,
}

/// One hourly snapshot.
#[derive(Clone, Debug)]
pub struct HourlySnapshot {
    /// Virtual hour (1-based).
    pub hour: u32,
    /// Coverage per solver.
    pub coverage: BTreeMap<SolverId, CoveragePoint>,
    /// Cases executed so far.
    pub cases: u64,
    /// Deduplicated issue count so far.
    pub issues: usize,
}

/// Aggregate campaign statistics (paper §4.2 "Statistics of Bugs").
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CampaignStats {
    /// Test cases executed.
    pub cases: u64,
    /// Total bytes of generated formulas.
    pub total_bytes: u64,
    /// Bug-triggering formulas recorded.
    pub bug_triggering: u64,
    /// Cases rejected by every frontend (invalid inputs).
    pub rejected: u64,
    /// Cases answered sat/unsat by at least one solver.
    pub decisive: u64,
    /// Virtual seconds consumed.
    pub virtual_seconds: u64,
    /// Setup cost in virtual seconds (the LLM one-time investment for
    /// Once4All; per-request costs land in case generation instead).
    pub setup_virtual_seconds: u64,
    /// Solver child processes spawned by the pipe transport (including
    /// respawns after crashes/wedges); zero for in-process backends.
    /// A transport-work observable, not a campaign one: it counts what
    /// was *executed* (spawn-mode fan-out depends on real-time overlap,
    /// and any mode executes up to K − 1 speculative queries past the
    /// budget boundary), so equivalence comparisons go through
    /// [`CampaignStats::sans_transport`]. In session mode the count is
    /// one persistent process per lane plus respawns, at any K.
    pub processes_spawned: u64,
    /// Pipe-transport processes lost to crashes or wedges and replaced.
    pub process_respawns: u64,
    /// Incremental `(push 1)`/`(pop 1)` scopes opened on persistent
    /// solver sessions — one per executed query in session mode
    /// (speculative overrun included; crash replays are respawn
    /// bookkeeping and not re-counted), zero in spawn mode.
    pub scopes_pushed: u64,
    /// Shard leases granted by a distributed coordinator (`o4a-dist`):
    /// one per `lease` frame sent to a worker process, re-issues
    /// included. Zero for single-process campaigns. A transport-work
    /// observable like the process-churn counters — how many leases it
    /// took to finish the plan depends on worker deaths, not on the
    /// campaign — so it is scrubbed by [`CampaignStats::sans_transport`].
    pub leases_granted: u64,
    /// Leases re-issued after the worker holding them died or went
    /// silent mid-lease (the shard re-ran from scratch elsewhere).
    pub leases_reissued: u64,
    /// Verdict-cache hits: queries answered from the `O4A_CACHE` store
    /// without touching a solver process. A transport-work observable —
    /// hit counts depend on what earlier runs (or other shards' merged
    /// journals) happened to cache, never on what the campaign finds —
    /// so it is scrubbed by [`CampaignStats::sans_transport`].
    pub cache_hits: u64,
    /// Verdict-cache lookups that missed and paid a fresh solve. Zero
    /// (with `cache_hits`) when no cache is configured.
    pub cache_misses: u64,
    /// Session-mode queries that reused a declaration prefix already
    /// held on the lane's scope stack (`O4A_AFFINITY` routing) instead
    /// of resending it.
    pub prefix_reuses: u64,
}

impl CampaignStats {
    /// Mean formula size in bytes.
    pub fn mean_bytes(&self) -> f64 {
        if self.cases == 0 {
            0.0
        } else {
            self.total_bytes as f64 / self.cases as f64
        }
    }

    /// Accumulates another stats block into this one (field-wise sum) —
    /// the aggregate semantics used when combining campaign shards. Setup
    /// cost sums too: every shard pays its own one-time investment, like
    /// independent fuzzing machines would.
    pub fn merge(&mut self, other: &CampaignStats) {
        self.cases += other.cases;
        self.total_bytes += other.total_bytes;
        self.bug_triggering += other.bug_triggering;
        self.rejected += other.rejected;
        self.decisive += other.decisive;
        self.virtual_seconds += other.virtual_seconds;
        self.setup_virtual_seconds += other.setup_virtual_seconds;
        self.processes_spawned += other.processes_spawned;
        self.process_respawns += other.process_respawns;
        self.scopes_pushed += other.scopes_pushed;
        self.leases_granted += other.leases_granted;
        self.leases_reissued += other.leases_reissued;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.prefix_reuses += other.prefix_reuses;
    }

    /// This stats block with the solver-transport churn counters zeroed.
    ///
    /// Process churn is an execution-schedule observable, not a campaign
    /// one: spawn-mode fan-out depends on how queries overlap in real
    /// time, and at K > 1 either mode executes speculative queries past
    /// the budget boundary that apply-time discards. The serial ≡
    /// K-in-flight equivalence law therefore compares campaigns through
    /// this view; the churn claims themselves (one process per lane in
    /// session mode, ≥ K in spawn mode) are pinned per-K by the pipe
    /// gauntlet.
    pub fn sans_transport(&self) -> CampaignStats {
        CampaignStats {
            processes_spawned: 0,
            process_respawns: 0,
            scopes_pushed: 0,
            leases_granted: 0,
            leases_reissued: 0,
            cache_hits: 0,
            cache_misses: 0,
            prefix_reuses: 0,
            ..self.clone()
        }
    }
}

/// The result of one campaign.
#[derive(Clone, Debug)]
pub struct CampaignResult {
    /// Fuzzer display name.
    pub fuzzer: String,
    /// Hourly snapshots (length = virtual hours).
    pub snapshots: Vec<HourlySnapshot>,
    /// All bug-triggering findings (pre-dedup).
    pub findings: Vec<Finding>,
    /// Aggregate statistics.
    pub stats: CampaignStats,
    /// Final coverage per solver.
    pub final_coverage: BTreeMap<SolverId, CoveragePoint>,
    /// Names of covered functions per solver (for the directory-level
    /// complementarity analysis).
    pub covered_functions: BTreeMap<SolverId, Vec<String>>,
    /// Raw accumulated coverage per solver. Percentages lose information;
    /// the raw maps are what lets shard results merge without loss
    /// (`o4a-exec` unions them and recomputes the percentages).
    pub coverage: BTreeMap<SolverId, CoverageMap>,
    /// Raw cumulative coverage per solver at every hourly snapshot
    /// boundary (`hourly_coverage[h - 1]` is the state behind
    /// `snapshots[h - 1]`). The percentages in [`HourlySnapshot`] lose
    /// information exactly like the final ones do; these maps are what
    /// lets shard *hourly series* merge without loss — `o4a-exec` unions
    /// them per hour and recomputes the snapshot percentages, and the
    /// findings journal persists them as per-hour deltas. Empty on
    /// results reconstructed from journals that predate the delta
    /// records (the merge then falls back to a documented lower bound).
    pub hourly_coverage: Vec<BTreeMap<SolverId, CoverageMap>>,
}

/// One solver's part of an executed test case: its response plus the
/// coverage this single case contributed to it.
#[derive(Clone, Debug)]
pub struct SolverRun {
    /// Which solver ran.
    pub solver: SolverId,
    /// Its response.
    pub response: SolverResponse,
    /// The case's coverage delta on that solver (not a cumulative map).
    pub coverage: CoverageMap,
}

/// A fully executed test case, not yet applied to campaign state.
///
/// This is the unit the overlapped engine re-sequences: execution
/// (generate + solver checks) is side-effect-free with respect to the
/// campaign, so any number of cases can be in flight out of order, while
/// [`CampaignStepper::apply_case`] — clock, stats, findings, snapshots —
/// consumes them strictly in case order.
#[derive(Clone, Debug)]
pub struct CaseExecution {
    /// The generated case.
    pub case: TestCase,
    /// Per-solver responses and coverage deltas, in campaign solver order.
    pub runs: Vec<SolverRun>,
}

/// What one [`CampaignStepper::step`] call did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// A test case was generated and executed. `recorded_finding` is true
    /// when the case produced a new entry in the findings list (what a
    /// persistent findings store must append).
    Ran {
        /// Whether this step appended to the findings list.
        recorded_finding: bool,
    },
    /// The campaign budget (virtual hours or case cap) is exhausted; no
    /// case was run and all trailing snapshots have been filled in.
    Exhausted,
}

/// The single-case campaign engine: owns the solvers under test, the
/// virtual clock, statistics, findings, and hourly snapshots, and advances
/// one test case per [`CampaignStepper::step`].
///
/// [`run_campaign`] drives it serially; the `o4a-exec` crate drives one
/// stepper per shard on a worker pool. Keeping every side effect of a case
/// inside `step` is what makes the two paths behaviourally identical.
pub struct CampaignStepper {
    config: CampaignConfig,
    solvers: Vec<Box<dyn SmtSolver>>,
    commits: BTreeMap<SolverId, CommitIdx>,
    universes: BTreeMap<SolverId, Universe>,
    coverage: BTreeMap<SolverId, CoverageMap>,
    stats: CampaignStats,
    findings: Vec<Finding>,
    snapshots: Vec<HourlySnapshot>,
    hourly_coverage: Vec<BTreeMap<SolverId, CoverageMap>>,
    next_snapshot_hour: u32,
    clock_micros: u64,
    budget_micros: u64,
}

impl CampaignStepper {
    /// Builds the stepper: constructs the solvers under test and zeroes the
    /// clock. Call [`CampaignStepper::charge_setup`] with the fuzzer's
    /// setup cost before the first step.
    pub fn new(config: &CampaignConfig) -> CampaignStepper {
        CampaignStepper::build(config, true)
    }

    /// Builds an **apply-only** stepper: no solver instances are
    /// constructed, so [`CampaignStepper::step`] and
    /// [`CampaignStepper::execute_case`] must not be called — only
    /// [`CampaignStepper::apply_case`] (plus setup/finish). This is the
    /// constructor for drivers that execute cases through an external
    /// backend, like the overlapped async engine in `o4a-exec`, which
    /// would otherwise pay for a second, unused solver bank per shard.
    pub fn apply_only(config: &CampaignConfig) -> CampaignStepper {
        CampaignStepper::build(config, false)
    }

    fn build(config: &CampaignConfig, with_solvers: bool) -> CampaignStepper {
        let solvers: Vec<Box<dyn SmtSolver>> = if with_solvers {
            config
                .solvers
                .iter()
                .map(|(id, commit)| solver_with_config(*id, *commit, config.engine.clone()))
                .collect()
        } else {
            Vec::new()
        };
        let commits: BTreeMap<SolverId, CommitIdx> = config.solvers.iter().copied().collect();
        let universes: BTreeMap<SolverId, Universe> = config
            .solvers
            .iter()
            .map(|&(id, _)| (id, universe(id)))
            .collect();
        let coverage: BTreeMap<SolverId, CoverageMap> = config
            .solvers
            .iter()
            .map(|&(id, _)| (id, CoverageMap::new()))
            .collect();
        CampaignStepper {
            solvers,
            commits,
            universes,
            coverage,
            stats: CampaignStats::default(),
            findings: Vec::new(),
            snapshots: Vec::new(),
            hourly_coverage: Vec::new(),
            next_snapshot_hour: 1,
            clock_micros: 0,
            budget_micros: config.virtual_hours as u64 * 3_600_000_000,
            config: config.clone(),
        }
    }

    /// Charges the fuzzer's one-time setup investment to the virtual
    /// clock. Setup is charged unscaled; `time_scale` only shrinks the
    /// number of *cases* a campaign executes (each real case stands for
    /// `time_scale` virtual ones, preserving per-case cost ratios between
    /// fuzzers).
    pub fn charge_setup(&mut self, setup_micros: u64) {
        self.stats.setup_virtual_seconds = setup_micros / 1_000_000;
        self.clock_micros = setup_micros.min(self.budget_micros);
    }

    /// True when the virtual budget or the case cap is spent.
    pub fn is_exhausted(&self) -> bool {
        self.clock_micros >= self.budget_micros
            || (self.stats.cases as usize) >= self.config.max_cases
    }

    /// Statistics so far.
    pub fn stats(&self) -> &CampaignStats {
        &self.stats
    }

    /// Findings so far (pre-dedup).
    pub fn findings(&self) -> &[Finding] {
        &self.findings
    }

    /// Virtual microseconds consumed so far.
    pub fn clock_micros(&self) -> u64 {
        self.clock_micros
    }

    /// Runs one test case: generate, execute on every solver, judge,
    /// record, snapshot. Returns [`StepOutcome::Exhausted`] (after filling
    /// trailing snapshots) once the budget is spent.
    ///
    /// Equivalent to [`CampaignStepper::execute_case`] followed by
    /// [`CampaignStepper::apply_case`] — the overlapped engine in
    /// `o4a-exec` drives those two halves with up to `K` executions in
    /// flight between them.
    pub fn step(&mut self, fuzzer: &mut dyn Fuzzer, rng: &mut StdRng) -> StepOutcome {
        if self.is_exhausted() {
            self.fill_trailing_snapshots();
            return StepOutcome::Exhausted;
        }
        let case = fuzzer.next_case(rng);
        let execution = self.execute_case(case);
        self.apply_case(execution)
    }

    /// Executes one generated case on every solver under test, returning
    /// the responses and per-solver coverage deltas **without touching any
    /// campaign state** (clock, stats, findings, snapshots). Executions
    /// are therefore order-independent and safe to perform speculatively —
    /// the property the overlapped async engine relies on.
    pub fn execute_case(&mut self, case: TestCase) -> CaseExecution {
        assert!(
            self.solvers.len() == self.config.solvers.len(),
            "execute_case on an apply-only stepper (built without solvers)"
        );
        let _span = o4a_obs::trace::span("core", "case.execute");
        let mut runs = Vec::with_capacity(self.solvers.len());
        for solver in self.solvers.iter_mut() {
            solver.reset_coverage();
            let timer = o4a_obs::metrics::start_timer();
            let response = solver.check(&case.text);
            o4a_obs::metrics::record_elapsed("core.check_micros", timer);
            runs.push(SolverRun {
                solver: solver.id(),
                response,
                coverage: solver.coverage().clone(),
            });
        }
        CaseExecution { case, runs }
    }

    /// Applies one executed case to campaign state: statistics, virtual
    /// clock, differential judging, findings, coverage accumulation, and
    /// hourly snapshots. Cases **must** be applied in generation order;
    /// when the budget is already spent the execution is discarded (it is
    /// a speculative case the serial engine would never have run) and
    /// [`StepOutcome::Exhausted`] is returned.
    pub fn apply_case(&mut self, execution: CaseExecution) -> StepOutcome {
        if self.is_exhausted() {
            self.fill_trailing_snapshots();
            return StepOutcome::Exhausted;
        }
        let CaseExecution { case, runs } = execution;
        let text = case.text;
        if o4a_obs::metrics_enabled() {
            o4a_obs::metrics::counter("campaign.cases").inc();
        }
        self.stats.cases += 1;
        self.stats.total_bytes += text.len() as u64;
        let mut case_cost = case.gen_micros;

        let mut responses = Vec::with_capacity(runs.len());
        let mut any_accepted = false;
        let mut any_decisive = false;
        for run in runs {
            case_cost += run.response.stats.virtual_micros;
            match &run.response.outcome {
                Outcome::ParseError(_) => {}
                o => {
                    any_accepted = true;
                    if o.is_decisive() {
                        any_decisive = true;
                    }
                }
            }
            self.coverage
                .entry(run.solver)
                .or_default()
                .merge(&run.coverage);
            responses.push((run.solver, run.response));
        }
        if !any_accepted {
            self.stats.rejected += 1;
        }
        if any_decisive {
            self.stats.decisive += 1;
        }

        self.clock_micros = self
            .clock_micros
            .saturating_add(case_cost.saturating_mul(self.config.time_scale));
        let vhour = self.clock_micros as f64 / 3_600_000_000.0;

        let mut recorded_finding = false;
        let verdict = judge(&text, &responses);
        if verdict.is_bug() {
            self.stats.bug_triggering += 1;
            if let Some(finding) = Finding::from_verdict(
                &text,
                &verdict,
                &FormulaFeatures::of(&o4a_smtlib::parse_script(&text).unwrap_or_default()),
                &self.commits,
                vhour,
            ) {
                self.findings.push(finding);
                recorded_finding = true;
                o4a_obs::trace::event(
                    "core",
                    "finding.recorded",
                    &[
                        ("case", self.stats.cases),
                        ("clock_s", self.clock_micros / 1_000_000),
                    ],
                );
                if o4a_obs::metrics_enabled() {
                    o4a_obs::metrics::counter("campaign.findings").inc();
                }
            }
        } else if let Verdict::NotComparable = verdict {
            // nothing to record
        }

        // Hourly snapshots (catching up if a case jumped several hours).
        while self.next_snapshot_hour <= self.config.virtual_hours
            && self.clock_micros >= self.next_snapshot_hour as u64 * 3_600_000_000
        {
            self.push_snapshot();
        }
        StepOutcome::Ran { recorded_finding }
    }

    /// Fills any missing trailing snapshots (a campaign may end early on
    /// `max_cases`).
    fn fill_trailing_snapshots(&mut self) {
        while self.next_snapshot_hour <= self.config.virtual_hours {
            self.push_snapshot();
        }
    }

    /// Records the snapshot for `next_snapshot_hour` from accumulated
    /// coverage and findings.
    fn push_snapshot(&mut self) {
        o4a_obs::trace::event(
            "core",
            "snapshot",
            &[
                ("hour", u64::from(self.next_snapshot_hour)),
                ("cases", self.stats.cases),
            ],
        );
        self.snapshots.push(snapshot(
            self.next_snapshot_hour,
            &self.coverage,
            &self.universes,
            self.stats.cases,
            &self.findings,
        ));
        // The raw maps behind the snapshot's percentages, frozen at the
        // boundary: the lossless representation the shard merge unions.
        self.hourly_coverage.push(self.coverage.clone());
        self.next_snapshot_hour += 1;
    }

    /// Finalizes the campaign: fills trailing snapshots, freezes the
    /// virtual clock, and extracts coverage into the result.
    pub fn finish(mut self, fuzzer_name: String) -> CampaignResult {
        self.fill_trailing_snapshots();
        self.stats.virtual_seconds = self.clock_micros / 1_000_000;

        let mut final_coverage = BTreeMap::new();
        let mut covered_functions = BTreeMap::new();
        for (&id, map) in &self.coverage {
            let u = &self.universes[&id];
            final_coverage.insert(
                id,
                CoveragePoint {
                    line_pct: map.line_coverage_pct(u),
                    function_pct: map.function_coverage_pct(u),
                },
            );
            covered_functions.insert(
                id,
                map.covered_function_names(u)
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
            );
        }

        CampaignResult {
            fuzzer: fuzzer_name,
            snapshots: self.snapshots,
            findings: self.findings,
            stats: self.stats,
            final_coverage,
            covered_functions,
            coverage: self.coverage,
            hourly_coverage: self.hourly_coverage,
        }
    }
}

/// Runs one fuzzing campaign serially (the paper's original protocol).
/// Sharded parallel execution with identical per-shard semantics lives in
/// the `o4a-exec` crate.
pub fn run_campaign(fuzzer: &mut dyn Fuzzer, config: &CampaignConfig) -> CampaignResult {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut stepper = CampaignStepper::new(config);
    stepper.charge_setup(fuzzer.setup(&mut rng));
    while let StepOutcome::Ran { .. } = stepper.step(fuzzer, &mut rng) {}
    stepper.finish(fuzzer.name())
}

fn snapshot(
    hour: u32,
    maps: &BTreeMap<SolverId, CoverageMap>,
    universes: &BTreeMap<SolverId, Universe>,
    cases: u64,
    findings: &[Finding],
) -> HourlySnapshot {
    let mut coverage = BTreeMap::new();
    for (&id, map) in maps {
        let u = &universes[&id];
        coverage.insert(
            id,
            CoveragePoint {
                line_pct: map.line_coverage_pct(u),
                function_pct: map.function_coverage_pct(u),
            },
        );
    }
    HourlySnapshot {
        hour,
        coverage,
        cases,
        // Count only findings discovered by the hour boundary (`vhour` can
        // land past it when one case jumps several virtual hours). This is
        // the same rule the shard merge applies, which keeps a 1-shard
        // engine run bit-identical to the serial campaign.
        issues: crate::triage::dedup_refs(findings.iter().filter(|f| f.vhour <= hour as f64)).len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzzer::{Once4AllConfig, Once4AllFuzzer};

    fn quick_config() -> CampaignConfig {
        CampaignConfig {
            virtual_hours: 2,
            time_scale: 2_000_000, // few cases: smoke-test scale
            max_cases: 60,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn campaign_runs_and_snapshots() {
        let mut fuzzer = Once4AllFuzzer::new(Once4AllConfig::default());
        let result = run_campaign(&mut fuzzer, &quick_config());
        assert_eq!(result.snapshots.len(), 2);
        assert!(result.stats.cases > 0);
        assert!(result.stats.mean_bytes() > 0.0);
        // Coverage monotone across snapshots.
        for id in [SolverId::OxiZ, SolverId::Cervo] {
            let a = result.snapshots[0].coverage[&id].line_pct;
            let b = result.snapshots[1].coverage[&id].line_pct;
            assert!(b >= a, "{id}: coverage decreased {a} -> {b}");
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let run = || {
            let mut fuzzer = Once4AllFuzzer::new(Once4AllConfig::default());
            let r = run_campaign(&mut fuzzer, &quick_config());
            (
                r.stats.cases,
                r.stats.bug_triggering,
                r.findings.len() as u64,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn bugs_disabled_yields_no_findings() {
        let mut fuzzer = Once4AllFuzzer::new(Once4AllConfig::default());
        let config = CampaignConfig {
            engine: EngineConfig {
                bugs_enabled: false,
                ..EngineConfig::default()
            },
            ..quick_config()
        };
        let result = run_campaign(&mut fuzzer, &config);
        assert_eq!(
            result.findings.len(),
            0,
            "clean solvers must never disagree: {:?}",
            result.findings.first().map(|f| &f.case_text)
        );
    }

    #[test]
    fn stepper_loop_matches_run_campaign() {
        let config = quick_config();
        let mut f1 = Once4AllFuzzer::new(Once4AllConfig::default());
        let r1 = run_campaign(&mut f1, &config);

        let mut f2 = Once4AllFuzzer::new(Once4AllConfig::default());
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut stepper = CampaignStepper::new(&config);
        stepper.charge_setup(f2.setup(&mut rng));
        let mut recorded = 0usize;
        while let StepOutcome::Ran { recorded_finding } = stepper.step(&mut f2, &mut rng) {
            if recorded_finding {
                recorded += 1;
            }
        }
        let r2 = stepper.finish(f2.name());

        assert_eq!(r1.stats.cases, r2.stats.cases);
        assert_eq!(r1.stats.bug_triggering, r2.stats.bug_triggering);
        assert_eq!(r1.findings.len(), r2.findings.len());
        assert_eq!(recorded, r2.findings.len());
        assert_eq!(r1.final_coverage, r2.final_coverage);
        assert_eq!(r1.snapshots.len(), r2.snapshots.len());
    }

    #[test]
    fn stats_merge_sums_fields() {
        let a = CampaignStats {
            cases: 10,
            total_bytes: 1_000,
            bug_triggering: 2,
            rejected: 1,
            decisive: 7,
            virtual_seconds: 3_600,
            setup_virtual_seconds: 60,
            processes_spawned: 5,
            process_respawns: 2,
            scopes_pushed: 40,
            leases_granted: 6,
            leases_reissued: 1,
            cache_hits: 9,
            cache_misses: 3,
            prefix_reuses: 8,
        };
        let mut b = a.clone();
        b.merge(&a);
        assert_eq!(b.cases, 20);
        assert_eq!(b.total_bytes, 2_000);
        assert_eq!(b.bug_triggering, 4);
        assert_eq!(b.rejected, 2);
        assert_eq!(b.decisive, 14);
        assert_eq!(b.virtual_seconds, 7_200);
        assert_eq!(b.setup_virtual_seconds, 120);
        assert_eq!(b.processes_spawned, 10);
        assert_eq!(b.process_respawns, 4);
        assert_eq!(b.scopes_pushed, 80);
        assert_eq!(b.leases_granted, 12);
        assert_eq!(b.leases_reissued, 2);
        assert_eq!(b.cache_hits, 18);
        assert_eq!(b.cache_misses, 6);
        assert_eq!(b.prefix_reuses, 16);
        assert!((b.mean_bytes() - 100.0).abs() < 1e-9);
        let scrubbed = b.sans_transport();
        assert_eq!(scrubbed.cases, b.cases);
        assert_eq!(scrubbed.processes_spawned, 0);
        assert_eq!(scrubbed.process_respawns, 0);
        assert_eq!(scrubbed.scopes_pushed, 0);
        assert_eq!(scrubbed.leases_granted, 0);
        assert_eq!(scrubbed.leases_reissued, 0);
        assert_eq!(scrubbed.cache_hits, 0);
        assert_eq!(scrubbed.cache_misses, 0);
        assert_eq!(scrubbed.prefix_reuses, 0);
    }

    #[test]
    fn result_carries_raw_coverage_maps() {
        let mut fuzzer = Once4AllFuzzer::new(Once4AllConfig::default());
        let result = run_campaign(&mut fuzzer, &quick_config());
        for id in [SolverId::OxiZ, SolverId::Cervo] {
            let map = &result.coverage[&id];
            assert!(!map.is_empty());
            let u = o4a_solvers::coverage::universe(id);
            let pct = map.line_coverage_pct(&u);
            assert!(
                (pct - result.final_coverage[&id].line_pct).abs() < 1e-9,
                "raw map disagrees with recorded percentage for {id}"
            );
        }
    }

    #[test]
    fn hourly_coverage_maps_back_every_snapshot() {
        let mut fuzzer = Once4AllFuzzer::new(Once4AllConfig::default());
        let result = run_campaign(&mut fuzzer, &quick_config());
        assert_eq!(result.hourly_coverage.len(), result.snapshots.len());
        for (snap, maps) in result.snapshots.iter().zip(&result.hourly_coverage) {
            for (&id, point) in &snap.coverage {
                let u = o4a_solvers::coverage::universe(id);
                assert_eq!(
                    maps[&id].line_coverage_pct(&u).to_bits(),
                    point.line_pct.to_bits(),
                    "hour {}: stored map disagrees with snapshot percentage",
                    snap.hour
                );
            }
        }
        // The final boundary's map is the final map: the exactness anchor
        // the lossless hourly merge preserves.
        let last = result.hourly_coverage.last().unwrap();
        for (id, map) in &result.coverage {
            assert_eq!(last[id].export(&universe(*id)), map.export(&universe(*id)));
        }
    }

    #[test]
    fn setup_cost_charged_to_clock() {
        let mut fuzzer = Once4AllFuzzer::new(Once4AllConfig::default());
        let result = run_campaign(&mut fuzzer, &quick_config());
        assert!(result.stats.setup_virtual_seconds > 0);
    }
}
