//! The `Fuzzer` plugin interface and the Once4All fuzzer itself
//! (Algorithm 2's main loop).

use crate::fill::{adapt_fill_arena, parse_fill_into, synthesize_arena, ArenaFill};
use crate::seeds::parsed_seeds;
use crate::skeleton::{skeletonize_arena, ArenaSkeleton, SkeletonConfig};
use o4a_llm::{
    construct_generators, ConstructOptions, ConstructionReport, CorrectedGenerator, LlmProfile,
    SimulatedLlm, Validator,
};
use o4a_smtlib::{ArenaScript, Script, TermArena};
use o4a_solvers::{Frontend, SolverId};
use rand::rngs::StdRng;
use rand::Rng;

/// One generated test case: SMT-LIB text plus the virtual cost of
/// producing it (LLM-per-input fuzzers are expensive here; Once4All is
/// nearly free after setup).
#[derive(Clone, Debug)]
pub struct TestCase {
    /// The SMT-LIB script text.
    pub text: String,
    /// Virtual microseconds spent generating it.
    pub gen_micros: u64,
}

/// A fuzzer plugin: Once4All, its variants, and all baselines implement
/// this, so the campaign runner compares them under identical protocol.
pub trait Fuzzer {
    /// Display name used in figures and tables.
    fn name(&self) -> String;
    /// One-time setup; returns virtual microseconds consumed (e.g. the LLM
    /// generator-construction investment).
    fn setup(&mut self, rng: &mut StdRng) -> u64 {
        let _ = rng;
        0
    }
    /// Produces the next test case.
    fn next_case(&mut self, rng: &mut StdRng) -> TestCase;
}

/// A generator-construction validator backed by a real solver frontend —
/// what Algorithm 1 plugs in for `Parse(t)`.
pub struct FrontendValidator {
    solver: SolverId,
}

impl FrontendValidator {
    /// Creates a validator for one solver's frontend.
    pub fn new(solver: SolverId) -> FrontendValidator {
        FrontendValidator { solver }
    }
}

impl Validator for FrontendValidator {
    fn name(&self) -> &str {
        self.solver.name()
    }

    fn validate(&mut self, script_text: &str) -> Result<(), String> {
        Frontend::new(self.solver).validate(script_text)
    }
}

/// Configuration of the Once4All fuzzer.
#[derive(Clone, Debug)]
pub struct Once4AllConfig {
    /// Mutation iterations applied per selected seed (paper: 10).
    pub mutations_per_seed: usize,
    /// Skeleton extraction tuning.
    pub skeleton: SkeletonConfig,
    /// When false, skeletons are disabled and test cases are plain
    /// conjunctions of generated terms — the `Once4All w/oS` ablation.
    pub use_skeletons: bool,
    /// LLM profile used for generator construction.
    pub profile: LlmProfile,
    /// Maximum fills per skeleton.
    pub max_fills: usize,
}

impl Default for Once4AllConfig {
    fn default() -> Self {
        Once4AllConfig {
            mutations_per_seed: 10,
            skeleton: SkeletonConfig::default(),
            use_skeletons: true,
            profile: LlmProfile::gpt4(),
            max_fills: 2,
        }
    }
}

/// The Once4All fuzzer: skeleton-guided mutation with LLM-synthesized
/// generators.
pub struct Once4AllFuzzer {
    config: Once4AllConfig,
    seeds: Vec<Script>,
    generators: Vec<CorrectedGenerator>,
    construction: Option<ConstructionReport>,
    /// The per-fuzzer term arena; reset whenever a fresh seed is loaded.
    arena: TermArena,
    current: Option<ArenaScript>,
    iterations_left: usize,
    cases_emitted: u64,
    invalid_fills: u64,
    total_fills: u64,
    /// Reusable print buffer — cases are rendered into it and cloned out,
    /// so the printer never reallocates once it has grown to steady state.
    print_buf: String,
}

impl Once4AllFuzzer {
    /// Creates the fuzzer with a configuration; generators are synthesized
    /// in [`Fuzzer::setup`].
    pub fn new(config: Once4AllConfig) -> Once4AllFuzzer {
        Once4AllFuzzer {
            config,
            seeds: parsed_seeds(),
            generators: Vec::new(),
            construction: None,
            arena: TermArena::new(),
            current: None,
            iterations_left: 0,
            cases_emitted: 0,
            invalid_fills: 0,
            total_fills: 0,
            print_buf: String::new(),
        }
    }

    /// The default (paper) configuration.
    pub fn with_defaults() -> Once4AllFuzzer {
        Once4AllFuzzer::new(Once4AllConfig::default())
    }

    /// The construction-phase report (after setup).
    pub fn construction_report(&self) -> Option<&ConstructionReport> {
        self.construction.as_ref()
    }

    /// Fraction of generator samples that were invalid during fuzzing.
    pub fn invalid_fill_rate(&self) -> f64 {
        if self.total_fills == 0 {
            0.0
        } else {
            self.invalid_fills as f64 / self.total_fills as f64
        }
    }

    fn draw_fill(&mut self, rng: &mut StdRng) -> Result<ArenaFill, String> {
        self.draw_fill_from(None, rng)
    }

    /// Draws a fill, preferring the focus generator when one is given
    /// (deep single-theory interaction is what exposes theory-internal
    /// bugs; cross-theory mixing still happens 30% of the time).
    fn draw_fill_from(
        &mut self,
        focus: Option<usize>,
        rng: &mut StdRng,
    ) -> Result<ArenaFill, String> {
        if self.generators.is_empty() {
            return Err("no generators constructed".into());
        }
        let gi = match focus {
            Some(g) if rng.gen_bool(0.7) => g,
            _ => rng.gen_range(0..self.generators.len()),
        };
        let mut sample_rng = StdRng::from_rng_seed(rng.gen());
        self.total_fills += 1;
        let raw = self.generators[gi]
            .program
            .generate(&mut sample_rng)
            .map_err(|e| e.to_string())?;
        match parse_fill_into(&raw, &mut self.arena) {
            Ok(f) => Ok(f),
            Err(e) => {
                self.invalid_fills += 1;
                Err(e)
            }
        }
    }

    /// Emits a skeleton-free case (the w/oS variant and the fallback when a
    /// seed yields no usable skeleton).
    fn generator_only_case(&mut self, rng: &mut StdRng) -> ArenaScript {
        let n = rng.gen_range(1..=self.config.max_fills.max(1));
        let mut fills = Vec::new();
        for _ in 0..n {
            if let Ok(f) = self.draw_fill(rng) {
                fills.push(f);
            }
        }
        // Assemble a flat conjunction script.
        let mut script = ArenaScript::new();
        let mut declared = std::collections::BTreeMap::new();
        for f in &fills {
            for (name, sort) in &f.decls {
                declared.entry(name.clone()).or_insert_with(|| sort.clone());
            }
        }
        for (name, sort) in declared {
            script
                .commands
                .push(o4a_smtlib::ArenaCommand::DeclareConst(name, sort));
        }
        for f in &fills {
            script
                .commands
                .push(o4a_smtlib::ArenaCommand::Assert(f.term));
        }
        if fills.is_empty() {
            let tru = self.arena.mk_const(o4a_smtlib::Value::Bool(true));
            script.commands.push(o4a_smtlib::ArenaCommand::Assert(tru));
        }
        script.ensure_check_sat();
        script
    }
}

/// Extension trait alias for seeding an `StdRng` from another RNG draw.
trait FromRngSeed {
    fn from_rng_seed(seed: u64) -> StdRng;
}

impl FromRngSeed for StdRng {
    fn from_rng_seed(seed: u64) -> StdRng {
        use rand::SeedableRng;
        StdRng::seed_from_u64(seed)
    }
}

impl Fuzzer for Once4AllFuzzer {
    fn name(&self) -> String {
        let mut name = "Once4All".to_string();
        if !self.config.use_skeletons {
            name.push_str(" w/oS");
        }
        match self.config.profile.kind {
            o4a_llm::LlmKind::Gpt4 => {}
            o4a_llm::LlmKind::Gemini25Pro => name.push_str(" (Gemini)"),
            o4a_llm::LlmKind::Claude45Sonnet => name.push_str(" (Claude)"),
        }
        name
    }

    fn setup(&mut self, _rng: &mut StdRng) -> u64 {
        let mut llm = SimulatedLlm::new(self.config.profile.clone());
        let docs = o4a_llm::corpus::corpus();
        let mut validators: Vec<Box<dyn Validator>> = vec![
            Box::new(FrontendValidator::new(SolverId::OxiZ)),
            Box::new(FrontendValidator::new(SolverId::Cervo)),
        ];
        let report = construct_generators(
            &mut llm,
            &docs,
            &mut validators,
            ConstructOptions::default(),
        );
        self.generators = report.generators.clone();
        let cost = report.total_llm_micros;
        self.construction = Some(report);
        cost
    }

    fn next_case(&mut self, rng: &mut StdRng) -> TestCase {
        self.cases_emitted += 1;
        self.print_buf.clear();
        if !self.config.use_skeletons {
            // No skeleton state survives between cases, so the arena can be
            // recycled every time.
            self.arena.reset();
            let script = self.generator_only_case(rng);
            script.print_into(&self.arena, &mut self.print_buf);
        } else {
            // Algorithm 2: pick a seed, then mutate it for N iterations
            // before picking the next.
            if self.current.is_none() || self.iterations_left == 0 {
                let k = rng.gen_range(0..self.seeds.len());
                // Fresh seed: nothing references the arena any more, so all
                // terms accumulated across the previous mutation chain can
                // be dropped at once.
                self.arena.reset();
                self.current = Some(ArenaScript::from_script(&self.seeds[k], &mut self.arena));
                self.iterations_left = self.config.mutations_per_seed;
            }
            self.iterations_left -= 1;
            let seed = self.current.clone().expect("seed selected above");
            let skeleton: ArenaSkeleton =
                skeletonize_arena(&seed, &mut self.arena, self.config.skeleton, rng);
            let n_fills = rng.gen_range(1..=self.config.max_fills.max(1));
            let focus = if self.generators.is_empty() {
                None
            } else {
                Some(rng.gen_range(0..self.generators.len()))
            };
            let mut fills = Vec::new();
            for _ in 0..n_fills {
                if let Ok(f) = self.draw_fill_from(focus, rng) {
                    fills.push(adapt_fill_arena(&f, &skeleton, &mut self.arena, rng));
                }
            }
            if fills.is_empty() {
                // All samples invalid this round: fall back to a
                // generator-only case so throughput is preserved.
                let script = self.generator_only_case(rng);
                script.print_into(&self.arena, &mut self.print_buf);
            } else {
                let out = synthesize_arena(&skeleton, &fills, &mut self.arena, rng);
                out.print_into(&self.arena, &mut self.print_buf);
                // The mutant becomes the next iteration's seed (the paper
                // mutates f in place across the repeat loop) — unless it
                // outgrew the size budget, in which case the next call
                // restarts from a fresh seed (keeps throughput and mean
                // formula size in the paper's ballpark).
                if self.print_buf.len() > 3_000 {
                    self.current = None;
                } else {
                    self.current = Some(out);
                }
            }
        }
        let text = self.print_buf.clone();
        let gen_micros = 150 + text.len() as u64;
        TestCase { text, gen_micros }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn setup_fuzzer(cfg: Once4AllConfig) -> Once4AllFuzzer {
        let mut f = Once4AllFuzzer::new(cfg);
        let mut rng = StdRng::seed_from_u64(1);
        let cost = f.setup(&mut rng);
        assert!(cost > 0, "construction must cost LLM latency");
        f
    }

    #[test]
    fn produces_parseable_cases() {
        let mut f = setup_fuzzer(Once4AllConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        let mut parsed_ok = 0;
        for _ in 0..60 {
            let case = f.next_case(&mut rng);
            if o4a_smtlib::parse_script(&case.text).is_ok() {
                parsed_ok += 1;
            }
            assert!(case.text.contains("(check-sat)"));
        }
        assert!(parsed_ok >= 55, "only {parsed_ok}/60 parse");
    }

    #[test]
    fn skeleton_cases_keep_structural_features() {
        let mut f = setup_fuzzer(Once4AllConfig::default());
        let mut rng = StdRng::seed_from_u64(3);
        let mut quantified = 0;
        for _ in 0..80 {
            let case = f.next_case(&mut rng);
            if case.text.contains("forall") || case.text.contains("exists") {
                quantified += 1;
            }
        }
        assert!(
            quantified >= 10,
            "skeletons should preserve quantifiers, saw {quantified}/80"
        );
    }

    #[test]
    fn wos_variant_never_emits_quantifiers() {
        let mut f = setup_fuzzer(Once4AllConfig {
            use_skeletons: false,
            ..Once4AllConfig::default()
        });
        assert_eq!(f.name(), "Once4All w/oS");
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..40 {
            let case = f.next_case(&mut rng);
            assert!(!case.text.contains("forall"));
            assert!(!case.text.contains("exists"));
        }
    }

    #[test]
    fn cases_cover_extended_theories() {
        let mut f = setup_fuzzer(Once4AllConfig::default());
        let mut rng = StdRng::seed_from_u64(5);
        let mut extended = 0;
        for _ in 0..120 {
            let case = f.next_case(&mut rng);
            if case.text.contains("ff.")
                || case.text.contains("set.")
                || case.text.contains("bag")
                || case.text.contains("rel.")
            {
                extended += 1;
            }
        }
        assert!(
            extended >= 15,
            "generators must reach extended theories, saw {extended}/120"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let make = || {
            let mut f = setup_fuzzer(Once4AllConfig::default());
            let mut rng = StdRng::seed_from_u64(9);
            (0..10)
                .map(|_| f.next_case(&mut rng).text)
                .collect::<Vec<_>>()
        };
        assert_eq!(make(), make());
    }

    #[test]
    fn invalid_fill_rate_is_low_after_correction() {
        let mut f = setup_fuzzer(Once4AllConfig::default());
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..150 {
            f.next_case(&mut rng);
        }
        let rate = f.invalid_fill_rate();
        assert!(
            rate < 0.35,
            "invalid fill rate {rate:.2} too high after self-correction"
        );
    }
}
