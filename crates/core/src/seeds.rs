//! The seed corpus: formulas in the style of the historical bug-triggering
//! inputs prior work curated from the Z3/cvc5 issue trackers (the paper's
//! seed set), plus a deterministic synthetic expander.
//!
//! Seeds matter to Once4All as *skeleton donors*: they are deliberately
//! rich in quantifiers, `let` binders, nested Boolean structure,
//! uninterpreted functions and multi-theory atoms. They deliberately avoid
//! the cvc5-only extended theories (Sets/Bags/FiniteFields) — historical
//! seeds predate those extensions, which is precisely why mutation-only
//! baselines cannot reach them.

use o4a_smtlib::{parse_script, Script};

/// The embedded seed formulas (SMT-LIB text).
pub const SEED_TEXTS: &[&str] = &[
    // ---- Integer arithmetic with quantifiers and lets ----
    "(declare-fun T () Int)(assert (or (= T 0) (< T 1)))(check-sat)",
    "(declare-const x Int)(declare-const y Int)(assert (and (> x y) (= (mod x 3) 1) (< y 10)))(check-sat)",
    "(declare-const x Int)(assert (exists ((k Int)) (= x (* 2 k))))(check-sat)",
    "(declare-const n Int)(assert (forall ((i Int)) (or (< i 0) (distinct (mod n 7) i) (> i 6))))(check-sat)",
    "(declare-const a Int)(declare-const b Int)(assert (let ((s (+ a b))) (and (> s 0) (< s 10) (= (div s 2) a))))(check-sat)",
    "(declare-const x Int)(assert (and ((_ divisible 4) x) (not ((_ divisible 8) x))))(check-sat)",
    "(declare-const x Int)(declare-const y Int)(assert (=> (> x 0) (exists ((z Int)) (= (+ x z) y))))(check-sat)",
    "(declare-const u Int)(assert (let ((v (abs u))) (or (= v u) (= v (- u)))))(check-sat)",
    "(declare-const p Int)(assert (forall ((q Int)) (=> (and (> q 1) (< q p)) (distinct (mod p q) 0))))(check-sat)",
    "(declare-const x Int)(declare-const y Int)(declare-const z Int)(assert (ite (> x y) (= z x) (= z y)))(assert (>= z x))(check-sat)",
    "(declare-const k Int)(assert (exists ((m Int)) (and (= (* m m) k) (>= m 0))))(check-sat)",
    "(declare-const w Int)(assert (and (or (= w 1) (= w 2) (= w 3)) (not (= w 2))))(check-sat)",
    "(declare-const x Int)(assert (let ((a (div x 5)) (b (mod x 5))) (= x (+ (* 5 a) b))))(check-sat)",
    "(declare-const t Int)(assert (forall ((s Int)) (or (distinct s t) (= (abs s) (abs t)))))(check-sat)",
    "(declare-const x Int)(declare-const y Int)(assert (xor (> x y) (<= x y)))(check-sat)",
    // ---- Reals and mixed arithmetic ----
    "(declare-const r Real)(assert (and (< r 1.5) (> r 0.5) (= (to_int r) 1)))(check-sat)",
    "(declare-const x Real)(declare-const y Real)(assert (= (* x y) 1.0))(assert (> x 0.0))(check-sat)",
    "(declare-const x15 Bool)(declare-const x Real)(declare-const x1 Real)(declare-const x9 Bool)(declare-fun v () Real)(assert (forall ((r Real)) (or x9 (or (= (+ r 1.0) (mod 0 (to_int x)))))))(assert (and (> 0.0 x1) (< x (/ 1.0 (* v x))) (<= 0.0 (/ 0.0 v))))(check-sat)",
    "(declare-const a Real)(assert (exists ((e Real)) (and (> e 0.0) (< (to_real (to_int a)) (+ a e)))))(check-sat)",
    "(declare-const r Real)(assert (let ((h (/ r 2.0))) (= (+ h h) r)))(check-sat)",
    "(declare-const x Real)(assert (is_int (* x 4.0)))(assert (not (is_int x)))(check-sat)",
    "(declare-const p Real)(declare-const q Real)(assert (forall ((m Real)) (=> (and (< p m) (< m q)) (< p q))))(check-sat)",
    // ---- Bit-vectors (including concat/extract/bvor for skeleton atoms) ----
    "(declare-const b (_ BitVec 8))(assert (= (bvand b #x0f) #x0a))(check-sat)",
    "(declare-const b (_ BitVec 8))(assert (bvult (bvadd b #x01) b))(check-sat)",
    "(declare-const hi (_ BitVec 4))(declare-const lo (_ BitVec 4))(assert (= (concat hi lo) #xa5))(check-sat)",
    "(declare-const w (_ BitVec 8))(assert (= ((_ extract 7 4) w) ((_ extract 3 0) w)))(check-sat)",
    "(declare-const v (_ BitVec 8))(declare-const w (_ BitVec 4))(assert (= (bvor v ((_ extract 7 0) (concat w w))) v))(assert (distinct ((_ extract 3 0) (concat w w)) w))(check-sat)",
    "(declare-const x (_ BitVec 8))(declare-const y (_ BitVec 8))(assert (and (bvslt x y) (bvsgt x (bvneg y))))(check-sat)",
    "(declare-const b (_ BitVec 4))(assert (exists ((c (_ BitVec 4))) (= (bvxor b c) #xf)))(check-sat)",
    "(declare-const s (_ BitVec 8))(assert (= (bvshl s #x02) (bvmul s #x04)))(check-sat)",
    "(declare-const m (_ BitVec 8))(assert (distinct (bvlshr m #x01) (bvashr m #x01)))(check-sat)",
    "(declare-const z (_ BitVec 8))(assert (let ((n (bvnot z))) (= (bvand z n) #x00)))(check-sat)",
    "(declare-const a (_ BitVec 8))(assert (= (bvudiv a #x00) #xff))(check-sat)",
    "(declare-const k (_ BitVec 4))(assert (= ((_ rotate_left 2) k) ((_ rotate_right 2) k)))(check-sat)",
    // ---- Strings ----
    "(declare-const s String)(assert (and (= (str.len s) 3) (str.prefixof \"ab\" s)))(check-sat)",
    "(declare-const s String)(declare-const t String)(assert (= (str.++ s t) (str.++ t s)))(assert (distinct s t))(check-sat)",
    "(declare-const u String)(assert (str.contains (str.replace u \"a\" \"b\") \"a\"))(check-sat)",
    "(declare-const s String)(assert (exists ((i Int)) (and (>= i 0) (= (str.at s i) \"x\"))))(check-sat)",
    "(declare-const w String)(assert (= (str.indexof w \"ab\" 0) 2))(assert (= (str.len w) 4))(check-sat)",
    "(declare-const s String)(assert (let ((n (str.len s))) (and (> n 0) (= (str.substr s 0 n) s))))(check-sat)",
    "(declare-const d String)(assert (and (str.is_digit d) (= (str.to_code d) 53)))(check-sat)",
    "(declare-const s String)(assert (= (str.from_int (str.to_int s)) s))(check-sat)",
    "(declare-const a String)(declare-const b String)(assert (forall ((c String)) (=> (and (str.prefixof c a) (str.suffixof c b)) (<= (str.len c) 2))))(check-sat)",
    "(declare-const t String)(assert (distinct (str.replace_all t \"aa\" \"b\") t))(check-sat)",
    // ---- Arrays ----
    "(declare-const a (Array Int Int))(assert (= (select (store a 0 5) 0) 5))(check-sat)",
    "(declare-const a (Array Int Int))(declare-const i Int)(assert (distinct (select (store (store a i 1) (+ i 1) 2) i) 1))(check-sat)",
    "(declare-const a (Array Int Int))(declare-const b (Array Int Int))(assert (and (= (store a 1 2) (store b 1 2)) (distinct (select a 3) (select b 3))))(check-sat)",
    "(declare-const a (Array Int Int))(assert (forall ((i Int)) (= (select a i) (select a (- i)))))(check-sat)",
    "(declare-const a (Array Int Int))(assert (let ((v (select a 7))) (= (store a 7 v) a)))(check-sat)",
    "(declare-const a (Array Int Int))(declare-const j Int)(assert (exists ((k Int)) (and (distinct k j) (= (select (store (store a j 1) k 2) j) 2))))(check-sat)",
    // ---- Uninterpreted functions ----
    "(declare-fun f (Int) Int)(declare-const x Int)(assert (= (f (f x)) x))(assert (distinct (f x) x))(check-sat)",
    "(declare-fun g (Int Int) Bool)(assert (forall ((a Int) (b Int)) (=> (g a b) (g b a))))(assert (g 1 2))(check-sat)",
    "(declare-fun h (Int) Int)(assert (exists ((y Int)) (and (= (h y) y) (> y 0))))(check-sat)",
    "(declare-fun f (Int) Int)(declare-fun g (Int) Int)(assert (forall ((x Int)) (= (f (g x)) (g (f x)))))(assert (distinct (f 0) (g 0)))(check-sat)",
    "(declare-sort U 0)(declare-const e U)(declare-fun m (U) U)(assert (distinct (m e) e))(check-sat)",
    "(declare-fun p (Int) Bool)(assert (and (p 0) (not (p 1)) (forall ((i Int)) (=> (p i) (not (p (+ i 1)))))))(check-sat)",
    // ---- Sequences (supported by both solvers; skeleton donors for the
    //      Figure 1 bug family) ----
    "(declare-fun s () (Seq Int))(assert (exists ((f Int)) (distinct (seq.len (seq.rev s)) (seq.nth (as seq.empty (Seq Int)) (div 0 0)))))(check-sat)",
    "(declare-const q (Seq Int))(assert (= (seq.len q) 2))(assert (= (seq.nth q 0) (seq.nth q 1)))(check-sat)",
    "(declare-const q (Seq Int))(assert (seq.contains q (seq.unit 3)))(assert (< (seq.len q) 3))(check-sat)",
    "(declare-const a (Seq Int))(declare-const b (Seq Int))(assert (= (seq.++ a b) (seq.++ b a)))(assert (distinct a b))(check-sat)",
    "(declare-const s (Seq Int))(assert (forall ((i Int)) (=> (and (>= i 0) (< i (seq.len s))) (>= (seq.nth s i) 0))))(check-sat)",
    "(declare-const s (Seq Int))(assert (let ((r (seq.rev s))) (= (seq.len r) (seq.len s))))(check-sat)",
    "(declare-const s (Seq Int))(assert (= (seq.extract s 0 1) (seq.at s 0)))(check-sat)",
    "(declare-const s (Seq Int))(assert (exists ((k Int)) (= (seq.indexof s (seq.unit 5) 0) k)))(check-sat)",
    // ---- Multi-theory combinations ----
    "(declare-const x Int)(declare-const s String)(assert (= (str.len s) x))(assert (> x (str.to_int s)))(check-sat)",
    "(declare-const b (_ BitVec 8))(declare-const i Int)(assert (and (> i 0) (bvult b #x10)))(assert (exists ((j Int)) (= (* j i) 12)))(check-sat)",
    "(declare-const a (Array Int Int))(declare-fun f (Int) Int)(assert (forall ((i Int)) (= (select a i) (f i))))(assert (distinct (f 0) (select a 0)))(check-sat)",
    "(declare-const r Real)(declare-const n Int)(assert (let ((c (to_real n))) (and (< c r) (< r (+ c 1.0)))))(check-sat)",
    "(declare-const s String)(declare-const q (Seq Int))(assert (= (str.len s) (seq.len q)))(assert (exists ((i Int)) (= (seq.nth q i) (str.to_code (str.at s i)))))(check-sat)",
    "(declare-const p Bool)(declare-const x Int)(assert (ite p (exists ((k Int)) (= x (* k k))) (forall ((k Int)) (distinct x (* k k)))))(check-sat)",
    // ---- Deep boolean structure (skeleton donors) ----
    "(declare-const p Bool)(declare-const q Bool)(declare-const r Bool)(assert (or (and p (not q)) (and q (not r)) (and r (not p))))(check-sat)",
    "(declare-const a Bool)(declare-const b Bool)(assert (let ((c (xor a b))) (=> c (and (or a b) (not (and a b))))))(check-sat)",
    "(declare-const x Int)(assert (not (or (not (and (> x 0) (< x 5))) (not (distinct x 3)))))(check-sat)",
    "(declare-const u Int)(declare-const v Int)(assert (and (or (= u 0) (or (= v 0) (and (> u v) (< u (+ v 10))))) (not (and (= u 0) (= v 0)))))(check-sat)",
    "(declare-const x Int)(assert (forall ((a Int)) (exists ((b Int)) (=> (> a x) (and (> b a) (let ((d (- b a))) (> d 0)))))))(check-sat)",
];

/// Parses every embedded seed.
///
/// # Panics
///
/// Panics when an embedded seed fails to parse — that is a build-breaking
/// corpus bug, covered by tests.
pub fn parsed_seeds() -> Vec<Script> {
    SEED_TEXTS
        .iter()
        .map(|t| parse_script(t).unwrap_or_else(|e| panic!("bad seed: {e}\n{t}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use o4a_smtlib::{typeck, Theory};

    #[test]
    fn all_seeds_parse_and_typecheck() {
        for text in SEED_TEXTS {
            let s = parse_script(text).unwrap_or_else(|e| panic!("{e}\n{text}"));
            typeck::check_script(&s).unwrap_or_else(|e| panic!("{e}\n{text}"));
        }
    }

    #[test]
    fn corpus_is_structurally_rich() {
        let seeds = parsed_seeds();
        assert!(seeds.len() >= 70);
        let quantified = seeds
            .iter()
            .filter(|s| s.assertions().any(|a| a.has_quantifier()))
            .count();
        assert!(quantified >= 20, "only {quantified} quantified seeds");
        let with_lets = seeds
            .iter()
            .filter(|s| {
                s.assertions().any(|a| {
                    let mut has = false;
                    a.visit(&mut |t| {
                        if matches!(t, o4a_smtlib::Term::Let(_, _)) {
                            has = true;
                        }
                    });
                    has
                })
            })
            .count();
        assert!(with_lets >= 8, "only {with_lets} seeds with let");
    }

    #[test]
    fn corpus_avoids_cvc5_only_extensions() {
        for s in parsed_seeds() {
            let th = s.theories();
            assert!(!th.contains(&Theory::Sets));
            assert!(!th.contains(&Theory::Bags));
            assert!(!th.contains(&Theory::FiniteFields));
        }
    }

    #[test]
    fn corpus_spans_standard_theories() {
        let mut seen = std::collections::BTreeSet::new();
        for s in parsed_seeds() {
            seen.extend(s.theories());
        }
        for t in [
            Theory::Ints,
            Theory::Reals,
            Theory::BitVectors,
            Theory::Strings,
            Theory::Arrays,
            Theory::Uf,
            Theory::Sequences,
        ] {
            assert!(seen.contains(&t), "no seed exercises {t}");
        }
    }
}
