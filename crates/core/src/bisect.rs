//! Correcting-commit identification (paper §4.3): given a bug-triggering
//! formula that reproduces on an old version but not on trunk, binary
//! search the commit history for the fix commit. Distinct correcting
//! commits ⇒ distinct bugs — the uniqueness criterion of the RQ2
//! comparison.

use crate::oracle::model_satisfies;
use o4a_smtlib::parse_script;
use o4a_solvers::{solver_with_config, CommitIdx, EngineConfig, Outcome, SolverId};

/// Whether the bug manifests when `case_text` is run at `commit`:
/// a crash, an invalid model, or a decisive verdict different from the
/// trunk verdict (`fixed_outcome`).
fn reproduces(
    solver: SolverId,
    commit: CommitIdx,
    case_text: &str,
    fixed_outcome: &Outcome,
    engine: &EngineConfig,
) -> bool {
    let mut s = solver_with_config(solver, commit, engine.clone());
    let r = s.check(case_text);
    match &r.outcome {
        Outcome::Crash(_) => true,
        Outcome::Sat => {
            if let (Ok(script), Some(model)) = (parse_script(case_text), &r.model) {
                if model_satisfies(&script, model) == Some(false) {
                    return true;
                }
            }
            matches!(fixed_outcome, Outcome::Unsat)
        }
        Outcome::Unsat => matches!(fixed_outcome, Outcome::Sat),
        _ => false,
    }
}

/// Finds the correcting commit of a bug that reproduces at `lo` but not at
/// `hi`: the smallest commit in `(lo, hi]` where the behaviour matches the
/// fixed behaviour. Returns `None` when the premise does not hold (no
/// reproduction at `lo`, or still broken at `hi`).
///
/// Uses binary search exactly as the paper describes ("we exploit binary
/// search to accelerate the process").
pub fn correcting_commit(
    solver: SolverId,
    case_text: &str,
    lo: CommitIdx,
    hi: CommitIdx,
    engine: &EngineConfig,
) -> Option<CommitIdx> {
    let fixed_outcome = {
        let mut s = solver_with_config(solver, hi, engine.clone());
        s.check(case_text).outcome
    };
    if !reproduces(solver, lo, case_text, &fixed_outcome, engine) {
        return None;
    }
    if reproduces(solver, hi, case_text, &fixed_outcome, engine) {
        return None; // still broken on trunk: an open bug, not a known one
    }
    let (mut bad, mut good) = (lo, hi);
    while good - bad > 1 {
        let mid = bad + (good - bad) / 2;
        if reproduces(solver, mid, case_text, &fixed_outcome, engine) {
            bad = mid;
        } else {
            good = mid;
        }
    }
    Some(good)
}

#[cfg(test)]
mod tests {
    use super::*;
    use o4a_solvers::bugs::registry;
    use o4a_solvers::versions::latest_release;
    use o4a_solvers::{FormulaFeatures, TRUNK_COMMIT};

    /// Finds a formula variant that structurally matches a historical bug's
    /// trigger and passes its rarity gate.
    fn triggering_case(bug_id: &str, template: &str) -> Option<String> {
        let spec = registry().iter().find(|b| b.id == bug_id).unwrap();
        for n in 0..200 {
            let text = template.replace("{N}", &n.to_string());
            let script = parse_script(&text).unwrap();
            let f = FormulaFeatures::of(&script);
            if spec.trigger.fires(&f) {
                return Some(text);
            }
        }
        None
    }

    #[test]
    fn bisection_recovers_fix_commit_of_hc_04() {
        // hc-04: Cervo crash on seq.nth + seq.len, introduced 50, fixed 80.
        let case = triggering_case(
            "hc-04",
            "(declare-const q (Seq Int))\
             (assert (= (seq.nth q {N}) (seq.len q)))(check-sat)",
        )
        .expect("no triggering variant found");
        let release = latest_release(SolverId::Cervo);
        let engine = EngineConfig::default();
        let fix = correcting_commit(
            SolverId::Cervo,
            &case,
            release.commit,
            TRUNK_COMMIT,
            &engine,
        );
        assert_eq!(fix, Some(80));
    }

    #[test]
    fn bisection_recovers_fix_commit_of_hz_01() {
        // hz-01: OxiZ crash on +/mod, introduced 30, fixed 75.
        let case = triggering_case(
            "hz-01",
            "(declare-const x Int)\
             (assert (= (+ x {N}) (mod x 3)))(check-sat)",
        )
        .expect("no triggering variant found");
        let release = latest_release(SolverId::OxiZ);
        let engine = EngineConfig::default();
        let fix = correcting_commit(SolverId::OxiZ, &case, release.commit, TRUNK_COMMIT, &engine);
        assert_eq!(fix, Some(75));
    }

    #[test]
    fn open_trunk_bugs_have_no_correcting_commit() {
        // cv-07 is open at trunk; bisection must refuse.
        let case = triggering_case(
            "cv-07",
            "(declare-fun r () (Relation Int Int))\
             (assert (set.member (tuple {N} {N}) (rel.join r r)))(check-sat)",
        )
        .expect("no triggering variant found");
        let engine = EngineConfig::default();
        let fix = correcting_commit(SolverId::Cervo, &case, 60, TRUNK_COMMIT, &engine);
        assert_eq!(fix, None);
    }

    #[test]
    fn non_triggering_case_has_no_correcting_commit() {
        let engine = EngineConfig::default();
        let fix = correcting_commit(
            SolverId::OxiZ,
            "(assert true)(check-sat)",
            10,
            TRUNK_COMMIT,
            &engine,
        );
        assert_eq!(fix, None);
    }
}
