//! The differential oracle (paper §3.3, validation step): compare solver
//! verdicts, validate models by re-evaluation, and classify discrepancies
//! into the three bug classes.

use o4a_smtlib::eval::{DomainConfig, Evaluator};
use o4a_smtlib::{parse_script, Command, Script, Sort, Symbol, Term, Value};
use o4a_solvers::{Outcome, SolverId, SolverResponse};
use std::collections::BTreeMap;

/// The oracle's judgement of one test case.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// No observable problem.
    Ok,
    /// A solver crashed.
    Crash {
        /// The crashing solver.
        solver: SolverId,
        /// The crash-stack signature (dedup key).
        signature: String,
    },
    /// `sat` vs `unsat` disagreement; when the sat model re-evaluates to
    /// true, the unsat side is the unsound one (the paper's direction
    /// test).
    Soundness {
        /// Solver that answered `sat`.
        sat_solver: SolverId,
        /// Solver that answered `unsat`.
        unsat_solver: SolverId,
        /// Whether the model confirmed the sat answer (None when the model
        /// was absent or undecidable).
        model_confirms_sat: Option<bool>,
    },
    /// A solver answered `sat` with a model that does not satisfy the
    /// formula.
    InvalidModel {
        /// The offending solver.
        solver: SolverId,
    },
    /// Nothing comparable (parse errors, unknowns, timeouts).
    NotComparable,
}

impl Verdict {
    /// True when the verdict indicates a bug.
    pub fn is_bug(&self) -> bool {
        matches!(
            self,
            Verdict::Crash { .. } | Verdict::Soundness { .. } | Verdict::InvalidModel { .. }
        )
    }
}

/// Evaluates a script's assertions under a model with the golden evaluator.
///
/// Returns `Some(true)`/`Some(false)` when every assertion evaluates
/// decisively, `None` when evaluation is incomplete or errors (in which
/// case no invalid-model claim may be made).
pub fn model_satisfies(script: &Script, model: &o4a_smtlib::Model) -> Option<bool> {
    let mut defs: BTreeMap<Symbol, (Vec<(Symbol, Sort)>, Term)> = BTreeMap::new();
    for cmd in &script.commands {
        if let Command::DefineFun(name, params, _, body) = cmd {
            defs.insert(name.clone(), (params.clone(), body.clone()));
        }
    }
    let cfg = DomainConfig::default();
    let ev = Evaluator::new(model, &defs, &cfg, 200_000);
    let mut all = true;
    for a in script.assertions() {
        match ev.eval(a) {
            Ok(Value::Bool(true)) => {}
            Ok(Value::Bool(false)) => all = false,
            _ => return None,
        }
    }
    Some(all)
}

/// Judges one test case from the responses of the solvers that ran it.
///
/// The checks, in the paper's priority order:
/// 1. any crash → crash bug;
/// 2. any `sat` whose model re-evaluates to false → invalid-model bug
///    (the `model_validate=true` / `--check-models` pathway);
/// 3. a `sat`/`unsat` pair → soundness bug, direction decided by model
///    re-evaluation when possible;
/// 4. otherwise nothing to report.
pub fn judge(case_text: &str, responses: &[(SolverId, SolverResponse)]) -> Verdict {
    for (solver, r) in responses {
        if let Outcome::Crash(info) = &r.outcome {
            return Verdict::Crash {
                solver: *solver,
                signature: info.signature.clone(),
            };
        }
    }

    let script = match parse_script(case_text) {
        Ok(s) => s,
        Err(_) => return Verdict::NotComparable,
    };

    for (solver, r) in responses {
        if r.outcome == Outcome::Sat {
            if let Some(model) = &r.model {
                if model_satisfies(&script, model) == Some(false) {
                    return Verdict::InvalidModel { solver: *solver };
                }
            }
        }
    }

    let sat = responses.iter().find(|(_, r)| r.outcome == Outcome::Sat);
    let unsat = responses.iter().find(|(_, r)| r.outcome == Outcome::Unsat);
    if let (Some((ss, sr)), Some((us, _))) = (sat, unsat) {
        let model_confirms_sat = sr.model.as_ref().and_then(|m| model_satisfies(&script, m));
        return Verdict::Soundness {
            sat_solver: *ss,
            unsat_solver: *us,
            model_confirms_sat,
        };
    }

    Verdict::Ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use o4a_smtlib::Model;
    use o4a_solvers::{CrashInfo, CrashKind, SolveStats};

    fn resp(outcome: Outcome, model: Option<Model>) -> SolverResponse {
        SolverResponse {
            outcome,
            model,
            stats: SolveStats::default(),
        }
    }

    const CASE: &str = "(declare-const x Int)(assert (> x 5))(check-sat)";

    fn good_model() -> Model {
        let mut m = Model::new();
        m.set_const(Symbol::new("x"), Value::Int(6));
        m
    }

    fn bad_model() -> Model {
        let mut m = Model::new();
        m.set_const(Symbol::new("x"), Value::Int(0));
        m
    }

    #[test]
    fn crash_dominates() {
        let v = judge(
            CASE,
            &[
                (
                    SolverId::OxiZ,
                    resp(
                        Outcome::Crash(CrashInfo {
                            signature: "oxiz::x:1".into(),
                            kind: CrashKind::SegFault,
                        }),
                        None,
                    ),
                ),
                (SolverId::Cervo, resp(Outcome::Sat, Some(good_model()))),
            ],
        );
        assert!(matches!(
            v,
            Verdict::Crash {
                solver: SolverId::OxiZ,
                ..
            }
        ));
    }

    #[test]
    fn invalid_model_detected() {
        let v = judge(
            CASE,
            &[(SolverId::Cervo, resp(Outcome::Sat, Some(bad_model())))],
        );
        assert_eq!(
            v,
            Verdict::InvalidModel {
                solver: SolverId::Cervo
            }
        );
    }

    #[test]
    fn soundness_with_confirming_model() {
        let v = judge(
            CASE,
            &[
                (SolverId::OxiZ, resp(Outcome::Sat, Some(good_model()))),
                (SolverId::Cervo, resp(Outcome::Unsat, None)),
            ],
        );
        match v {
            Verdict::Soundness {
                sat_solver,
                unsat_solver,
                model_confirms_sat,
            } => {
                assert_eq!(sat_solver, SolverId::OxiZ);
                assert_eq!(unsat_solver, SolverId::Cervo);
                assert_eq!(model_confirms_sat, Some(true));
            }
            other => panic!("expected soundness, got {other:?}"),
        }
    }

    #[test]
    fn agreement_is_ok() {
        let v = judge(
            CASE,
            &[
                (SolverId::OxiZ, resp(Outcome::Sat, Some(good_model()))),
                (SolverId::Cervo, resp(Outcome::Sat, Some(good_model()))),
            ],
        );
        assert_eq!(v, Verdict::Ok);
        assert!(!v.is_bug());
    }

    #[test]
    fn unknown_vs_decisive_not_comparable_as_bug() {
        let v = judge(
            CASE,
            &[
                (SolverId::OxiZ, resp(Outcome::Unknown, None)),
                (SolverId::Cervo, resp(Outcome::Unsat, None)),
            ],
        );
        assert_eq!(v, Verdict::Ok);
    }

    #[test]
    fn model_satisfies_handles_quantifiers() {
        let script = parse_script(
            "(declare-const x Int)\
             (assert (exists ((k Int)) (= x (* k k))))(check-sat)",
        )
        .unwrap();
        let mut m = Model::new();
        m.set_const(Symbol::new("x"), Value::Int(4));
        assert_eq!(model_satisfies(&script, &m), Some(true));
        // x = 3 has no square witness in the bounded domain, and Int is not
        // exhaustible, so the existential cannot be refuted: undecidable.
        m.set_const(Symbol::new("x"), Value::Int(3));
        assert_eq!(model_satisfies(&script, &m), None);
        // Quantification over Bool is exhaustible and decisively false.
        let script2 = parse_script(
            "(declare-const x Int)\
             (assert (exists ((b Bool)) (and b (not b) (= x 3))))(check-sat)",
        )
        .unwrap();
        assert_eq!(model_satisfies(&script2, &m), Some(false));
    }

    #[test]
    fn incomplete_models_yield_none() {
        let script = parse_script(
            "(declare-const x Int)\
             (assert (forall ((k Int)) (distinct x (* k k k k))))(check-sat)",
        )
        .unwrap();
        let mut m = Model::new();
        m.set_const(Symbol::new("x"), Value::Int(7));
        // No counterexample in the bounded domain and Int is incomplete.
        assert_eq!(model_satisfies(&script, &m), None);
    }
}
