//! Skeleton extraction (paper §3.3, step 1): replace random atomic
//! sub-formulas of a seed with `<placeholder>` markers while preserving the
//! logical structure — quantifiers, `let` binders, and connectives — that
//! Observation 2 identifies as bug-critical.

use o4a_smtlib::{Command, Script, Sort, Symbol, Term};
use rand::Rng;

/// Tuning for skeleton extraction.
#[derive(Clone, Copy, Debug)]
pub struct SkeletonConfig {
    /// Probability of replacing each atomic sub-formula.
    pub replace_probability: f64,
    /// Upper bound on placeholders per script.
    pub max_placeholders: usize,
}

impl Default for SkeletonConfig {
    fn default() -> Self {
        SkeletonConfig {
            replace_probability: 0.6,
            max_placeholders: 4,
        }
    }
}

/// A skeleton: the hollowed script plus bookkeeping about what it kept.
#[derive(Clone, Debug)]
pub struct Skeleton {
    /// The script with placeholders in place of removed atoms.
    pub script: Script,
    /// Number of placeholders inserted.
    pub placeholder_count: usize,
    /// Declared variables visible to inserted terms (name, sort) — the
    /// adaptation step matches generated-term variables against these.
    pub variables: Vec<(Symbol, Sort)>,
}

/// Extracts a skeleton from a seed script.
///
/// Atomic Boolean sub-formulas (Boolean-valued applications whose head is
/// not a connective) are replaced by placeholders with the configured
/// probability; at least one placeholder is always inserted when any atom
/// exists, so the skeleton is never a no-op.
pub fn skeletonize(seed: &Script, cfg: SkeletonConfig, rng: &mut impl Rng) -> Skeleton {
    let mut counter = 0u32;
    let mut script = seed.clone();

    // Collect atoms first so we can force at least one replacement.
    let mut atom_total = 0usize;
    for t in seed.assertions() {
        atom_total += count_atoms(t);
    }
    let force_index = if atom_total > 0 {
        Some(rng.gen_range(0..atom_total))
    } else {
        None
    };

    let mut seen = 0usize;
    for term in script.assertions_mut() {
        *term = replace_atoms(term, cfg, rng, &mut counter, &mut seen, force_index);
    }

    let variables = script
        .declarations()
        .into_iter()
        .filter(|(_, args, _)| args.is_empty())
        .map(|(name, _, ret)| (name, ret))
        .collect();

    Skeleton {
        placeholder_count: counter as usize,
        variables,
        script,
    }
}

/// True when a term is an *atomic formula* in the paper's sense: a
/// Boolean-valued application whose head is not a logical connective.
/// (Sort information is approximated structurally: comparison/predicate
/// heads and Boolean constants/variables inside connectives.)
fn is_atom(t: &Term) -> bool {
    match t {
        Term::App(_, _) => !t.is_logical_connective(),
        Term::Const(o4a_smtlib::Value::Bool(_)) | Term::Var(_) => true,
        _ => false,
    }
}

fn count_atoms(t: &Term) -> usize {
    match t {
        Term::App(op, args) if t.is_logical_connective() => {
            let _ = op;
            args.iter().map(count_atoms).sum()
        }
        Term::Let(binds, body) => {
            binds.iter().map(|(_, v)| count_atoms(v)).sum::<usize>() + count_atoms(body)
        }
        Term::Quant(_, _, body) => count_atoms(body),
        t if is_atom(t) => 1,
        _ => 0,
    }
}

/// Walks the Boolean structure, replacing atoms. Only positions of Boolean
/// sort are candidates: connective children, quantifier bodies, and `let`
/// bodies in Boolean context (binder *values* are left untouched — their
/// sort is unknown and replacing them would break well-sortedness).
fn replace_atoms(
    t: &Term,
    cfg: SkeletonConfig,
    rng: &mut impl Rng,
    counter: &mut u32,
    seen: &mut usize,
    force_index: Option<usize>,
) -> Term {
    if is_atom(t) {
        let my_index = *seen;
        *seen += 1;
        let forced = force_index == Some(my_index);
        let replace = (*counter as usize) < cfg.max_placeholders
            && (forced || rng.gen_bool(cfg.replace_probability));
        if replace {
            let p = Term::Placeholder(*counter);
            *counter += 1;
            return p;
        }
        return t.clone();
    }
    match t {
        Term::App(op, args) if t.is_logical_connective() => Term::App(
            op.clone(),
            args.iter()
                .map(|a| replace_atoms(a, cfg, rng, counter, seen, force_index))
                .collect(),
        ),
        Term::Quant(q, vars, body) => Term::Quant(
            *q,
            vars.clone(),
            Box::new(replace_atoms(body, cfg, rng, counter, seen, force_index)),
        ),
        Term::Let(binds, body) => {
            // Binder values keep their atoms (counted but never replaced in
            // non-Boolean positions; Boolean-valued binder values are rare
            // and safely left intact).
            for (_, v) in binds {
                *seen += count_atoms(v);
            }
            Term::Let(
                binds.clone(),
                Box::new(replace_atoms(body, cfg, rng, counter, seen, force_index)),
            )
        }
        other => other.clone(),
    }
}

/// Strips `check-sat`/`get-model` commands from a skeleton script (the
/// fuzzer re-appends them after filling).
pub fn strip_commands(script: &mut Script) {
    script
        .commands
        .retain(|c| !matches!(c, Command::CheckSat | Command::GetModel | Command::Exit));
}

#[cfg(test)]
mod tests {
    use super::*;
    use o4a_smtlib::parse_script;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn skeleton_always_inserts_at_least_one_placeholder() {
        let seed =
            parse_script("(declare-fun T () Int)(assert (or (= T 0) (< T 1)))(check-sat)").unwrap();
        for i in 0..50 {
            let mut r = StdRng::seed_from_u64(i);
            let sk = skeletonize(&seed, SkeletonConfig::default(), &mut r);
            assert!(sk.placeholder_count >= 1);
            assert!(sk.script.has_placeholders());
        }
    }

    #[test]
    fn skeleton_preserves_quantifier_structure() {
        // The paper's running example: (exists ((f Int)) <placeholder>).
        let seed = parse_script(
            "(declare-fun s () (Seq Int))\
             (assert (exists ((f Int)) (distinct (seq.len s) 0)))(check-sat)",
        )
        .unwrap();
        let cfg = SkeletonConfig {
            replace_probability: 1.0,
            max_placeholders: 8,
        };
        let sk = skeletonize(&seed, cfg, &mut rng());
        let printed = sk.script.to_string();
        assert!(
            printed.contains("(exists ((f Int)) <placeholder>)"),
            "{printed}"
        );
    }

    #[test]
    fn skeleton_respects_max_placeholders() {
        let seed = parse_script(
            "(declare-const a Bool)(declare-const b Bool)(declare-const c Bool)\
             (declare-const d Bool)(declare-const e Bool)(declare-const f Bool)\
             (assert (and a b c d e f))(check-sat)",
        )
        .unwrap();
        let cfg = SkeletonConfig {
            replace_probability: 1.0,
            max_placeholders: 3,
        };
        let sk = skeletonize(&seed, cfg, &mut rng());
        assert_eq!(sk.placeholder_count, 3);
    }

    #[test]
    fn variables_collected_with_sorts() {
        let seed = parse_script(
            "(declare-const x Int)(declare-fun s () (Seq Int))\
             (declare-fun f (Int) Int)\
             (assert (> x (seq.len s)))(check-sat)",
        )
        .unwrap();
        let sk = skeletonize(&seed, SkeletonConfig::default(), &mut rng());
        // n-ary functions are not adaptation targets.
        assert_eq!(sk.variables.len(), 2);
        assert!(sk
            .variables
            .iter()
            .any(|(n, s)| n.as_str() == "x" && *s == o4a_smtlib::Sort::Int));
    }

    #[test]
    fn non_boolean_positions_untouched() {
        // The arithmetic subterm (+ x 1) must never become a placeholder.
        let seed = parse_script("(declare-const x Int)(assert (= (+ x 1) 2))(check-sat)").unwrap();
        let cfg = SkeletonConfig {
            replace_probability: 1.0,
            max_placeholders: 8,
        };
        let sk = skeletonize(&seed, cfg, &mut rng());
        assert_eq!(sk.placeholder_count, 1, "only the whole atom is replaced");
        assert!(sk.script.to_string().contains("(assert <placeholder>)"));
    }

    #[test]
    fn strip_commands_removes_check_sat() {
        let mut s = parse_script("(assert true)(check-sat)(get-model)").unwrap();
        strip_commands(&mut s);
        assert_eq!(s.commands.len(), 1);
    }
}
