//! Skeleton extraction (paper §3.3, step 1): replace random atomic
//! sub-formulas of a seed with `<placeholder>` markers while preserving the
//! logical structure — quantifiers, `let` binders, and connectives — that
//! Observation 2 identifies as bug-critical.

use o4a_smtlib::{
    ANode, ArenaCommand, ArenaScript, Command, Op, Script, Sort, Symbol, Term, TermArena, TermId,
    Value,
};
use rand::Rng;

/// Tuning for skeleton extraction.
#[derive(Clone, Copy, Debug)]
pub struct SkeletonConfig {
    /// Probability of replacing each atomic sub-formula.
    pub replace_probability: f64,
    /// Upper bound on placeholders per script.
    pub max_placeholders: usize,
}

impl Default for SkeletonConfig {
    fn default() -> Self {
        SkeletonConfig {
            replace_probability: 0.6,
            max_placeholders: 4,
        }
    }
}

/// A skeleton: the hollowed script plus bookkeeping about what it kept.
#[derive(Clone, Debug)]
pub struct Skeleton {
    /// The script with placeholders in place of removed atoms.
    pub script: Script,
    /// Number of placeholders inserted.
    pub placeholder_count: usize,
    /// Declared variables visible to inserted terms (name, sort) — the
    /// adaptation step matches generated-term variables against these.
    pub variables: Vec<(Symbol, Sort)>,
}

/// Extracts a skeleton from a seed script.
///
/// Atomic Boolean sub-formulas (Boolean-valued applications whose head is
/// not a connective) are replaced by placeholders with the configured
/// probability; at least one placeholder is always inserted when any atom
/// exists, so the skeleton is never a no-op.
pub fn skeletonize(seed: &Script, cfg: SkeletonConfig, rng: &mut impl Rng) -> Skeleton {
    let mut counter = 0u32;
    let mut script = seed.clone();

    // Collect atoms first so we can force at least one replacement.
    let mut atom_total = 0usize;
    for t in seed.assertions() {
        atom_total += count_atoms(t);
    }
    let force_index = if atom_total > 0 {
        Some(rng.gen_range(0..atom_total))
    } else {
        None
    };

    let mut seen = 0usize;
    for term in script.assertions_mut() {
        *term = replace_atoms(term, cfg, rng, &mut counter, &mut seen, force_index);
    }

    let variables = script
        .declarations()
        .into_iter()
        .filter(|(_, args, _)| args.is_empty())
        .map(|(name, _, ret)| (name, ret))
        .collect();

    Skeleton {
        placeholder_count: counter as usize,
        variables,
        script,
    }
}

/// True when a term is an *atomic formula* in the paper's sense: a
/// Boolean-valued application whose head is not a logical connective.
/// (Sort information is approximated structurally: comparison/predicate
/// heads and Boolean constants/variables inside connectives.)
fn is_atom(t: &Term) -> bool {
    match t {
        Term::App(_, _) => !t.is_logical_connective(),
        Term::Const(o4a_smtlib::Value::Bool(_)) | Term::Var(_) => true,
        _ => false,
    }
}

fn count_atoms(t: &Term) -> usize {
    match t {
        Term::App(op, args) if t.is_logical_connective() => {
            let _ = op;
            args.iter().map(count_atoms).sum()
        }
        Term::Let(binds, body) => {
            binds.iter().map(|(_, v)| count_atoms(v)).sum::<usize>() + count_atoms(body)
        }
        Term::Quant(_, _, body) => count_atoms(body),
        t if is_atom(t) => 1,
        _ => 0,
    }
}

/// Walks the Boolean structure, replacing atoms. Only positions of Boolean
/// sort are candidates: connective children, quantifier bodies, and `let`
/// bodies in Boolean context (binder *values* are left untouched — their
/// sort is unknown and replacing them would break well-sortedness).
fn replace_atoms(
    t: &Term,
    cfg: SkeletonConfig,
    rng: &mut impl Rng,
    counter: &mut u32,
    seen: &mut usize,
    force_index: Option<usize>,
) -> Term {
    if is_atom(t) {
        let my_index = *seen;
        *seen += 1;
        let forced = force_index == Some(my_index);
        let replace = (*counter as usize) < cfg.max_placeholders
            && (forced || rng.gen_bool(cfg.replace_probability));
        if replace {
            let p = Term::Placeholder(*counter);
            *counter += 1;
            return p;
        }
        return t.clone();
    }
    match t {
        Term::App(op, args) if t.is_logical_connective() => Term::App(
            op.clone(),
            args.iter()
                .map(|a| replace_atoms(a, cfg, rng, counter, seen, force_index))
                .collect(),
        ),
        Term::Quant(q, vars, body) => Term::Quant(
            *q,
            vars.clone(),
            Box::new(replace_atoms(body, cfg, rng, counter, seen, force_index)),
        ),
        Term::Let(binds, body) => {
            // Binder values keep their atoms (counted but never replaced in
            // non-Boolean positions; Boolean-valued binder values are rare
            // and safely left intact).
            for (_, v) in binds {
                *seen += count_atoms(v);
            }
            Term::Let(
                binds.clone(),
                Box::new(replace_atoms(body, cfg, rng, counter, seen, force_index)),
            )
        }
        other => other.clone(),
    }
}

/// Strips `check-sat`/`get-model` commands from a skeleton script (the
/// fuzzer re-appends them after filling).
pub fn strip_commands(script: &mut Script) {
    script
        .commands
        .retain(|c| !matches!(c, Command::CheckSat | Command::GetModel | Command::Exit));
}

/// Arena twin of [`Skeleton`]: the hollowed script's terms live as
/// [`TermId`]s in the fuzzer's arena.
#[derive(Clone, Debug)]
pub struct ArenaSkeleton {
    /// The script with placeholders in place of removed atoms.
    pub script: ArenaScript,
    /// Number of placeholders inserted.
    pub placeholder_count: usize,
    /// Declared variables visible to inserted terms (name, sort).
    pub variables: Vec<(Symbol, Sort)>,
}

/// Arena twin of [`skeletonize`]: same traversal, same RNG draw sequence,
/// byte-identical hollowed script — but untouched subtrees keep their node
/// ids instead of being deep-cloned.
pub fn skeletonize_arena(
    seed: &ArenaScript,
    arena: &mut TermArena,
    cfg: SkeletonConfig,
    rng: &mut impl Rng,
) -> ArenaSkeleton {
    let mut counter = 0u32;
    let mut script = seed.clone();

    let mut atom_total = 0usize;
    for cmd in &seed.commands {
        if let ArenaCommand::Assert(t) = cmd {
            atom_total += count_atoms_arena(arena, *t);
        }
    }
    let force_index = if atom_total > 0 {
        Some(rng.gen_range(0..atom_total))
    } else {
        None
    };

    let mut seen = 0usize;
    for cmd in script.commands.iter_mut() {
        if let ArenaCommand::Assert(t) = cmd {
            *t = replace_atoms_arena(arena, *t, cfg, rng, &mut counter, &mut seen, force_index);
        }
    }

    let variables = script
        .commands
        .iter()
        .filter_map(|c| match c {
            ArenaCommand::DeclareConst(name, sort) => Some((name.clone(), sort.clone())),
            ArenaCommand::DeclareFun(name, args, ret) if args.is_empty() => {
                Some((name.clone(), ret.clone()))
            }
            _ => None,
        })
        .collect();

    ArenaSkeleton {
        placeholder_count: counter as usize,
        variables,
        script,
    }
}

/// Arena twin of `is_atom`.
fn is_atom_arena(arena: &TermArena, id: TermId) -> bool {
    match arena.node(id) {
        ANode::App(op, _, _) => !matches!(
            arena.op(op),
            Op::Not | Op::And | Op::Or | Op::Xor | Op::Implies | Op::Ite
        ),
        ANode::Const(vi) => matches!(arena.value(vi), Value::Bool(_)),
        ANode::Var(_) => true,
        _ => false,
    }
}

/// Arena twin of `count_atoms`; identical traversal order.
fn count_atoms_arena(arena: &TermArena, id: TermId) -> usize {
    match arena.node(id) {
        ANode::App(op, start, len)
            if matches!(
                arena.op(op),
                Op::Not | Op::And | Op::Or | Op::Xor | Op::Implies | Op::Ite
            ) =>
        {
            let mut n = 0;
            for i in 0..len {
                n += count_atoms_arena(arena, arena.args(start, len)[i as usize]);
            }
            n
        }
        ANode::Let(start, len, body) => {
            let mut n = 0;
            for i in 0..len {
                n += count_atoms_arena(arena, arena.let_binds(start, len)[i as usize].1);
            }
            n + count_atoms_arena(arena, body)
        }
        ANode::Quant(_, _, _, body) => count_atoms_arena(arena, body),
        _ if is_atom_arena(arena, id) => 1,
        _ => 0,
    }
}

/// Arena twin of `replace_atoms`: same RNG short-circuits (`forced ||
/// gen_bool`, cap check first), same pre-order walk, rebuild-if-changed.
fn replace_atoms_arena(
    arena: &mut TermArena,
    id: TermId,
    cfg: SkeletonConfig,
    rng: &mut impl Rng,
    counter: &mut u32,
    seen: &mut usize,
    force_index: Option<usize>,
) -> TermId {
    if is_atom_arena(arena, id) {
        let my_index = *seen;
        *seen += 1;
        let forced = force_index == Some(my_index);
        let replace = (*counter as usize) < cfg.max_placeholders
            && (forced || rng.gen_bool(cfg.replace_probability));
        if replace {
            let p = arena.mk_placeholder(*counter);
            *counter += 1;
            return p;
        }
        return id;
    }
    match arena.node(id) {
        ANode::App(op, start, len)
            if matches!(
                arena.op(op),
                Op::Not | Op::And | Op::Or | Op::Xor | Op::Implies | Op::Ite
            ) =>
        {
            let kids = arena.args(start, len).to_vec();
            let new: Vec<TermId> = kids
                .iter()
                .map(|&k| replace_atoms_arena(arena, k, cfg, rng, counter, seen, force_index))
                .collect();
            if new == kids {
                id
            } else {
                arena.mk_app(op, &new)
            }
        }
        ANode::Quant(q, start, len, body) => {
            let new_body = replace_atoms_arena(arena, body, cfg, rng, counter, seen, force_index);
            if new_body == body {
                id
            } else {
                let vars = arena.quant_vars(start, len).to_vec();
                arena.mk_quant(q, &vars, new_body)
            }
        }
        ANode::Let(start, len, body) => {
            // Binder values keep their atoms (counted but never replaced).
            for &(_, v) in &arena.let_binds(start, len).to_vec() {
                *seen += count_atoms_arena(arena, v);
            }
            let new_body = replace_atoms_arena(arena, body, cfg, rng, counter, seen, force_index);
            if new_body == body {
                id
            } else {
                let binds = arena.let_binds(start, len).to_vec();
                arena.mk_let(&binds, new_body)
            }
        }
        _ => id,
    }
}

/// Arena twin of [`strip_commands`].
pub fn strip_commands_arena(script: &mut ArenaScript) {
    script.commands.retain(|c| {
        !matches!(
            c,
            ArenaCommand::CheckSat | ArenaCommand::GetModel | ArenaCommand::Exit
        )
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use o4a_smtlib::parse_script;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn skeleton_always_inserts_at_least_one_placeholder() {
        let seed =
            parse_script("(declare-fun T () Int)(assert (or (= T 0) (< T 1)))(check-sat)").unwrap();
        for i in 0..50 {
            let mut r = StdRng::seed_from_u64(i);
            let sk = skeletonize(&seed, SkeletonConfig::default(), &mut r);
            assert!(sk.placeholder_count >= 1);
            assert!(sk.script.has_placeholders());
        }
    }

    #[test]
    fn skeleton_preserves_quantifier_structure() {
        // The paper's running example: (exists ((f Int)) <placeholder>).
        let seed = parse_script(
            "(declare-fun s () (Seq Int))\
             (assert (exists ((f Int)) (distinct (seq.len s) 0)))(check-sat)",
        )
        .unwrap();
        let cfg = SkeletonConfig {
            replace_probability: 1.0,
            max_placeholders: 8,
        };
        let sk = skeletonize(&seed, cfg, &mut rng());
        let printed = sk.script.to_string();
        assert!(
            printed.contains("(exists ((f Int)) <placeholder>)"),
            "{printed}"
        );
    }

    #[test]
    fn skeleton_respects_max_placeholders() {
        let seed = parse_script(
            "(declare-const a Bool)(declare-const b Bool)(declare-const c Bool)\
             (declare-const d Bool)(declare-const e Bool)(declare-const f Bool)\
             (assert (and a b c d e f))(check-sat)",
        )
        .unwrap();
        let cfg = SkeletonConfig {
            replace_probability: 1.0,
            max_placeholders: 3,
        };
        let sk = skeletonize(&seed, cfg, &mut rng());
        assert_eq!(sk.placeholder_count, 3);
    }

    #[test]
    fn variables_collected_with_sorts() {
        let seed = parse_script(
            "(declare-const x Int)(declare-fun s () (Seq Int))\
             (declare-fun f (Int) Int)\
             (assert (> x (seq.len s)))(check-sat)",
        )
        .unwrap();
        let sk = skeletonize(&seed, SkeletonConfig::default(), &mut rng());
        // n-ary functions are not adaptation targets.
        assert_eq!(sk.variables.len(), 2);
        assert!(sk
            .variables
            .iter()
            .any(|(n, s)| n.as_str() == "x" && *s == o4a_smtlib::Sort::Int));
    }

    #[test]
    fn non_boolean_positions_untouched() {
        // The arithmetic subterm (+ x 1) must never become a placeholder.
        let seed = parse_script("(declare-const x Int)(assert (= (+ x 1) 2))(check-sat)").unwrap();
        let cfg = SkeletonConfig {
            replace_probability: 1.0,
            max_placeholders: 8,
        };
        let sk = skeletonize(&seed, cfg, &mut rng());
        assert_eq!(sk.placeholder_count, 1, "only the whole atom is replaced");
        assert!(sk.script.to_string().contains("(assert <placeholder>)"));
    }

    #[test]
    fn strip_commands_removes_check_sat() {
        let mut s = parse_script("(assert true)(check-sat)(get-model)").unwrap();
        strip_commands(&mut s);
        assert_eq!(s.commands.len(), 1);
    }
}
