//! Bug inspection, deduplication, and report bookkeeping (paper §4.2,
//! "Bug Inspection and Reduction"): crashes cluster by stack signature,
//! soundness/invalid-model findings group by theory, and each issue is
//! attributed to its underlying registry defect for developer-response
//! accounting (Table 1) and type distribution (Table 2).

use crate::oracle::Verdict;
use o4a_smtlib::Theory;
use o4a_solvers::bugs::{registry, BugKind, BugSpec, DevStatus};
use o4a_solvers::{CommitIdx, FormulaFeatures, SolverId};
use std::collections::BTreeMap;

/// The observable class of a finding.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum FoundKind {
    /// Abnormal termination.
    Crash,
    /// sat/unsat disagreement.
    Soundness,
    /// Model fails re-evaluation.
    InvalidModel,
}

impl FoundKind {
    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            FoundKind::Crash => "Crash",
            FoundKind::Soundness => "Soundness",
            FoundKind::InvalidModel => "Invalid model",
        }
    }
}

/// One bug-triggering test case recorded during a campaign.
#[derive(Clone, Debug)]
pub struct Finding {
    /// The test case text.
    pub case_text: String,
    /// The solver the bug manifests in.
    pub solver: SolverId,
    /// Observable class.
    pub kind: FoundKind,
    /// Crash signature, for crash findings.
    pub signature: Option<String>,
    /// Theories the formula exercises.
    pub theories: Vec<Theory>,
    /// Ground-truth attribution (for experiment bookkeeping only — triage
    /// itself never consults it for clustering).
    pub attributed: Option<&'static BugSpec>,
    /// Virtual hour of discovery.
    pub vhour: f64,
}

impl Finding {
    /// Builds a finding from an oracle verdict, attributing it to the
    /// registry defect that fired (first-match, same order the solvers
    /// apply effects).
    pub fn from_verdict(
        case_text: &str,
        verdict: &Verdict,
        features: &FormulaFeatures,
        commits: &BTreeMap<SolverId, CommitIdx>,
        vhour: f64,
    ) -> Option<Finding> {
        let (solver, kind, signature) = match verdict {
            Verdict::Crash { solver, signature } => {
                (*solver, FoundKind::Crash, Some(signature.clone()))
            }
            Verdict::Soundness {
                unsat_solver,
                sat_solver,
                model_confirms_sat,
            } => {
                // Direction: the confirmed-sat case blames the unsat
                // solver; otherwise blame whichever solver has a firing
                // registry defect (observable tie-break mirrors manual
                // inspection).
                let blamed = match model_confirms_sat {
                    Some(true) => *unsat_solver,
                    _ => {
                        let commit = |s: &SolverId| commits.get(s).copied().unwrap_or(100);
                        if attribute(*unsat_solver, commit(unsat_solver), features).is_some() {
                            *unsat_solver
                        } else {
                            *sat_solver
                        }
                    }
                };
                (blamed, FoundKind::Soundness, None)
            }
            Verdict::InvalidModel { solver } => (*solver, FoundKind::InvalidModel, None),
            _ => return None,
        };
        let commit = commits.get(&solver).copied().unwrap_or(100);
        Some(Finding {
            case_text: case_text.to_string(),
            solver,
            kind,
            signature,
            theories: features.theories.iter().copied().collect(),
            attributed: attribute(solver, commit, features),
            vhour,
        })
    }
}

/// Ground-truth attribution: the first registry defect that fires on these
/// features at the given commit.
pub fn attribute(
    solver: SolverId,
    commit: CommitIdx,
    features: &FormulaFeatures,
) -> Option<&'static BugSpec> {
    registry()
        .iter()
        .find(|b| b.solver == solver && b.fires(commit, features))
}

/// A deduplicated issue (what gets "reported" upstream).
#[derive(Clone, Debug)]
pub struct Issue {
    /// Dedup key (crash signature or solver/kind/theory group).
    pub key: String,
    /// Solver.
    pub solver: SolverId,
    /// Class.
    pub kind: FoundKind,
    /// How many findings collapsed into this issue.
    pub occurrences: usize,
    /// Representative test case.
    pub representative: String,
    /// Ground-truth attribution of the representative.
    pub attributed: Option<&'static BugSpec>,
    /// Virtual hour of first discovery.
    pub first_vhour: f64,
}

/// Deduplicates findings into issues: crashes by signature, other kinds by
/// (solver, kind, most-specific theory).
pub fn dedup(findings: &[Finding]) -> Vec<Issue> {
    dedup_refs(findings)
}

/// [`dedup`] over borrowed findings — lets the campaign engine compute
/// filtered issue counts (e.g. per snapshot hour) without cloning the
/// finding texts.
pub fn dedup_refs<'a>(findings: impl IntoIterator<Item = &'a Finding>) -> Vec<Issue> {
    let mut map: BTreeMap<String, Issue> = BTreeMap::new();
    for f in findings {
        let key = match (&f.kind, &f.signature) {
            (FoundKind::Crash, Some(sig)) => format!("crash::{}::{sig}", f.solver),
            _ => {
                // Soundness/invalid-model findings group by the theory the
                // defect lives in. Manual inspection of one representative
                // per group identifies that theory in the paper's workflow;
                // here the attribution stands in for the inspecting human.
                // Unattributed findings fall back to formula features.
                let theory = f
                    .attributed
                    .map(|spec| spec.theory)
                    .or_else(|| f.theories.iter().find(|t| t.is_extended()).copied())
                    .or_else(|| f.theories.first().copied())
                    .unwrap_or(Theory::Core);
                format!("{:?}::{}::{}", f.kind, f.solver, theory)
            }
        };
        match map.get_mut(&key) {
            Some(issue) => {
                issue.occurrences += 1;
                if f.vhour < issue.first_vhour {
                    issue.first_vhour = f.vhour;
                }
            }
            None => {
                map.insert(
                    key.clone(),
                    Issue {
                        key,
                        solver: f.solver,
                        kind: f.kind,
                        occurrences: 1,
                        representative: f.case_text.clone(),
                        attributed: f.attributed,
                        first_vhour: f.vhour,
                    },
                );
            }
        }
    }
    map.into_values().collect()
}

/// Table 1 row values for one solver.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatusCounts {
    /// Issues reported.
    pub reported: usize,
    /// Unique confirmed defects.
    pub confirmed: usize,
    /// Confirmed defects the developers fixed.
    pub fixed: usize,
    /// Reports marked duplicate.
    pub duplicate: usize,
}

/// Aggregates issues into the paper's Table 1 (bug status) per solver.
pub fn status_table(issues: &[Issue]) -> BTreeMap<SolverId, StatusCounts> {
    let mut out: BTreeMap<SolverId, StatusCounts> = BTreeMap::new();
    for id in SolverId::ALL {
        out.insert(id, StatusCounts::default());
    }
    // Count unique underlying defects per solver.
    let mut seen_underlying: BTreeMap<SolverId, std::collections::BTreeSet<&str>> = BTreeMap::new();
    for issue in issues {
        let entry = out.entry(issue.solver).or_default();
        entry.reported += 1;
        let Some(spec) = issue.attributed else {
            continue;
        };
        if let Some(orig) = spec.duplicate_of {
            entry.duplicate += 1;
            let _ = orig;
            continue;
        }
        let fresh = seen_underlying
            .entry(issue.solver)
            .or_default()
            .insert(spec.id);
        if fresh {
            match spec.dev_status {
                DevStatus::Fixed => {
                    entry.confirmed += 1;
                    entry.fixed += 1;
                }
                DevStatus::Confirmed => entry.confirmed += 1,
                DevStatus::Reported => {}
            }
        } else {
            // A second issue hit the same underlying defect (e.g. theory
            // grouping was too coarse); developers flag it duplicate.
            entry.reported -= 1;
            entry.duplicate += 1;
        }
    }
    out
}

/// Table 2 row values (bug types among reported issues) per solver.
pub fn type_table(issues: &[Issue]) -> BTreeMap<SolverId, BTreeMap<FoundKind, usize>> {
    let mut out: BTreeMap<SolverId, BTreeMap<FoundKind, usize>> = BTreeMap::new();
    for issue in issues {
        *out.entry(issue.solver)
            .or_default()
            .entry(issue.kind)
            .or_insert(0) += 1;
    }
    out
}

/// How many unique confirmed defects involve extended/solver-specific
/// theories (the paper's "11 bugs" claim).
pub fn extended_theory_count(issues: &[Issue]) -> usize {
    let mut seen = std::collections::BTreeSet::new();
    for issue in issues {
        if let Some(spec) = issue.attributed {
            if spec.duplicate_of.is_none() && spec.is_extended_theory() {
                seen.insert(spec.id);
            }
        }
    }
    seen.len()
}

/// Expected kind for a registry bug (consistency checks between observable
/// classification and ground truth).
pub fn expected_kind(spec: &BugSpec) -> FoundKind {
    match spec.kind {
        BugKind::Crash(_) => FoundKind::Crash,
        BugKind::Soundness => FoundKind::Soundness,
        BugKind::InvalidModel => FoundKind::InvalidModel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(
        solver: SolverId,
        kind: FoundKind,
        sig: Option<&str>,
        theory: Theory,
        attributed: Option<&'static BugSpec>,
    ) -> Finding {
        Finding {
            case_text: "(check-sat)".into(),
            solver,
            kind,
            signature: sig.map(String::from),
            theories: vec![theory],
            attributed,
            vhour: 1.0,
        }
    }

    fn spec_by_id(id: &str) -> &'static BugSpec {
        registry().iter().find(|b| b.id == id).unwrap()
    }

    #[test]
    fn crashes_cluster_by_signature() {
        let findings = vec![
            finding(
                SolverId::OxiZ,
                FoundKind::Crash,
                Some("a:1"),
                Theory::Ints,
                None,
            ),
            finding(
                SolverId::OxiZ,
                FoundKind::Crash,
                Some("a:1"),
                Theory::Ints,
                None,
            ),
            finding(
                SolverId::OxiZ,
                FoundKind::Crash,
                Some("b:2"),
                Theory::Ints,
                None,
            ),
        ];
        let issues = dedup(&findings);
        assert_eq!(issues.len(), 2);
        let total: usize = issues.iter().map(|i| i.occurrences).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn soundness_groups_by_theory() {
        let findings = vec![
            finding(
                SolverId::Cervo,
                FoundKind::Soundness,
                None,
                Theory::Sequences,
                None,
            ),
            finding(
                SolverId::Cervo,
                FoundKind::Soundness,
                None,
                Theory::Sequences,
                None,
            ),
            finding(
                SolverId::Cervo,
                FoundKind::Soundness,
                None,
                Theory::Ints,
                None,
            ),
        ];
        assert_eq!(dedup(&findings).len(), 2);
    }

    #[test]
    fn extended_theory_preferred_as_group_key() {
        let f = Finding {
            theories: vec![Theory::Ints, Theory::Sequences],
            ..finding(
                SolverId::Cervo,
                FoundKind::Soundness,
                None,
                Theory::Ints,
                None,
            )
        };
        let issues = dedup(&[f]);
        assert!(issues[0].key.contains("sequences"), "{}", issues[0].key);
    }

    #[test]
    fn status_table_counts_duplicates() {
        let findings = vec![
            finding(
                SolverId::OxiZ,
                FoundKind::Crash,
                Some("oxiz::seq_rewriter::mk_rev:184"),
                Theory::Sequences,
                Some(spec_by_id("oz-07")),
            ),
            finding(
                SolverId::OxiZ,
                FoundKind::Crash,
                Some("oxiz::model_evaluator::eval_seq:233"),
                Theory::Sequences,
                Some(spec_by_id("oz-26")), // duplicate of oz-07
            ),
        ];
        let table = status_table(&dedup(&findings));
        let oz = table[&SolverId::OxiZ];
        assert_eq!(oz.reported, 2);
        assert_eq!(oz.confirmed, 1);
        assert_eq!(oz.duplicate, 1);
        assert_eq!(oz.fixed, 1);
    }

    #[test]
    fn type_table_counts_kinds() {
        let findings = vec![
            finding(
                SolverId::OxiZ,
                FoundKind::Crash,
                Some("x:1"),
                Theory::Ints,
                None,
            ),
            finding(
                SolverId::OxiZ,
                FoundKind::InvalidModel,
                None,
                Theory::Ints,
                None,
            ),
            finding(
                SolverId::OxiZ,
                FoundKind::Soundness,
                None,
                Theory::Strings,
                None,
            ),
        ];
        let t = type_table(&dedup(&findings));
        assert_eq!(t[&SolverId::OxiZ][&FoundKind::Crash], 1);
        assert_eq!(t[&SolverId::OxiZ][&FoundKind::InvalidModel], 1);
        assert_eq!(t[&SolverId::OxiZ][&FoundKind::Soundness], 1);
    }

    #[test]
    fn extended_count_dedups_by_underlying() {
        let findings = vec![
            finding(
                SolverId::Cervo,
                FoundKind::Crash,
                Some("cervo::sets::type_rules::join_type:77"),
                Theory::Sets,
                Some(spec_by_id("cv-07")),
            ),
            finding(
                SolverId::Cervo,
                FoundKind::Crash,
                Some("cervo::sets::type_rules::join_type:77"),
                Theory::Sets,
                Some(spec_by_id("cv-07")),
            ),
        ];
        assert_eq!(extended_theory_count(&dedup(&findings)), 1);
    }
}
