//! Bug lifespan analysis (paper Figure 5): replay confirmed bug-triggering
//! formulas against each release version and count how many bugs affect
//! each.

use crate::triage::Issue;
use o4a_solvers::versions::{lifespan_releases, Release};
use o4a_solvers::SolverId;
use std::collections::BTreeSet;

/// One lifespan data point: a release and how many confirmed bugs affect
/// it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LifespanPoint {
    /// The release.
    pub release: Release,
    /// Number of confirmed bugs present at that release.
    pub affected: usize,
}

/// Computes the Figure 5 series for one solver from deduplicated issues:
/// a bug affects a release when its defect was already in the code at that
/// release's commit ("the original formula successfully triggers the bug").
pub fn lifespan_series(solver: SolverId, issues: &[Issue]) -> Vec<LifespanPoint> {
    // Unique confirmed (non-duplicate) defects attributed to this solver.
    let mut defects = BTreeSet::new();
    for issue in issues {
        if issue.solver != solver {
            continue;
        }
        if let Some(spec) = issue.attributed {
            if spec.duplicate_of.is_none() {
                defects.insert(spec.id);
            }
        }
    }
    let specs: Vec<_> = o4a_solvers::bugs::registry()
        .iter()
        .filter(|b| defects.contains(b.id))
        .collect();
    lifespan_releases(solver)
        .into_iter()
        .map(|release| {
            let affected = specs.iter().filter(|b| b.active_at(release.commit)).count();
            LifespanPoint { release, affected }
        })
        .collect()
}

/// Bugs latent for a long time: present in the oldest studied release.
pub fn long_latent_count(solver: SolverId, issues: &[Issue]) -> usize {
    lifespan_series(solver, issues)
        .first()
        .map(|p| p.affected)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triage::FoundKind;
    use o4a_solvers::bugs::{registry, trunk_bugs};

    /// Builds synthetic issues covering every trunk defect of a solver
    /// (what a fully successful campaign produces).
    fn full_issues(solver: SolverId) -> Vec<Issue> {
        trunk_bugs(solver)
            .into_iter()
            .map(|spec| Issue {
                key: spec.id.to_string(),
                solver,
                kind: FoundKind::Crash,
                occurrences: 1,
                representative: String::new(),
                attributed: Some(spec),
                first_vhour: 0.0,
            })
            .collect()
    }

    #[test]
    fn full_campaign_reproduces_figure5_oxiz() {
        let series = lifespan_series(SolverId::OxiZ, &full_issues(SolverId::OxiZ));
        let counts: Vec<usize> = series.iter().map(|p| p.affected).collect();
        assert_eq!(counts, vec![3, 6, 6, 6, 8, 11, 25]);
    }

    #[test]
    fn full_campaign_reproduces_figure5_cervo() {
        let series = lifespan_series(SolverId::Cervo, &full_issues(SolverId::Cervo));
        let counts: Vec<usize> = series.iter().map(|p| p.affected).collect();
        assert_eq!(counts, vec![1, 2, 4, 5, 8, 18]);
    }

    #[test]
    fn long_latent_bugs_match_paper_claim() {
        // "three of the bugs in Z3 remained latent for over six years".
        assert_eq!(
            long_latent_count(SolverId::OxiZ, &full_issues(SolverId::OxiZ)),
            3
        );
    }

    #[test]
    fn partial_findings_yield_partial_series() {
        let one = registry().iter().find(|b| b.id == "cv-06").unwrap();
        let issues = vec![Issue {
            key: "x".into(),
            solver: SolverId::Cervo,
            kind: FoundKind::Crash,
            occurrences: 1,
            representative: String::new(),
            attributed: Some(one),
            first_vhour: 0.0,
        }];
        let series = lifespan_series(SolverId::Cervo, &issues);
        // cv-06 introduced at commit 43: absent in 0.0.2..=1.1.0, present
        // from 1.2.0 on.
        let counts: Vec<usize> = series.iter().map(|p| p.affected).collect();
        assert_eq!(counts, vec![0, 0, 0, 0, 1, 1]);
    }
}
