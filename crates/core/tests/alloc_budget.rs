//! Allocation-count regression gate for the arena hot loop: after warmup,
//! one fill→print→eval case must stay under a pinned allocation budget.
//! The arena substrate exists precisely so the steady state recycles its
//! buffers — a regression here means boxed-term cloning crept back in.

use o4a_core::SkeletonConfig;
use o4a_core::{adapt_fill_arena, parse_fill_into, skeletonize_arena, synthesize_arena};
use o4a_llm::RawTerm;
use o4a_smtlib::eval::{no_defs, DomainConfig, Evaluator};
use o4a_smtlib::{ArenaCommand, ArenaScript, Model, Script, Symbol, TermArena, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapped with an allocation counter (reallocs count —
/// a growing `Vec` that should have reached steady-state capacity is
/// exactly the kind of regression this test exists to catch).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Pinned steady-state budget: allocations per case, measured over 100
/// warm cases. The loop still allocates (token vectors, command clones,
/// eval scopes) but must not scale with term-tree size the way boxed
/// `Term` cloning did. Measured 83/case at introduction; the pin leaves
/// headroom for legitimate drift while catching order-of-magnitude
/// regressions.
const PER_CASE_BUDGET: u64 = 300;

fn one_case(
    seed: &Script,
    raws: &[RawTerm],
    arena: &mut TermArena,
    buf: &mut String,
    model: &Model,
    cfg: &DomainConfig,
    rng: &mut StdRng,
) {
    arena.reset();
    let aseed = ArenaScript::from_script(seed, arena);
    let sk = skeletonize_arena(&aseed, arena, SkeletonConfig::default(), rng);
    let fills: Vec<_> = raws
        .iter()
        .map(|r| {
            let f = parse_fill_into(r, arena).expect("fill parses");
            adapt_fill_arena(&f, &sk, arena, rng)
        })
        .collect();
    let out = synthesize_arena(&sk, &fills, arena, rng);
    buf.clear();
    out.print_into(arena, buf);
    assert!(buf.ends_with("(check-sat)"));
    let ev = Evaluator::new(model, no_defs(), cfg, 100_000);
    for c in &out.commands {
        if let ArenaCommand::Assert(t) = c {
            let _ = ev.eval_arena(*t, arena);
        }
    }
}

#[test]
fn steady_state_case_allocations_stay_under_budget() {
    let seed = o4a_smtlib::parse_script(
        "(declare-fun T () Int)(declare-const b Bool)\
         (assert (or (= T 0) (and b (< T 10))))\
         (assert (exists ((f Int)) (> f T)))(check-sat)",
    )
    .expect("seed parses");
    let raws = [
        RawTerm {
            decls: vec!["(declare-const i0 Int)".into()],
            term: "(= (mod i0 3) 0)".into(),
        },
        RawTerm {
            decls: vec!["(declare-const str0 String)".into()],
            term: "(= str0 \"ab\")".into(),
        },
    ];
    let mut model = Model::new();
    model.set_const(Symbol::new("T"), Value::Int(3));
    model.set_const(Symbol::new("b"), Value::Bool(true));
    model.set_const(Symbol::new("i0"), Value::Int(6));
    model.set_const(Symbol::new("str0"), Value::Str("ab".into()));
    let cfg = DomainConfig::default();
    let mut arena = TermArena::new();
    let mut buf = String::new();
    let mut rng = StdRng::seed_from_u64(42);

    // Warmup: let every recycled buffer (arena vecs, print buffer, token
    // pools) reach steady-state capacity.
    for _ in 0..50 {
        one_case(&seed, &raws, &mut arena, &mut buf, &model, &cfg, &mut rng);
    }

    const CASES: u64 = 100;
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..CASES {
        one_case(&seed, &raws, &mut arena, &mut buf, &model, &cfg, &mut rng);
    }
    let per_case = (ALLOCS.load(Ordering::Relaxed) - before) / CASES;
    eprintln!("steady-state allocations per case: {per_case}");
    assert!(
        per_case <= PER_CASE_BUDGET,
        "steady-state hot loop allocates {per_case}/case (budget {PER_CASE_BUDGET})"
    );
}
