//! Shard determinism and merge-semantics tests: the acceptance criteria of
//! the sharded engine. A 4-shard parallel campaign must merge to the same
//! case/bug/issue counts as the same shards run serially, and repeated
//! runs with one seed must be bit-identical in aggregate.

use o4a_core::{dedup, run_campaign, CampaignConfig, Fuzzer, Once4AllFuzzer};
use o4a_exec::{
    run_campaign_resumable, run_campaign_sharded, run_shard_lease, shard_configs, shard_seed,
    ExecConfig, FindingsStore, Parallelism,
};
use o4a_solvers::coverage::universe;
use o4a_solvers::{CoverageMap, SolverId};
use std::collections::BTreeMap;

fn quick_config() -> CampaignConfig {
    CampaignConfig {
        virtual_hours: 2,
        time_scale: 2_000_000, // smoke-test scale: a few dozen cases
        max_cases: 60,
        ..CampaignConfig::default()
    }
}

fn factory(_shard: u32) -> Box<dyn Fuzzer> {
    Box::new(Once4AllFuzzer::with_defaults())
}

/// Everything the merge semantics promise to keep deterministic: case and
/// bug counts, finding texts, deduplicated issue keys, and per-solver
/// covered-line totals.
type Fingerprint = (u64, u64, Vec<String>, Vec<String>, Vec<(SolverId, u64)>);

fn fingerprint(result: &o4a_core::CampaignResult) -> Fingerprint {
    let issues: Vec<String> = dedup(&result.findings).into_iter().map(|i| i.key).collect();
    let cases: Vec<String> = result
        .findings
        .iter()
        .map(|f| f.case_text.clone())
        .collect();
    let lines: Vec<(SolverId, u64)> = result
        .coverage
        .iter()
        .map(|(&s, m)| (s, m.lines_hit(&universe(s))))
        .collect();
    (
        result.stats.cases,
        result.stats.bug_triggering,
        cases,
        issues,
        lines,
    )
}

#[test]
fn shard_configs_are_deterministic_and_disjoint() {
    let config = quick_config();
    let shards = shard_configs(&config, 4);
    assert_eq!(shards.len(), 4);
    assert_eq!(shards[0].seed, config.seed, "shard 0 keeps the base stream");
    let mut seeds: Vec<u64> = shards.iter().map(|c| c.seed).collect();
    seeds.dedup();
    assert_eq!(seeds.len(), 4, "shard seeds must be distinct");
    for (i, shard) in shards.iter().enumerate() {
        assert_eq!(shard.seed, shard_seed(config.seed, i as u32));
        assert_eq!(shard.virtual_hours, config.virtual_hours);
        assert_eq!(shard.time_scale, config.time_scale);
    }
    let total: usize = shards.iter().map(|c| c.max_cases).sum();
    assert!(total >= config.max_cases, "case budget must not shrink");
}

#[test]
fn four_shard_parallel_run_is_reproducible() {
    let config = quick_config();
    let exec = ExecConfig {
        shards: 4,
        parallelism: Parallelism::Threads(4),
        ..ExecConfig::default()
    };
    let a = run_campaign_sharded(factory, &config, &exec);
    let b = run_campaign_sharded(factory, &config, &exec);
    assert!(a.stats.cases > 0);
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn parallel_merge_matches_serial_merge() {
    let config = quick_config();
    let parallel = run_campaign_sharded(
        factory,
        &config,
        &ExecConfig {
            shards: 4,
            parallelism: Parallelism::Threads(4),
            ..ExecConfig::default()
        },
    );
    let serial = run_campaign_sharded(
        factory,
        &config,
        &ExecConfig {
            shards: 4,
            parallelism: Parallelism::Serial,
            ..ExecConfig::default()
        },
    );
    assert_eq!(fingerprint(&parallel), fingerprint(&serial));
    // Snapshots carry the same merged cases/issues series either way.
    let series = |r: &o4a_core::CampaignResult| -> Vec<(u32, u64, usize)> {
        r.snapshots
            .iter()
            .map(|s| (s.hour, s.cases, s.issues))
            .collect()
    };
    assert_eq!(series(&parallel), series(&serial));
}

#[test]
fn one_shard_engine_matches_serial_campaign() {
    // Two scales: the smoke scale, and a coarser one where a single case
    // jumps a whole virtual hour — the boundary case where snapshot issue
    // counting (findings with vhour past the hour line) must agree.
    for time_scale in [2_000_000u64, 500_000] {
        let config = CampaignConfig {
            time_scale,
            ..quick_config()
        };
        let mut fuzzer = Once4AllFuzzer::with_defaults();
        let serial = run_campaign(&mut fuzzer, &config);
        let sharded = run_campaign_sharded(
            factory,
            &config,
            &ExecConfig {
                shards: 1,
                parallelism: Parallelism::Auto,
                ..ExecConfig::default()
            },
        );
        assert_eq!(fingerprint(&serial), fingerprint(&sharded));
        assert_eq!(serial.stats.rejected, sharded.stats.rejected);
        assert_eq!(serial.stats.decisive, sharded.stats.decisive);
        assert_eq!(serial.final_coverage, sharded.final_coverage);
        let series = |r: &o4a_core::CampaignResult| -> Vec<(u32, u64, usize)> {
            r.snapshots
                .iter()
                .map(|s| (s.hour, s.cases, s.issues))
                .collect()
        };
        assert_eq!(
            series(&serial),
            series(&sharded),
            "hourly snapshot series diverged at time_scale {time_scale}"
        );
    }
}

/// Re-sequencing under kill/resume: a journaled campaign driven with
/// `K > 1` overlapped queries, killed mid-flight and resumed at a
/// *different* K, must converge to the same deduplicated issue set as the
/// serial engine. Findings reach the journal in case order regardless of
/// completion order — that is the [`o4a_exec::run_shard_overlapped`]
/// re-sequencing contract this test pins down.
#[test]
fn killed_overlapped_campaign_resumes_to_serial_issue_set() {
    let config = quick_config();
    let serial = run_campaign_sharded(
        factory,
        &config,
        &ExecConfig {
            shards: 4,
            parallelism: Parallelism::Serial,
            inflight: 1,
            ..ExecConfig::default()
        },
    );

    // Journaled overlapped run (K = 4), serial workers for a stable
    // journal line order.
    let mut path = std::env::temp_dir();
    path.push(format!("o4a-sharding-overlap-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let exec_k4 = ExecConfig {
        shards: 4,
        parallelism: Parallelism::Serial,
        inflight: 4,
        ..ExecConfig::default()
    };
    let full = run_campaign_resumable(factory, &config, &exec_k4, &FindingsStore::new(&path))
        .expect("journal I/O");
    assert_eq!(fingerprint(&full), fingerprint(&serial));

    // Simulate a SIGKILL that caught shards 2 and 3 mid-flight: drop
    // their completion records (and shard 3's findings entirely).
    let journal = std::fs::read_to_string(&path).unwrap();
    let truncated: String = journal
        .lines()
        .filter(|line| {
            if line.contains("\"shard_done\"") {
                line.contains("\"shard\":0") || line.contains("\"shard\":1")
            } else if line.contains("\"finding\"") {
                !line.contains("\"shard\":3")
            } else {
                true // header
            }
        })
        .flat_map(|line| [line, "\n"])
        .collect();
    let mut killed = std::env::temp_dir();
    killed.push(format!(
        "o4a-sharding-overlap-killed-{}.jsonl",
        std::process::id()
    ));
    std::fs::write(&killed, truncated).unwrap();

    // Resume at a different overlap width: shards 0-1 load, shards 2-3
    // re-run with K = 8 — and the merged result still matches serial.
    let exec_k8 = ExecConfig {
        inflight: 8,
        ..exec_k4
    };
    let resumed = run_campaign_resumable(factory, &config, &exec_k8, &FindingsStore::new(&killed))
        .expect("journal I/O");
    assert_eq!(fingerprint(&resumed), fingerprint(&serial));
    assert_eq!(
        dedup(&resumed.findings).len(),
        dedup(&serial.findings).len(),
        "deduplicated issue sets diverged across kill/resume with overlap"
    );
    assert_eq!(resumed.final_coverage, serial.final_coverage);

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&killed);
}

/// The hourly series, bit-comparable: per hour, the per-solver coverage
/// percentages' exact float bits.
fn cov_series(result: &o4a_core::CampaignResult) -> Vec<Vec<(SolverId, u64, u64)>> {
    result
        .snapshots
        .iter()
        .map(|s| {
            s.coverage
                .iter()
                .map(|(&id, p)| (id, p.line_pct.to_bits(), p.function_pct.to_bits()))
                .collect()
        })
        .collect()
}

/// serial ≡ merged, hourly series included: with one shard the merged
/// hourly coverage points are bit-identical to the serial campaign's —
/// the exact-union rule recomputes the same percentages from the same
/// maps the serial stepper snapshotted.
#[test]
fn serial_and_merged_hourly_series_agree_bit_for_bit() {
    let config = quick_config();
    let mut fuzzer = Once4AllFuzzer::with_defaults();
    let serial = run_campaign(&mut fuzzer, &config);
    let merged = run_campaign_sharded(
        factory,
        &config,
        &ExecConfig {
            shards: 1,
            ..ExecConfig::default()
        },
    );
    assert_eq!(cov_series(&serial), cov_series(&merged));
    assert_eq!(
        serial.hourly_coverage.len(),
        merged.hourly_coverage.len(),
        "merged result must keep the per-hour raw maps"
    );
}

/// The lossless-hourly-coverage law: a multi-shard merge's hourly
/// coverage is the percentage of the **union** of the shards' hour-`h`
/// maps — exact, not the old per-shard-max lower bound — and the final
/// hour therefore equals the final union coverage.
#[test]
fn merged_hourly_series_is_the_exact_union() {
    let config = quick_config();
    let exec = ExecConfig {
        shards: 3,
        parallelism: Parallelism::Serial,
        ..ExecConfig::default()
    };
    let merged = run_campaign_sharded(factory, &config, &exec);

    // Recompute the expected series from independently-run shards.
    let shard_runs: Vec<o4a_core::CampaignResult> = (0..3)
        .map(|shard| {
            let mut fuzzer = Once4AllFuzzer::with_defaults();
            run_shard_lease(&mut fuzzer, &config, &exec, shard, None)
        })
        .collect();
    let mut max_rule_beaten = false;
    for (idx, snap) in merged.snapshots.iter().enumerate() {
        let mut union: BTreeMap<SolverId, CoverageMap> = BTreeMap::new();
        for shard in &shard_runs {
            for (&solver, map) in &shard.hourly_coverage[idx] {
                union.entry(solver).or_default().merge(map);
            }
        }
        for (&solver, map) in &union {
            let u = universe(solver);
            let point = snap.coverage[&solver];
            assert_eq!(
                point.line_pct.to_bits(),
                map.line_coverage_pct(&u).to_bits(),
                "hour {}: merged line coverage is not the union's",
                snap.hour
            );
            assert_eq!(
                point.function_pct.to_bits(),
                map.function_coverage_pct(&u).to_bits(),
                "hour {}: merged function coverage is not the union's",
                snap.hour
            );
            // The documented old rule: maximum across shards.
            let max_rule = shard_runs
                .iter()
                .map(|s| s.snapshots[idx].coverage[&solver].line_pct)
                .fold(0.0f64, f64::max);
            if point.line_pct > max_rule {
                max_rule_beaten = true;
            }
        }
    }
    assert!(
        max_rule_beaten,
        "union never exceeded the per-shard max — the exactness claim is vacuous here"
    );
    // The invariant the lower bound used to break: the final hour's
    // snapshot equals the final (lossless) union coverage.
    assert_eq!(
        merged.snapshots.last().unwrap().coverage,
        merged.final_coverage
    );
}

/// The journal round trip preserves the exact hourly series: a campaign
/// loaded entirely from its findings store (per-hour coverage deltas
/// folded back into cumulative maps) merges to bit-identical snapshots.
#[test]
fn journal_roundtrip_preserves_exact_hourly_series() {
    let config = quick_config();
    let exec = ExecConfig {
        shards: 3,
        parallelism: Parallelism::Serial,
        ..ExecConfig::default()
    };
    let mut path = std::env::temp_dir();
    path.push(format!("o4a-hourly-roundtrip-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let store = FindingsStore::new(&path);
    let fresh = run_campaign_resumable(factory, &config, &exec, &store).expect("journal I/O");
    // Second open: every shard loads from the journal; nothing re-runs.
    let reloaded = run_campaign_resumable(factory, &config, &exec, &store).expect("journal I/O");
    assert_eq!(cov_series(&fresh), cov_series(&reloaded));
    assert_eq!(fresh.final_coverage, reloaded.final_coverage);
    assert_eq!(
        fresh.hourly_coverage.len(),
        reloaded.hourly_coverage.len(),
        "hourly maps must survive the journal round trip"
    );
    for (idx, (a, b)) in fresh
        .hourly_coverage
        .iter()
        .zip(&reloaded.hourly_coverage)
        .enumerate()
    {
        for (&solver, map) in a {
            let u = universe(solver);
            assert_eq!(
                map.export(&u),
                b[&solver].export(&u),
                "hour {}: {solver} map diverged across the round trip",
                idx + 1
            );
        }
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn sharding_scales_case_throughput() {
    // With a per-shard budget of the full virtual duration, four shards
    // execute roughly four times the cases of one (same wall budget on
    // four machines). This is the throughput story of the engine.
    let config = quick_config();
    let one = run_campaign_sharded(
        factory,
        &config,
        &ExecConfig {
            shards: 1,
            parallelism: Parallelism::Serial,
            ..ExecConfig::default()
        },
    );
    let four = run_campaign_sharded(
        factory,
        &config,
        &ExecConfig {
            shards: 4,
            parallelism: Parallelism::Auto,
            ..ExecConfig::default()
        },
    );
    assert!(
        four.stats.cases > one.stats.cases * 2,
        "4 shards ran {} cases vs {} for 1 shard",
        four.stats.cases,
        one.stats.cases
    );
}
