//! The acceptance criterion of the async backend: a campaign driven with
//! `K` overlapped in-flight queries is **bit-identical** to the serial
//! engine for the same seed, for every `K` — identical `CampaignStats`,
//! identical findings (hence deduplicated issue sets), identical final
//! coverage maps, and even identical hourly snapshot series, because
//! completions are re-sequenced by case index before campaign state sees
//! them.

use o4a_core::{dedup, run_campaign, CampaignConfig, CampaignResult, Once4AllFuzzer};
use o4a_exec::{run_campaign_sharded, run_shard_overlapped, ExecConfig, Parallelism};
use o4a_solvers::coverage::universe;
use o4a_solvers::SolverId;

fn quick_config() -> CampaignConfig {
    CampaignConfig {
        virtual_hours: 2,
        time_scale: 2_000_000, // smoke-test scale: a few dozen cases
        max_cases: 60,
        ..CampaignConfig::default()
    }
}

/// One snapshot row: hour, cases, issues, and per-solver coverage
/// percentage bits.
type SnapshotRow = (u32, u64, usize, Vec<(SolverId, u64, u64)>);

/// Everything a campaign result observable to experiments contains, in a
/// directly comparable form. `vhour` is compared through `to_bits` — the
/// claim is bit-identity, not approximate agreement.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    stats: o4a_core::CampaignStats,
    findings: Vec<(String, SolverId, String, Option<String>, u64)>,
    issues: Vec<String>,
    coverage: Vec<(SolverId, Vec<(String, u32)>)>,
    final_coverage: Vec<(SolverId, u64, u64)>,
    snapshots: Vec<SnapshotRow>,
}

fn fingerprint(result: &CampaignResult) -> Fingerprint {
    let pct_bits = |p: &o4a_core::CoveragePoint| (p.line_pct.to_bits(), p.function_pct.to_bits());
    Fingerprint {
        stats: result.stats.clone(),
        findings: result
            .findings
            .iter()
            .map(|f| {
                (
                    f.case_text.clone(),
                    f.solver,
                    format!("{:?}", f.kind),
                    f.signature.clone(),
                    f.vhour.to_bits(),
                )
            })
            .collect(),
        issues: dedup(&result.findings).into_iter().map(|i| i.key).collect(),
        coverage: result
            .coverage
            .iter()
            .map(|(&s, m)| (s, m.export(&universe(s))))
            .collect(),
        final_coverage: result
            .final_coverage
            .iter()
            .map(|(&s, p)| {
                let (l, f) = pct_bits(p);
                (s, l, f)
            })
            .collect(),
        snapshots: result
            .snapshots
            .iter()
            .map(|s| {
                (
                    s.hour,
                    s.cases,
                    s.issues,
                    s.coverage
                        .iter()
                        .map(|(&id, p)| {
                            let (l, f) = pct_bits(p);
                            (id, l, f)
                        })
                        .collect(),
                )
            })
            .collect(),
    }
}

fn serial_reference(config: &CampaignConfig) -> CampaignResult {
    let mut fuzzer = Once4AllFuzzer::with_defaults();
    run_campaign(&mut fuzzer, config)
}

/// The tentpole equivalence proof: serial vs. overlapped K ∈ {1, 4, 8}.
#[test]
fn overlapped_campaign_is_bit_identical_to_serial_for_all_k() {
    // Two time scales: the smoke scale, and a coarser one where a single
    // case can jump a whole virtual hour (the snapshot boundary case).
    for time_scale in [2_000_000u64, 500_000] {
        let config = CampaignConfig {
            time_scale,
            ..quick_config()
        };
        let reference = fingerprint(&serial_reference(&config));
        assert!(reference.stats.cases > 0, "reference ran no cases");
        for k in [1usize, 4, 8] {
            let mut fuzzer = Once4AllFuzzer::with_defaults();
            let overlapped = run_shard_overlapped(&mut fuzzer, &config, 0, None, k);
            assert_eq!(
                fingerprint(&overlapped),
                reference,
                "K={k} diverged from serial at time_scale {time_scale}"
            );
        }
    }
}

/// The speculative-overrun boundary: with K greater than the case cap,
/// every case beyond the cap is generated speculatively and must be
/// discarded, not counted.
#[test]
fn inflight_window_larger_than_campaign_is_still_identical() {
    let config = CampaignConfig {
        max_cases: 5,
        time_scale: 100_000, // cheap cases: the case cap binds, not hours
        ..quick_config()
    };
    let reference = fingerprint(&serial_reference(&config));
    assert_eq!(reference.stats.cases, 5);
    let mut fuzzer = Once4AllFuzzer::with_defaults();
    let overlapped = run_shard_overlapped(&mut fuzzer, &config, 0, None, 32);
    assert_eq!(fingerprint(&overlapped), reference);
}

/// The engine-level knob: a sharded campaign with `inflight = K` merges
/// to the same result as the serial sharded engine, across worker modes.
#[test]
fn sharded_engine_with_inflight_matches_serial_sharded() {
    let config = quick_config();
    let factory =
        |_shard: u32| Box::new(Once4AllFuzzer::with_defaults()) as Box<dyn o4a_core::Fuzzer>;
    let serial = run_campaign_sharded(
        factory,
        &config,
        &ExecConfig {
            shards: 4,
            parallelism: Parallelism::Serial,
            inflight: 1,
            ..ExecConfig::default()
        },
    );
    for (k, parallelism) in [(4, Parallelism::Serial), (8, Parallelism::Threads(4))] {
        let overlapped = run_campaign_sharded(
            factory,
            &config,
            &ExecConfig {
                shards: 4,
                parallelism,
                inflight: k,
                ..ExecConfig::default()
            },
        );
        assert_eq!(
            fingerprint(&overlapped),
            fingerprint(&serial),
            "sharded inflight={k} diverged"
        );
    }
}

/// `ExecConfig::from_env` is how CI's `O4A_INFLIGHT` matrix reaches the
/// engine; the default must stay the serial protocol.
#[test]
fn exec_config_env_default_is_serial() {
    if std::env::var_os("O4A_INFLIGHT").is_none() {
        assert_eq!(ExecConfig::from_env().inflight, 1);
    } else {
        // Under the CI matrix: the knob must round-trip.
        let expect: usize = std::env::var("O4A_INFLIGHT").unwrap().parse().unwrap();
        assert_eq!(ExecConfig::from_env().inflight, expect.max(1));
    }
}

/// The `O4A_SOLVER_MODE` knob: unset (or unparseable) means spawn —
/// process-per-query stays the default transport — and the CI session
/// legs reach the engine through the same string the env carries.
#[test]
fn exec_config_solver_mode_knob_parses() {
    use o4a_solvers::SolverMode;
    match std::env::var("O4A_SOLVER_MODE") {
        Err(_) => assert_eq!(ExecConfig::from_env().solver_mode, SolverMode::Spawn),
        Ok(raw) => assert_eq!(
            ExecConfig::from_env().solver_mode,
            SolverMode::parse(&raw).unwrap_or_default()
        ),
    }
    assert_eq!(SolverMode::parse("session"), Some(SolverMode::Session));
    assert_eq!(SolverMode::parse(" SPAWN "), Some(SolverMode::Spawn));
    assert_eq!(SolverMode::parse("both"), None);
}

/// A campaign routed through the env knob exactly as the production
/// drivers (`o4a-bench::exec_knob`) are: whatever `O4A_INFLIGHT` the
/// environment sets — the CI matrix runs the suite at 1 and 8 — the
/// result must match the serial reference. Shards and workers are pinned
/// so `O4A_SHARDS`/`O4A_WORKERS` cannot change the comparison.
#[test]
fn env_routed_inflight_matches_serial() {
    let config = quick_config();
    let reference = fingerprint(&serial_reference(&config));
    let exec = ExecConfig {
        shards: 1,
        parallelism: Parallelism::Serial,
        inflight: ExecConfig::from_env().inflight,
        ..ExecConfig::default()
    };
    let result = run_campaign_sharded(
        |_shard| Box::new(Once4AllFuzzer::with_defaults()) as Box<dyn o4a_core::Fuzzer>,
        &config,
        &exec,
    );
    assert_eq!(
        fingerprint(&result),
        reference,
        "env-routed inflight={} diverged from serial",
        exec.inflight
    );
}
