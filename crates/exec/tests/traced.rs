//! The observability non-interference gauntlet: running the sharded
//! engine with tracing and metrics ON must be **bit-identical** to the
//! untraced run — observability is write-only, information flows out of
//! the engine and never back into scheduling, RNG, or the virtual
//! clock.
//!
//! The obs configuration is process-global, so every test here takes
//! the same mutex and tears the installation down before releasing it.

use o4a_core::{CampaignConfig, CampaignResult, Fuzzer, Once4AllFuzzer};
use o4a_exec::{run_campaign_sharded, ExecConfig, Parallelism};
use o4a_obs::ObsConfig;
use o4a_solvers::coverage::universe;
use o4a_solvers::SolverId;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn obs_lock() -> MutexGuard<'static, ()> {
    // A previous test panicking with the lock held poisons it; the obs
    // state is re-installed per test, so the poison itself is harmless.
    OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("o4a-traced-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn quick_config() -> CampaignConfig {
    CampaignConfig {
        virtual_hours: 2,
        time_scale: 50_000,
        max_cases: 120,
        ..CampaignConfig::default()
    }
}

fn run(inflight: usize) -> CampaignResult {
    let exec = ExecConfig {
        shards: 4,
        parallelism: Parallelism::Serial,
        inflight,
        ..ExecConfig::default()
    };
    let factory = |_shard: u32| Box::new(Once4AllFuzzer::with_defaults()) as Box<dyn Fuzzer>;
    run_campaign_sharded(factory, &quick_config(), &exec)
}

/// Everything observable, bit-comparable — the full stats this time
/// (in-process runs have no transport nondeterminism to scrub).
type Fingerprint = (
    o4a_core::CampaignStats,
    Vec<(String, SolverId, String, Option<String>, u64)>,
    Vec<(u32, u64, usize)>,
    Vec<(SolverId, Vec<(String, u32)>)>,
);

fn fingerprint(result: &CampaignResult) -> Fingerprint {
    (
        result.stats.clone(),
        result
            .findings
            .iter()
            .map(|f| {
                (
                    f.case_text.clone(),
                    f.solver,
                    format!("{:?}", f.kind),
                    f.signature.clone(),
                    f.vhour.to_bits(),
                )
            })
            .collect(),
        result
            .snapshots
            .iter()
            .map(|s| (s.hour, s.cases, s.issues))
            .collect(),
        result
            .coverage
            .iter()
            .map(|(&id, map)| (id, map.export(&universe(id))))
            .collect(),
    )
}

/// The law itself, over the serial stepper and the overlapped (K = 8)
/// engine: trace-on ≡ trace-off, and the traced run leaves parseable
/// trace/metrics files whose case counter equals the campaign's.
#[test]
fn traced_campaign_is_bit_identical_to_untraced() {
    let _guard = obs_lock();
    for inflight in [1, 8] {
        o4a_obs::uninstall();
        let untraced = run(inflight);
        assert!(untraced.stats.cases > 0, "untraced run ran no cases");
        assert!(!untraced.findings.is_empty(), "equivalence leg is vacuous");

        let dir = scratch_dir(&format!("k{inflight}"));
        o4a_obs::install(ObsConfig::enabled_in(&dir));
        let traced = run(inflight);
        o4a_obs::uninstall();

        assert_eq!(
            fingerprint(&traced),
            fingerprint(&untraced),
            "tracing perturbed the K = {inflight} campaign"
        );

        // The sharded engine drains at the campaign barrier: the traced
        // run must have left files behind, and they must parse.
        let (traces, metrics) = o4a_obs::observability_files(&dir).expect("scan obs dir");
        assert!(!traces.is_empty(), "no trace file drained (K = {inflight})");
        assert!(!metrics.is_empty(), "no metrics file drained");
        let mut events = Vec::new();
        for path in &traces {
            let (_meta, mut file_events) =
                o4a_obs::trace::read_trace_file(path).expect("parse trace file");
            events.append(&mut file_events);
        }
        assert!(
            events.iter().any(|e| e.name == "case.execute"),
            "no case.execute spans in the trace"
        );
        let mut merged = o4a_obs::metrics::MetricsSnapshot::default();
        for path in &metrics {
            let (_seq, snapshot) =
                o4a_obs::metrics::read_metrics_file(path).expect("parse metrics file");
            merged.merge(&snapshot);
        }
        assert_eq!(
            merged.counters.get("campaign.cases").copied(),
            Some(untraced.stats.cases),
            "metrics case counter diverged from the campaign's own count"
        );

        let chrome = o4a_obs::trace::export_chrome_trace(&traces).expect("chrome export");
        assert!(chrome.contains("\"traceEvents\""));
        assert!(chrome.contains("case.execute"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Tracing alone (no metrics) and metrics alone both hold the law —
/// the two subsystems gate independently.
#[test]
fn each_knob_alone_is_bit_identical() {
    let _guard = obs_lock();
    o4a_obs::uninstall();
    let untraced = run(1);
    for (trace, metrics) in [(true, false), (false, true)] {
        let dir = scratch_dir(&format!("solo-t{trace}-m{metrics}"));
        o4a_obs::install(ObsConfig {
            trace,
            metrics,
            ..ObsConfig::enabled_in(&dir)
        });
        let solo = run(1);
        o4a_obs::uninstall();
        assert_eq!(
            fingerprint(&solo),
            fingerprint(&untraced),
            "trace={trace} metrics={metrics} perturbed the campaign"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
