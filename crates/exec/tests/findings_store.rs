//! Findings-store round-trip and resume tests: a journaled campaign must
//! reload to the same merged result, and a killed-then-resumed campaign
//! must report the same deduplicated issue set as an uninterrupted run.

use o4a_core::{dedup, CampaignConfig, Fuzzer, Once4AllFuzzer};
use o4a_exec::{
    run_campaign_resumable, run_campaign_sharded, ExecConfig, FindingsStore, Parallelism,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

fn quick_config() -> CampaignConfig {
    CampaignConfig {
        virtual_hours: 2,
        time_scale: 2_000_000,
        max_cases: 60,
        ..CampaignConfig::default()
    }
}

fn factory(_shard: u32) -> Box<dyn Fuzzer> {
    Box::new(Once4AllFuzzer::with_defaults())
}

static NEXT_ID: AtomicU32 = AtomicU32::new(0);

/// A fresh journal path under the target-adjacent temp dir.
fn journal_path(tag: &str) -> PathBuf {
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let mut p = std::env::temp_dir();
    p.push(format!(
        "o4a-exec-test-{}-{tag}-{id}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

fn fingerprint(result: &o4a_core::CampaignResult) -> (u64, u64, Vec<String>, Vec<String>) {
    (
        result.stats.cases,
        result.stats.bug_triggering,
        result
            .findings
            .iter()
            .map(|f| f.case_text.clone())
            .collect(),
        dedup(&result.findings).into_iter().map(|i| i.key).collect(),
    )
}

#[test]
fn journaled_run_matches_plain_run_and_reloads() {
    let config = quick_config();
    let exec = ExecConfig {
        shards: 4,
        parallelism: Parallelism::Threads(4),
        ..ExecConfig::default()
    };
    let plain = run_campaign_sharded(factory, &config, &exec);

    let path = journal_path("roundtrip");
    let store = FindingsStore::new(&path);
    let journaled = run_campaign_resumable(factory, &config, &exec, &store).unwrap();
    assert_eq!(fingerprint(&plain), fingerprint(&journaled));

    // Second open: every shard is complete in the journal, so nothing
    // re-runs and the loaded result is identical (including coverage).
    let reloaded = run_campaign_resumable(factory, &config, &exec, &store).unwrap();
    assert_eq!(fingerprint(&journaled), fingerprint(&reloaded));
    assert_eq!(journaled.final_coverage, reloaded.final_coverage);
    assert_eq!(
        journaled.stats.virtual_seconds,
        reloaded.stats.virtual_seconds
    );
    let snaps = |r: &o4a_core::CampaignResult| -> Vec<(u32, u64, usize)> {
        r.snapshots
            .iter()
            .map(|s| (s.hour, s.cases, s.issues))
            .collect()
    };
    assert_eq!(snaps(&journaled), snaps(&reloaded));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn killed_campaign_resumes_to_uninterrupted_issue_set() {
    let config = quick_config();
    let exec = ExecConfig {
        shards: 4,
        parallelism: Parallelism::Serial, // deterministic journal line order
        ..ExecConfig::default()
    };

    // Uninterrupted reference run.
    let full_path = journal_path("full");
    let full_store = FindingsStore::new(&full_path);
    let uninterrupted = run_campaign_resumable(factory, &config, &exec, &full_store).unwrap();

    // Simulate a kill: keep the header, shards 0 and 1 in full (including
    // their completion records), and shard 2's findings *without* its
    // completion record — the state a SIGKILL mid-shard-2 leaves behind.
    let journal = std::fs::read_to_string(&full_path).unwrap();
    let mut truncated = String::new();
    for line in journal.lines() {
        let keep = if line.contains("\"shard_done\"") {
            line.contains("\"shard\":0") || line.contains("\"shard\":1")
        } else if line.contains("\"finding\"") {
            !line.contains("\"shard\":3")
        } else {
            true // header
        };
        if keep {
            truncated.push_str(line);
            truncated.push('\n');
        }
    }
    let killed_path = journal_path("killed");
    std::fs::write(&killed_path, truncated).unwrap();

    // Resume: shards 0-1 load from the journal; shards 2-3 re-run (shard
    // 2's orphaned findings are dropped and regenerated deterministically).
    let resumed =
        run_campaign_resumable(factory, &config, &exec, &FindingsStore::new(&killed_path)).unwrap();
    assert_eq!(fingerprint(&uninterrupted), fingerprint(&resumed));
    assert_eq!(uninterrupted.final_coverage, resumed.final_coverage);

    let _ = std::fs::remove_file(&full_path);
    let _ = std::fs::remove_file(&killed_path);
}

#[test]
fn torn_trailing_line_does_not_block_resume() {
    let config = quick_config();
    let exec = ExecConfig {
        shards: 2,
        parallelism: Parallelism::Serial,
        ..ExecConfig::default()
    };
    let full_path = journal_path("torn-src");
    let uninterrupted =
        run_campaign_resumable(factory, &config, &exec, &FindingsStore::new(&full_path)).unwrap();

    // A SIGKILL mid-write leaves the journal ending in half a record.
    // Simulate on two prefixes: after shard 0 completed, and mid-journal
    // with shard 1's records partially present.
    let journal = std::fs::read_to_string(&full_path).unwrap();
    let lines: Vec<&str> = journal.lines().collect();
    let first_done = lines
        .iter()
        .position(|l| l.contains("\"shard_done\""))
        .expect("shard 0 completion present");
    for keep in [first_done + 1, lines.len() - 1] {
        let mut torn = lines[..keep].join("\n");
        torn.push_str("\n{\"t\":\"finding\",\"case\":\"(asse");
        let torn_path = journal_path("torn");
        std::fs::write(&torn_path, torn).unwrap();
        let resumed =
            run_campaign_resumable(factory, &config, &exec, &FindingsStore::new(&torn_path))
                .expect("torn trailing line must not block resume");
        assert_eq!(fingerprint(&uninterrupted), fingerprint(&resumed));
        let _ = std::fs::remove_file(&torn_path);
    }

    // Corruption that is *not* the trailing line stays fatal.
    let mut mangled: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
    mangled[first_done] = "{\"t\":\"shard_done\",\"sha".to_string();
    let mangled_path = journal_path("mangled");
    std::fs::write(&mangled_path, mangled.join("\n")).unwrap();
    assert!(
        run_campaign_resumable(factory, &config, &exec, &FindingsStore::new(&mangled_path))
            .is_err(),
        "mid-journal corruption must be refused"
    );
    let _ = std::fs::remove_file(&mangled_path);
    let _ = std::fs::remove_file(&full_path);
}

/// The pipe backend's "solver process died" findings must be crash-safe:
/// journaled (write + flush + fsync) the moment the case completes, decoded
/// back with their external signature intact, and regenerated
/// deterministically when a kill orphans them before their shard record.
///
/// `true` is the perfect always-dying external solver: it exits before
/// answering, so every query is an EOF crash with signature
/// `<solver>::pipe::process-died`.
#[test]
fn solver_process_died_findings_are_crash_safe_across_kill_resume() {
    let config = CampaignConfig {
        max_cases: 24, // every case is a crash finding; keep spawns cheap
        ..quick_config()
    };
    let exec = ExecConfig {
        shards: 2,
        parallelism: Parallelism::Serial, // deterministic journal line order
        inflight: 4,
        solver_cmd: Some("true".into()),
        ..ExecConfig::default()
    };

    let path = journal_path("pipe-crash");
    let store = FindingsStore::new(&path);
    let journaled = run_campaign_resumable(factory, &config, &exec, &store).unwrap();
    assert!(
        journaled
            .findings
            .iter()
            .any(|f| f.signature.as_deref() == Some("oxiz::pipe::process-died")),
        "an always-dying external solver must produce process-died findings"
    );

    // The journal on disk already holds the crash findings verbatim — the
    // durability point is *before* the engine moves past the case, so the
    // evidence survives even though the solver process itself is gone.
    let journal = std::fs::read_to_string(&path).unwrap();
    assert!(journal.contains("pipe::process-died"));

    // Reload: both shards are complete, so the crash-kind findings decode
    // from the journal rather than re-running — and match exactly.
    let reloaded = run_campaign_resumable(factory, &config, &exec, &store).unwrap();
    assert_eq!(fingerprint(&journaled), fingerprint(&reloaded));
    assert_eq!(
        journaled
            .findings
            .iter()
            .map(|f| (f.signature.clone(), f.kind))
            .collect::<Vec<_>>(),
        reloaded
            .findings
            .iter()
            .map(|f| (f.signature.clone(), f.kind))
            .collect::<Vec<_>>(),
        "crash finding kind/signature must round-trip the journal"
    );

    // Kill/resume: drop shard 1's completion record, orphaning its crash
    // findings — the re-run must regenerate the identical set.
    let truncated: String = journal
        .lines()
        .filter(|line| !(line.contains("\"shard_done\"") && line.contains("\"shard\":1")))
        .flat_map(|line| [line, "\n"])
        .collect();
    let killed_path = journal_path("pipe-crash-killed");
    std::fs::write(&killed_path, truncated).unwrap();
    let resumed =
        run_campaign_resumable(factory, &config, &exec, &FindingsStore::new(&killed_path)).unwrap();
    assert_eq!(fingerprint(&journaled), fingerprint(&resumed));

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&killed_path);
}

#[test]
fn mismatched_campaign_is_refused() {
    let config = quick_config();
    let exec = ExecConfig {
        shards: 2,
        parallelism: Parallelism::Serial,
        ..ExecConfig::default()
    };
    let path = journal_path("mismatch");
    let store = FindingsStore::new(&path);
    run_campaign_resumable(factory, &config, &exec, &store).unwrap();

    // Different seed → different campaign → refuse to resume.
    let other = CampaignConfig {
        seed: config.seed ^ 0xffff,
        ..config.clone()
    };
    let err = run_campaign_resumable(factory, &other, &exec, &store);
    assert!(err.is_err(), "resuming a different campaign must fail");

    // Different shard count is a different plan, too.
    let err = run_campaign_resumable(factory, &config, &ExecConfig { shards: 3, ..exec }, &store);
    assert!(
        err.is_err(),
        "resuming with a different shard count must fail"
    );
    let _ = std::fs::remove_file(&path);
}

// ----------------------------------------------------------- merge_from

/// A scale where shards reliably record findings (the cross-journal
/// dedup tests are vacuous without them).
fn findings_config() -> CampaignConfig {
    CampaignConfig {
        virtual_hours: 2,
        time_scale: 50_000,
        max_cases: 120,
        ..CampaignConfig::default()
    }
}

/// `merge_from` unions completed shards across per-worker journals: two
/// workers, one shard each, merge to the same campaign a single process
/// produces.
#[test]
fn merge_from_unions_worker_journals() {
    use o4a_exec::{merge_shard_results, run_shard_lease};
    let config = findings_config();
    let exec = ExecConfig {
        shards: 2,
        parallelism: Parallelism::Serial,
        ..ExecConfig::default()
    };
    let paths: Vec<PathBuf> = (0..2u32)
        .map(|shard| {
            let path = journal_path(&format!("merge-worker-{shard}"));
            let store = FindingsStore::new(&path);
            let (session, completed) = store.resume_or_create(&config, 2).unwrap();
            assert!(completed.is_empty());
            let mut fuzzer = factory(shard);
            run_shard_lease(fuzzer.as_mut(), &config, &exec, shard, Some(&session));
            path
        })
        .collect();

    let completed = FindingsStore::merge_from(&config, 2, &paths).unwrap();
    assert_eq!(completed.len(), 2, "both shards must merge as complete");
    let ordered: Vec<o4a_core::CampaignResult> = completed.into_values().collect();
    let merged = merge_shard_results(&config, &ordered);
    let reference = run_campaign_sharded(factory, &config, &exec);
    assert_eq!(fingerprint(&merged), fingerprint(&reference));
    assert_eq!(merged.final_coverage, reference.final_coverage);
    assert_eq!(
        merged.hourly_coverage.len(),
        reference.hourly_coverage.len(),
        "journal-merged results must keep the exact hourly maps"
    );
    for p in paths {
        let _ = std::fs::remove_file(&p);
    }
}

/// Cross-journal dedup: a finding journaled by a worker that died
/// mid-lease (no completion record) and re-derived by the worker that
/// re-ran the shard survives **exactly once** — and a shard completed in
/// two journals (a presumed-dead worker that actually finished) counts
/// once too.
#[test]
fn cross_journal_duplicate_finding_survives_once() {
    use o4a_exec::{run_shard_lease, FindingSink};
    let config = findings_config();
    let exec = ExecConfig {
        shards: 2,
        parallelism: Parallelism::Serial,
        ..ExecConfig::default()
    };

    // Find a shard that records findings at this scale.
    let (shard, reference) = (0..2u32)
        .map(|shard| {
            let mut fuzzer = factory(shard);
            (
                shard,
                run_shard_lease(fuzzer.as_mut(), &config, &exec, shard, None),
            )
        })
        .find(|(_, r)| !r.findings.is_empty())
        .expect("no shard recorded findings — the dedup test is vacuous");

    // Journal A: a worker that ran the shard to completion.
    let complete_path = journal_path("dedup-complete");
    {
        let store = FindingsStore::new(&complete_path);
        let (session, _) = store.resume_or_create(&config, 2).unwrap();
        let mut fuzzer = factory(shard);
        run_shard_lease(fuzzer.as_mut(), &config, &exec, shard, Some(&session));
    }
    // Journal B: a worker that journaled the same findings but died
    // before the completion record (the kill-mid-lease artifact).
    let crashed_path = journal_path("dedup-crashed");
    {
        let store = FindingsStore::new(&crashed_path);
        let (session, _) = store.resume_or_create(&config, 2).unwrap();
        for finding in &reference.findings {
            session.on_finding(shard, finding);
        }
    }
    // Journal C: byte-identical copy of the complete journal (the
    // presumed-dead-but-actually-finished race).
    let copy_path = journal_path("dedup-copy");
    std::fs::copy(&complete_path, &copy_path).unwrap();

    // The crashed journal first: its dangling findings must not win.
    let paths = vec![
        crashed_path.clone(),
        complete_path.clone(),
        copy_path.clone(),
    ];
    let completed = FindingsStore::merge_from(&config, 2, &paths).unwrap();
    assert_eq!(completed.len(), 1, "exactly one shard is complete");
    let merged_shard = &completed[&shard];
    assert_eq!(
        merged_shard.findings.len(),
        reference.findings.len(),
        "a finding discovered by two workers must survive exactly once"
    );
    assert_eq!(
        merged_shard
            .findings
            .iter()
            .map(|f| f.case_text.clone())
            .collect::<Vec<_>>(),
        reference
            .findings
            .iter()
            .map(|f| f.case_text.clone())
            .collect::<Vec<_>>(),
    );
    assert_eq!(
        dedup(&merged_shard.findings).len(),
        dedup(&reference.findings).len()
    );
    for p in paths {
        let _ = std::fs::remove_file(&p);
    }
}

/// `merge_from` skips journals that never came up (missing or empty
/// files) but still refuses one from a different campaign.
#[test]
fn merge_from_skips_absent_journals_and_refuses_foreign_ones() {
    use o4a_exec::run_shard_lease;
    let config = findings_config();
    let exec = ExecConfig {
        shards: 2,
        parallelism: Parallelism::Serial,
        ..ExecConfig::default()
    };
    let real_path = journal_path("absent-real");
    {
        let store = FindingsStore::new(&real_path);
        let (session, _) = store.resume_or_create(&config, 2).unwrap();
        let mut fuzzer = factory(0);
        run_shard_lease(fuzzer.as_mut(), &config, &exec, 0, Some(&session));
    }
    let ghost = journal_path("absent-ghost"); // never created
    let empty = journal_path("absent-empty");
    std::fs::write(&empty, b"").unwrap();

    let completed =
        FindingsStore::merge_from(&config, 2, &[ghost, empty.clone(), real_path.clone()]).unwrap();
    assert_eq!(completed.len(), 1);

    // A journal of a different campaign poisons the merge.
    let foreign_config = CampaignConfig {
        seed: config.seed ^ 0xabcd,
        ..config.clone()
    };
    let foreign = journal_path("absent-foreign");
    {
        let store = FindingsStore::new(&foreign);
        let (_session, _) = store.resume_or_create(&foreign_config, 2).unwrap();
    }
    let err = FindingsStore::merge_from(&config, 2, &[real_path.clone(), foreign.clone()]);
    assert!(err.is_err(), "foreign journals must be refused, not merged");

    for p in [empty, real_path, foreign] {
        let _ = std::fs::remove_file(&p);
    }
}
