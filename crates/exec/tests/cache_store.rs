//! Verdict-cache journal crash-safety at the engine level, mirroring the
//! `FindingsStore` suite: a cached campaign must reload to the same
//! result as an uncached one, a journal killed mid-write (clean prefix
//! or torn tail) must resume losslessly and self-heal, shards must see
//! each other's journals, and a corrupt journal must degrade to an
//! uncached run — never a wrong one.
//!
//! `yes unsat` is the perfect always-answering external solver (answers
//! instantly, stays alive, so every query is a cacheable `unsat`);
//! `true` is the perfect always-dying one (every query is a cacheable
//! `process-died` crash finding).

use o4a_core::{CampaignConfig, CampaignResult, Fuzzer, Once4AllFuzzer};
use o4a_exec::{run_campaign_sharded, ExecConfig, Parallelism};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

fn quick_config() -> CampaignConfig {
    CampaignConfig {
        virtual_hours: 2,
        time_scale: 2_000_000,
        max_cases: 30,
        ..CampaignConfig::default()
    }
}

fn factory(_shard: u32) -> Box<dyn Fuzzer> {
    Box::new(Once4AllFuzzer::with_defaults())
}

/// An exec config routing the campaign over pipes to `cmd`, cache
/// optional.
fn exec_over(cmd: &str, cache_dir: Option<PathBuf>) -> ExecConfig {
    ExecConfig {
        shards: 2,
        parallelism: Parallelism::Serial,
        inflight: 4,
        solver_cmd: Some(cmd.to_string()),
        cache_dir,
        ..ExecConfig::default()
    }
}

static NEXT_ID: AtomicU32 = AtomicU32::new(0);

/// A fresh cache directory under the system temp dir.
fn cache_dir(tag: &str) -> PathBuf {
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("o4a-exec-cache-{}-{tag}-{id}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Everything observable, modulo transport counters (cache traffic is a
/// transport observable by design — `sans_transport` scrubs it).
fn fingerprint(result: &CampaignResult) -> (o4a_core::CampaignStats, Vec<String>, Vec<(u32, u64)>) {
    (
        result.stats.sans_transport(),
        result
            .findings
            .iter()
            .map(|f| format!("{}|{:?}|{:?}", f.case_text, f.kind, f.signature))
            .collect(),
        result.snapshots.iter().map(|s| (s.hour, s.cases)).collect(),
    )
}

/// Round trip: an uncached pipe campaign, a cold cached one, and a warm
/// restart off the cold run's journals are bit-identical — and the warm
/// run answers every query from the journal without spawning a single
/// solver process.
#[test]
fn cached_campaign_matches_uncached_and_reloads_without_processes() {
    let config = quick_config();
    let reference = run_campaign_sharded(factory, &config, &exec_over("yes unsat", None));
    assert!(reference.stats.decisive > 0, "`yes unsat` never answered");
    let dir = cache_dir("roundtrip");
    let exec = exec_over("yes unsat", Some(dir.clone()));
    let cold = run_campaign_sharded(factory, &config, &exec);
    assert!(
        cold.stats.cache_misses > 0,
        "cold run never consulted the cache"
    );
    assert_eq!(fingerprint(&cold), fingerprint(&reference));
    let warm = run_campaign_sharded(factory, &config, &exec);
    assert_eq!(warm.stats.cache_misses, 0, "warm run missed the journal");
    assert!(warm.stats.cache_hits > 0);
    assert_eq!(
        warm.stats.processes_spawned, 0,
        "a fully warmed campaign must not spawn solvers"
    );
    assert_eq!(fingerprint(&warm), fingerprint(&reference));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Kill/resume, the FindingsStore law transplanted: a cache journal cut
/// back to a clean line-prefix (SIGKILL between records) or left with a
/// torn tail (SIGKILL mid-record) resumes losslessly — re-solving
/// exactly the lost entries, self-healing the journal so a third run
/// hits everything. Crash findings (`true` dies before answering) ride
/// the same journal as `died` records and replay without respawns.
#[test]
fn killed_cache_journal_resumes_losslessly_and_self_heals() {
    let config = quick_config();
    let reference = run_campaign_sharded(factory, &config, &exec_over("true", None));
    assert!(
        reference
            .findings
            .iter()
            .any(|f| f.signature.as_deref() == Some("oxiz::pipe::process-died")),
        "an always-dying solver must produce crash findings"
    );
    let reference = fingerprint(&reference);
    let dir = cache_dir("killed");
    let exec = exec_over("true", Some(dir.clone()));
    run_campaign_sharded(factory, &config, &exec);
    let journal = dir.join("cache-shard-0.jsonl");
    let full = std::fs::read_to_string(&journal).unwrap();
    let lines: Vec<&str> = full.lines().collect();
    assert!(lines.len() > 3, "journal too small to cut meaningfully");

    // Clean prefix: header plus half the records survive the kill.
    let mut prefix = lines[..lines.len() / 2].join("\n");
    prefix.push('\n');
    // Torn tail: the kill landed mid-write of the final record.
    prefix.push_str("{\"t\":\"verdict\",\"digest\":99,\"solv");
    std::fs::write(&journal, &prefix).unwrap();

    let resumed = run_campaign_sharded(factory, &config, &exec);
    assert!(resumed.stats.cache_hits > 0, "surviving records must hit");
    assert!(resumed.stats.cache_misses > 0, "lost records must re-solve");
    assert_eq!(fingerprint(&resumed), reference, "kill/resume diverged");

    // The resume truncated the torn tail and re-journaled what it
    // re-solved: a third run is fully warm again.
    let healed = std::fs::read_to_string(&journal).unwrap();
    assert!(
        !healed.contains("\"digest\":99"),
        "torn tail must be truncated"
    );
    let third = run_campaign_sharded(factory, &config, &exec);
    assert_eq!(
        third.stats.cache_misses, 0,
        "self-healed journal must fully hit"
    );
    assert_eq!(
        third.stats.process_respawns, 0,
        "cached `died` records replay crashes without respawning"
    );
    assert_eq!(fingerprint(&third), reference);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The campaign-wide sharing law: every shard session loads **all**
/// journals in the cache dir, so records journaled by one shard serve
/// another. Swapping the two shard journals on disk changes nothing —
/// the warm run still answers every query without a process.
#[test]
fn shards_share_journals_across_the_cache_dir() {
    let config = quick_config();
    let dir = cache_dir("shared");
    let exec = exec_over("yes unsat", Some(dir.clone()));
    run_campaign_sharded(factory, &config, &exec);
    let a = dir.join("cache-shard-0.jsonl");
    let b = dir.join("cache-shard-1.jsonl");
    let tmp = dir.join("swap.tmp");
    std::fs::rename(&a, &tmp).unwrap();
    std::fs::rename(&b, &a).unwrap();
    std::fs::rename(&tmp, &b).unwrap();
    let warm = run_campaign_sharded(factory, &config, &exec);
    assert_eq!(
        warm.stats.cache_misses, 0,
        "shards must find their records in each other's journals"
    );
    assert_eq!(warm.stats.processes_spawned, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Mid-journal corruption (not a torn tail) must never poison results:
/// the store refuses to open, the backend logs and runs that campaign
/// uncached — bit-identical to the reference, zero cache traffic.
#[test]
fn corrupt_cache_journal_degrades_to_uncached_not_wrong() {
    let config = quick_config();
    let reference = fingerprint(&run_campaign_sharded(
        factory,
        &config,
        &exec_over("yes unsat", None),
    ));
    let dir = cache_dir("corrupt");
    let exec = exec_over("yes unsat", Some(dir.clone()));
    run_campaign_sharded(factory, &config, &exec);
    let journal = dir.join("cache-shard-0.jsonl");
    let full = std::fs::read_to_string(&journal).unwrap();
    let lines: Vec<&str> = full.lines().collect();
    let mut mangled: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
    mangled[1] = "{\"t\":\"verdict\",\"dig".to_string(); // not the final line
    mangled.push(String::new());
    std::fs::write(&journal, mangled.join("\n")).unwrap();
    let degraded = run_campaign_sharded(factory, &config, &exec);
    assert_eq!(
        degraded.stats.cache_hits + degraded.stats.cache_misses,
        0,
        "a refused journal means an uncached run, not a partial one"
    );
    assert_eq!(
        fingerprint(&degraded),
        reference,
        "corruption leaked into results"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
