//! Campaign sharding, the worker pool, and the shard-merge semantics.
//!
//! A campaign splits into `N` deterministic shards. Shard `i` runs the
//! full virtual duration with RNG seed `config.seed ^ i` (shard 0 of a
//! 1-shard plan is therefore bit-identical to the serial campaign) and a
//! case cap of `ceil(max_cases / N)`. Shards model independent fuzzing
//! machines running concurrently: each pays its own fuzzer setup and owns
//! its own solver instances, so shard execution order — and whether shards
//! run on one thread or many — cannot affect any result.
//!
//! The merge semantics (see `crates/exec/README.md` for the full model):
//!
//! * **stats** — field-wise sum ([`o4a_core::CampaignStats::merge`]).
//! * **findings** — concatenation in ascending shard order.
//! * **coverage** — union of the raw per-solver [`CoverageMap`]s;
//!   final percentages are recomputed from the union.
//! * **snapshots** — per hour: cases sum across shards, deduplicated
//!   issues recomputed from all findings discovered up to that hour, and
//!   per-solver coverage recomputed from the **union of the shards'
//!   hour-`h` raw maps** ([`o4a_core::CampaignResult::hourly_coverage`])
//!   — exact, like the final union. Shards reconstructed from journals
//!   that predate the per-hour delta records lack the raw maps; the
//!   merge then falls back to the per-shard maximum, a documented lower
//!   bound.

use o4a_core::{
    dedup_refs, CampaignConfig, CampaignResult, CampaignStats, CampaignStepper, CoveragePoint,
    Finding, Fuzzer, HourlySnapshot, StepOutcome,
};
use o4a_solvers::coverage::universe;
use o4a_solvers::{CoverageMap, SolverMode};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How many worker threads drive the shard queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Parallelism {
    /// One worker; shards run back to back on the calling thread.
    Serial,
    /// A fixed worker count (clamped to the number of shards).
    Threads(usize),
    /// One worker per available CPU (clamped to the number of shards).
    Auto,
}

impl Parallelism {
    /// Resolves the worker count for `jobs` queued jobs.
    pub fn workers(self, jobs: usize) -> usize {
        let cap = jobs.max(1);
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.clamp(1, cap),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .clamp(1, cap),
        }
    }
}

/// Execution knob for the sharded engine.
#[derive(Clone, Debug)]
pub struct ExecConfig {
    /// Number of deterministic shards (≥ 1).
    pub shards: u32,
    /// Worker pool sizing.
    pub parallelism: Parallelism,
    /// Overlapped solver queries per shard worker (≥ 1). At `1` each
    /// worker drives the classic serial loop; above `1` it pipelines `K`
    /// cases through the async solver backend
    /// ([`crate::run_shard_overlapped`]) with bit-identical results.
    pub inflight: usize,
    /// External solver command (the `O4A_SOLVER_CMD` knob). When set,
    /// every shard worker drives **solver processes over pipes**
    /// ([`crate::run_shard_piped`]) instead of the in-process engines:
    /// the command is whitespace-split and `{lane}` in any argument
    /// becomes the solver-lane index. `None` (the default) keeps the
    /// in-process backends.
    pub solver_cmd: Option<String>,
    /// Per-query wall-clock deadline for the pipe backend, in
    /// milliseconds (the `O4A_SOLVER_TIMEOUT_MS` knob). `None` uses
    /// [`o4a_solvers::pipe::DEFAULT_QUERY_TIMEOUT`]. Ignored without
    /// [`ExecConfig::solver_cmd`].
    pub solver_timeout_ms: Option<u64>,
    /// Pipe-transport mode (the `O4A_SOLVER_MODE` knob):
    /// [`SolverMode::Spawn`] (default) fans `inflight` queries out
    /// across up to `inflight` child processes per lane;
    /// [`SolverMode::Session`] multiplexes them as `(push 1)`/`(pop 1)`
    /// scopes on **one persistent incremental process per lane**.
    /// Ignored without [`ExecConfig::solver_cmd`].
    pub solver_mode: SolverMode,
    /// Verdict-cache directory (the `O4A_CACHE` knob). When set, pipe
    /// lanes consult the campaign-wide content-addressed cache before
    /// every query and record every fresh wire reply; per-shard journals
    /// in the directory merge on load like findings journals. `None`
    /// (the default) is a no-op. Ignored without
    /// [`ExecConfig::solver_cmd`].
    pub cache_dir: Option<std::path::PathBuf>,
    /// Prefix-affinity routing (the `O4A_AFFINITY` knob): session-mode
    /// pipe lanes keep a query's declaration prefix pushed as a held
    /// scope and route queries sharing it over it without resending.
    /// Ignored without [`ExecConfig::solver_cmd`] (and in spawn mode).
    pub affinity: bool,
    /// Coordinator checkpoint path (the `O4A_CHECKPOINT` knob).
    /// Consumed by the distributed layer (`o4a-dist`): when set, the
    /// coordinator journals lease state there fsync-per-record and a
    /// killed coordinator resumes the campaign from it. The in-process
    /// engines ignore it — a single process already has the
    /// [`crate::FindingsStore`] journal for kill/resume.
    pub checkpoint: Option<std::path::PathBuf>,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            shards: 1,
            parallelism: Parallelism::Auto,
            inflight: 1,
            solver_cmd: None,
            solver_timeout_ms: None,
            solver_mode: SolverMode::Spawn,
            cache_dir: None,
            affinity: false,
            checkpoint: None,
        }
    }
}

impl ExecConfig {
    /// Reads the engine knobs from the environment: `O4A_SHARDS` (shard
    /// count, default 1 — the paper's serial protocol), `O4A_WORKERS`
    /// (worker threads; `1` forces [`Parallelism::Serial`], unset means
    /// [`Parallelism::Auto`]), `O4A_INFLIGHT` (overlapped queries per
    /// worker, default 1), `O4A_SOLVER_CMD` (external solver command;
    /// unset or blank keeps the in-process engines), and
    /// `O4A_SOLVER_MODE` (`spawn` or `session` — process-per-query vs.
    /// one persistent incremental session per lane), `O4A_CACHE`
    /// (verdict-cache directory; unset or blank means no cache), and
    /// `O4A_AFFINITY` (any value except empty, `0`, or `false` enables
    /// prefix-affinity routing), and `O4A_CHECKPOINT` (coordinator
    /// checkpoint path, consumed by `o4a-dist`; unset or blank means no
    /// checkpoint). Invalid or zero values fall back to defaults.
    pub fn from_env() -> ExecConfig {
        fn parse<T: std::str::FromStr + PartialOrd + From<u8>>(name: &str) -> Option<T> {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse::<T>().ok())
                .filter(|n| *n >= T::from(1))
        }
        let parallelism = match parse::<usize>("O4A_WORKERS") {
            Some(1) => Parallelism::Serial,
            Some(n) => Parallelism::Threads(n),
            None => Parallelism::Auto,
        };
        ExecConfig {
            shards: parse::<u32>("O4A_SHARDS").unwrap_or(1),
            parallelism,
            inflight: parse::<usize>("O4A_INFLIGHT").unwrap_or(1),
            solver_cmd: std::env::var("O4A_SOLVER_CMD")
                .ok()
                .map(|v| v.trim().to_string())
                .filter(|v| !v.is_empty()),
            solver_timeout_ms: parse::<u64>("O4A_SOLVER_TIMEOUT_MS"),
            solver_mode: std::env::var("O4A_SOLVER_MODE")
                .ok()
                .and_then(|v| SolverMode::parse(&v))
                .unwrap_or_default(),
            cache_dir: std::env::var("O4A_CACHE")
                .ok()
                .map(|v| v.trim().to_string())
                .filter(|v| !v.is_empty())
                .map(std::path::PathBuf::from),
            affinity: std::env::var("O4A_AFFINITY")
                .is_ok_and(|v| !v.trim().is_empty() && v.trim() != "0" && v.trim() != "false"),
            checkpoint: std::env::var("O4A_CHECKPOINT")
                .ok()
                .map(|v| v.trim().to_string())
                .filter(|v| !v.is_empty())
                .map(std::path::PathBuf::from),
        }
    }
}

/// The RNG seed of one shard: `base ⊕ shard-index`. The XOR keeps shard 0
/// on the serial campaign's stream; `StdRng`'s SplitMix64 seed expansion
/// decorrelates the neighbouring indices.
pub fn shard_seed(base: u64, shard: u32) -> u64 {
    base ^ shard as u64
}

/// The configuration of shard `shard` in a `shards`-way plan.
///
/// Panics when `shards` is zero or `shard` is outside the plan.
pub fn shard_config(config: &CampaignConfig, shards: u32, shard: u32) -> CampaignConfig {
    assert!(shards >= 1, "a campaign needs at least one shard");
    assert!(
        shard < shards,
        "shard {shard} outside the {shards}-way plan"
    );
    CampaignConfig {
        seed: shard_seed(config.seed, shard),
        max_cases: config.max_cases.div_ceil(shards as usize),
        ..config.clone()
    }
}

/// Splits a campaign into `shards` deterministic shard configurations.
///
/// Panics when `shards` is zero.
pub fn shard_configs(config: &CampaignConfig, shards: u32) -> Vec<CampaignConfig> {
    (0..shards)
        .map(|i| shard_config(config, shards, i))
        .collect()
}

/// Observer of shard progress — the persistence hook the findings store
/// implements. Callbacks may arrive from any worker thread, interleaved
/// across shards, but per shard they arrive in campaign order with
/// `on_shard_complete` last.
pub trait FindingSink: Sync {
    /// A new finding was recorded by `shard`.
    fn on_finding(&self, shard: u32, finding: &Finding);
    /// `shard` ran to completion with `result`.
    fn on_shard_complete(&self, shard: u32, result: &CampaignResult);
}

/// Runs `f(0..jobs)` on `workers` scoped threads, returning results in job
/// order. Panics in a job propagate to the caller.
pub fn parallel_map<T, F>(jobs: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, jobs);
    if workers == 1 {
        return (0..jobs).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let result = f(i);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

/// Runs one shard to completion, reporting findings to `sink` as they are
/// discovered (the crash-durable persistence point).
pub fn run_shard(
    fuzzer: &mut dyn Fuzzer,
    shard_config: &CampaignConfig,
    shard: u32,
    sink: Option<&dyn FindingSink>,
) -> CampaignResult {
    let mut rng = StdRng::seed_from_u64(shard_config.seed);
    let mut stepper = CampaignStepper::new(shard_config);
    stepper.charge_setup(fuzzer.setup(&mut rng));
    while let StepOutcome::Ran { recorded_finding } = stepper.step(fuzzer, &mut rng) {
        if recorded_finding {
            if let Some(sink) = sink {
                let finding = stepper.findings().last().expect("finding just recorded");
                sink.on_finding(shard, finding);
            }
        }
    }
    let result = stepper.finish(fuzzer.name());
    if let Some(sink) = sink {
        sink.on_shard_complete(shard, &result);
    }
    result
}

/// The external-process backend `exec` selects, if any.
fn pipe_backend_of(exec: &ExecConfig) -> Option<crate::overlap::PipeBackend> {
    exec.solver_cmd.as_ref().map(|cmd| {
        let mut backend = crate::overlap::PipeBackend::new(cmd.clone())
            .with_mode(exec.solver_mode)
            .with_affinity(exec.affinity);
        if let Some(dir) = &exec.cache_dir {
            backend = backend.with_cache_dir(dir);
        }
        match exec.solver_timeout_ms {
            Some(ms) => backend.with_timeout(std::time::Duration::from_millis(ms)),
            None => backend,
        }
    })
}

/// Runs **one shard of an `exec.shards`-way campaign plan** to completion
/// — the lease-granular entry point. [`run_campaign_sharded`] drives it
/// once per shard on its thread pool; a distributed worker process
/// (`o4a-dist`) calls it once per *lease*, journaling through `sink`.
/// Either way the shard executes identically, down to the transport the
/// engine knobs select (serial loop, overlapped in-flight queries, or
/// external solver processes over pipes), so a shard result is a pure
/// function of `(config, exec.shards, shard)` — the property that makes
/// dynamic lease assignment and crash re-issue invisible in merged
/// results.
///
/// # Panics
///
/// Panics when `shard >= exec.shards` (or `exec.shards` is zero).
pub fn run_shard_lease(
    fuzzer: &mut dyn Fuzzer,
    config: &CampaignConfig,
    exec: &ExecConfig,
    shard: u32,
    sink: Option<&dyn FindingSink>,
) -> CampaignResult {
    let _span = o4a_obs::trace::span("exec", "shard.lease")
        .arg("shard", u64::from(shard))
        .arg("inflight", exec.inflight.max(1) as u64);
    let cfg = shard_config(config, exec.shards, shard);
    if let Some(backend) = pipe_backend_of(exec) {
        // The pipe transport always goes through the overlapped loop;
        // `inflight = 1` is serial submission over the same plumbing.
        crate::overlap::run_shard_piped(fuzzer, &cfg, shard, sink, exec.inflight.max(1), &backend)
    } else if exec.inflight > 1 {
        crate::overlap::run_shard_overlapped(fuzzer, &cfg, shard, sink, exec.inflight)
    } else {
        run_shard(fuzzer, &cfg, shard, sink)
    }
}

/// Runs a campaign split into shards on a worker pool and merges the shard
/// results. `factory(i)` builds the fuzzer for shard `i` — each shard owns
/// an independent instance, so fuzzers need not be `Send`.
pub fn run_campaign_sharded<F>(
    factory: F,
    config: &CampaignConfig,
    exec: &ExecConfig,
) -> CampaignResult
where
    F: Fn(u32) -> Box<dyn Fuzzer> + Sync,
{
    run_campaign_sharded_with(&factory, config, exec, None, BTreeMap::new())
}

/// The full-control variant behind [`run_campaign_sharded`]: streams
/// findings into `sink` and skips shards already present in `completed`
/// (resume support; the completed results are merged as-is).
pub fn run_campaign_sharded_with<F>(
    factory: &F,
    config: &CampaignConfig,
    exec: &ExecConfig,
    sink: Option<&dyn FindingSink>,
    completed: BTreeMap<u32, CampaignResult>,
) -> CampaignResult
where
    F: Fn(u32) -> Box<dyn Fuzzer> + Sync,
{
    o4a_obs::init_from_env();
    // The engine-level drain barrier, RAII form: flush every worker
    // thread's trace ring and the metrics registry to the configured
    // directory when this scope exits — including on a panicking shard,
    // so the trace leading up to the failure survives. A campaign with
    // observability off (the default) skips all I/O; a write failure
    // must not cost campaign results, so the guard reports it to stderr
    // instead of propagating.
    let _drain = o4a_obs::DrainGuard::new();
    let todo: Vec<u32> = (0..exec.shards)
        .filter(|shard| !completed.contains_key(shard))
        .collect();
    let workers = exec.parallelism.workers(todo.len());
    let fresh = parallel_map(todo.len(), workers, |j| {
        let shard = todo[j];
        let mut fuzzer = factory(shard);
        run_shard_lease(fuzzer.as_mut(), config, exec, shard, sink)
    });

    let mut by_shard = completed;
    for (j, result) in fresh.into_iter().enumerate() {
        by_shard.insert(todo[j], result);
    }
    let ordered: Vec<CampaignResult> = by_shard.into_values().collect();
    merge_shard_results(config, &ordered)
}

/// Merges per-shard campaign results (in ascending shard order) into one
/// aggregate result, per the crate-level merge semantics.
///
/// Panics when `shard_results` is empty.
pub fn merge_shard_results(
    config: &CampaignConfig,
    shard_results: &[CampaignResult],
) -> CampaignResult {
    assert!(!shard_results.is_empty(), "nothing to merge");

    let mut stats = CampaignStats::default();
    let mut findings: Vec<Finding> = Vec::new();
    let mut coverage: BTreeMap<_, CoverageMap> = BTreeMap::new();
    for shard in shard_results {
        stats.merge(&shard.stats);
        findings.extend(shard.findings.iter().cloned());
        for (&solver, map) in &shard.coverage {
            coverage.entry(solver).or_default().merge(map);
        }
    }

    let mut final_coverage = BTreeMap::new();
    let mut covered_functions = BTreeMap::new();
    for (&solver, map) in &coverage {
        let u = universe(solver);
        final_coverage.insert(
            solver,
            CoveragePoint {
                line_pct: map.line_coverage_pct(&u),
                function_pct: map.function_coverage_pct(&u),
            },
        );
        covered_functions.insert(
            solver,
            map.covered_function_names(&u)
                .iter()
                .map(|s| s.to_string())
                .collect(),
        );
    }

    // The hourly series merges losslessly when every shard carries its
    // per-hour raw maps (always true for freshly-run shards; journals
    // written before the hourly-delta records reconstruct without them).
    // Without the maps the per-solver percentages fall back to the
    // documented per-shard-max lower bound.
    let exact_hourly = shard_results
        .iter()
        .all(|s| s.hourly_coverage.len() == s.snapshots.len());
    let mut snapshots = Vec::with_capacity(config.virtual_hours as usize);
    let mut hourly_coverage = Vec::new();
    for hour in 1..=config.virtual_hours {
        let idx = (hour - 1) as usize;
        let mut cases = 0u64;
        let mut cov: BTreeMap<_, CoveragePoint> = BTreeMap::new();
        if exact_hourly {
            let mut union: BTreeMap<_, CoverageMap> = BTreeMap::new();
            for shard in shard_results {
                if let Some(snap) = shard.snapshots.get(idx) {
                    cases += snap.cases;
                }
                if let Some(maps) = shard.hourly_coverage.get(idx) {
                    for (&solver, map) in maps {
                        union.entry(solver).or_default().merge(map);
                    }
                }
            }
            for (&solver, map) in &union {
                let u = universe(solver);
                cov.insert(
                    solver,
                    CoveragePoint {
                        line_pct: map.line_coverage_pct(&u),
                        function_pct: map.function_coverage_pct(&u),
                    },
                );
            }
            hourly_coverage.push(union);
        } else {
            for shard in shard_results {
                let Some(snap) = shard.snapshots.get(idx) else {
                    continue;
                };
                cases += snap.cases;
                for (&solver, point) in &snap.coverage {
                    let entry = cov.entry(solver).or_default();
                    entry.line_pct = entry.line_pct.max(point.line_pct);
                    entry.function_pct = entry.function_pct.max(point.function_pct);
                }
            }
        }
        snapshots.push(HourlySnapshot {
            hour,
            coverage: cov,
            cases,
            // Same rule as the serial stepper's snapshots: issues known by
            // the hour boundary, recomputed (issue counts do not sum).
            issues: dedup_refs(findings.iter().filter(|f| f.vhour <= hour as f64)).len(),
        });
    }

    CampaignResult {
        fuzzer: shard_results[0].fuzzer.clone(),
        snapshots,
        findings,
        stats,
        final_coverage,
        covered_functions,
        coverage,
        hourly_coverage,
    }
}
