//! The overlapped shard runner: `K` solver queries in flight per worker.
//!
//! A shard worker running [`crate::run_shard`] serializes on every solver
//! query; against real external solvers (the pipe-driven backends the
//! async trait is designed for) that leaves the worker idle for the whole
//! round-trip. This module drives the same campaign as a **pipeline**:
//!
//! 1. **Generate** — test cases are drawn from the fuzzer in case-index
//!    order (the RNG stream is untouched by overlap);
//! 2. **Execute** — up to `K` cases are in flight at once on an
//!    [`InFlightPool`] of [`AsyncSmtSolver`] futures, completing in
//!    latency order, not submission order;
//! 3. **Re-sequence** — completions pass through a [`Sequencer`] and are
//!    applied to the [`CampaignStepper`] strictly in case-index order.
//!
//! Because execution is campaign-state-free
//! ([`CampaignStepper::execute_case`]'s contract) and application is
//! in-order, the result is **bit-identical to the serial engine** for any
//! `K` — including the campaign-end boundary: cases generated
//! speculatively while the last real cases were still in flight are
//! discarded by [`CampaignStepper::apply_case`] once the budget is spent,
//! exactly reproducing the serial stopping point. `crates/executor/README.md`
//! spells out the full determinism argument.
//!
//! Two solver banks plug into the same loop:
//!
//! * [`run_shard_overlapped`] — the in-process engines behind the
//!   latency-simulating adapter ([`LatencySolver`]), completing on the
//!   executor's virtual tick clock;
//! * [`run_shard_piped`] — **external solver processes**
//!   ([`o4a_solvers::PipeSolver`]) answering over stdin/stdout pipes,
//!   with the worker blocking in the fd reactor's `poll(2)` while all
//!   in-flight queries wait on their children. [`PipeBackend::mode`]
//!   picks the transport: spawn mode fans `K` in-flight queries out
//!   across up to `K` processes per lane; session mode multiplexes them
//!   as `(push 1)`/`(pop 1)` scopes on **one persistent process per
//!   lane**. Same sequencing, same equivalence law
//!   (`crates/bench/tests/pipe_backend.rs` proves it against the
//!   deterministic mock solver for K ∈ {1, 4, 8} in both modes,
//!   including under crash injection mid-scope).

use crate::shard::FindingSink;
use o4a_cache::CacheStore;
use o4a_core::{
    CampaignConfig, CampaignResult, CampaignStepper, CaseExecution, Fuzzer, SolverRun, StepOutcome,
    TestCase,
};
use o4a_executor::{FdReactor, InFlightPool, Sequencer};
use o4a_solvers::{
    solver_with_config, AsyncSmtSolver, LatencyModel, LatencySolver, PipeCommand, PipeSolver,
    SolverMode, VerdictCache,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::rc::Rc;
use std::time::Duration;

/// Latency ceiling (in executor ticks) of the simulated solver lanes.
/// High enough that neighbouring in-flight cases routinely complete out
/// of order, low enough to stay negligible next to solver compute.
const MAX_LATENCY_TICKS: u64 = 16;

/// The latency stream of one solver lane in one shard: decorrelated from
/// the campaign RNG (which must stay bit-identical to the serial engine)
/// and from the other lanes.
fn lane_latency(shard_seed: u64, lane: usize) -> LatencyModel {
    let seed = shard_seed
        .rotate_left(17)
        .wrapping_add((lane as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    LatencyModel::uniform(seed, 0, MAX_LATENCY_TICKS)
}

/// The external-process solver backend configuration: the command line
/// every lane spawns (with `{lane}` substituted per solver lane), the
/// per-query wall-clock deadline, and the transport mode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PipeBackend {
    /// The solver command line (the `O4A_SOLVER_CMD` knob), whitespace
    /// split; `{lane}` in any argument becomes the lane index.
    pub command: String,
    /// Per-query deadline: a child with no complete reply by then is
    /// killed and the query becomes a `…::pipe::wedged` crash finding.
    pub timeout: Duration,
    /// Transport mode (the `O4A_SOLVER_MODE` knob): [`SolverMode::Spawn`]
    /// fans `K` in-flight queries out across up to `K` processes per
    /// lane; [`SolverMode::Session`] multiplexes them as `(push 1)` /
    /// `(pop 1)` scopes on **one persistent process per lane**.
    pub mode: SolverMode,
    /// Verdict-cache directory (the `O4A_CACHE` knob): when set, every
    /// lane consults the campaign-wide [`o4a_cache::CacheStore`] before
    /// dispatching a query and feeds it after a fresh solve. `None`
    /// (the default) is provably a no-op — no lookup, no store, no
    /// journal I/O.
    pub cache_dir: Option<std::path::PathBuf>,
    /// Prefix-affinity routing (the `O4A_AFFINITY` knob): session-mode
    /// lanes retain a query's declaration prefix as a held scope and
    /// route queries sharing it onto the same stack without resending
    /// it. Ignored in spawn mode.
    pub affinity: bool,
}

impl PipeBackend {
    /// A backend over `command` with the default per-query deadline
    /// ([`o4a_solvers::pipe::DEFAULT_QUERY_TIMEOUT`]) in spawn mode. The
    /// sharded engine overrides both from [`crate::ExecConfig`] (the
    /// `O4A_SOLVER_TIMEOUT_MS` / `O4A_SOLVER_MODE` knobs, via
    /// `ExecConfig::from_env`); programmatic callers use
    /// [`PipeBackend::with_timeout`] / [`PipeBackend::with_mode`].
    pub fn new(command: impl Into<String>) -> PipeBackend {
        PipeBackend {
            command: command.into(),
            timeout: o4a_solvers::pipe::DEFAULT_QUERY_TIMEOUT,
            mode: SolverMode::Spawn,
            cache_dir: None,
            affinity: false,
        }
    }

    /// Replaces the per-query deadline.
    pub fn with_timeout(mut self, timeout: Duration) -> PipeBackend {
        self.timeout = timeout;
        self
    }

    /// Selects the transport mode.
    pub fn with_mode(mut self, mode: SolverMode) -> PipeBackend {
        self.mode = mode;
        self
    }

    /// Points the backend at a verdict-cache directory.
    pub fn with_cache_dir(mut self, dir: impl Into<std::path::PathBuf>) -> PipeBackend {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Enables prefix-affinity routing on session-mode lanes.
    pub fn with_affinity(mut self, affinity: bool) -> PipeBackend {
        self.affinity = affinity;
        self
    }

    /// Builds the per-lane [`PipeSolver`] bank for one shard worker, all
    /// lanes sharing `reactor`. Concrete lane handles come back (rather
    /// than boxed trait objects) so the shard runner can harvest the
    /// per-lane transport counters after the campaign.
    fn bank(
        &self,
        shard_config: &CampaignConfig,
        shard: u32,
        reactor: &Rc<FdReactor>,
    ) -> Vec<PipeSolver> {
        let command = PipeCommand::parse(&self.command)
            .unwrap_or_else(|| panic!("empty solver command '{}'", self.command));
        // One cache session per shard, shared by every lane: the session
        // merges all shards' journals on open and appends to this shard's
        // own. A cache that fails to open degrades to uncached execution
        // — the campaign result is identical either way (cache ≡ fresh),
        // only slower.
        let cache: Option<Rc<dyn VerdictCache>> =
            self.cache_dir
                .as_ref()
                .and_then(|dir| match CacheStore::new(dir).open_shard(shard) {
                    Ok(session) => Some(Rc::new(session) as Rc<dyn VerdictCache>),
                    Err(e) => {
                        eprintln!(
                            "o4a-cache: cannot open {} for shard {shard}: {e} — running uncached",
                            dir.display()
                        );
                        None
                    }
                });
        shard_config
            .solvers
            .iter()
            .enumerate()
            .map(|(lane, &(id, commit))| {
                let mut solver =
                    PipeSolver::new(command.for_lane(lane), id, commit, Rc::clone(reactor))
                        .with_timeout(self.timeout)
                        .with_mode(self.mode)
                        .with_affinity(self.affinity);
                if let Some(cache) = &cache {
                    solver = solver.with_cache(Rc::clone(cache));
                }
                solver
            })
            .collect()
    }
}

/// One case's in-flight work: every solver lane queried in campaign
/// order, with each lane's latency (simulated ticks or a real pipe
/// round-trip) awaited before its result is available.
async fn case_future(solvers: &[&dyn AsyncSmtSolver], case: TestCase) -> CaseExecution {
    // The span covers the whole in-flight life of the case, queue waits
    // included — the overlapped counterpart of the serial stepper's
    // `case.execute` span. Held across awaits: the executor is
    // single-threaded, so the guard drops on the recording thread.
    let _span = o4a_obs::trace::span("core", "case.execute").arg("bytes", case.text.len() as u64);
    let mut runs = Vec::with_capacity(solvers.len());
    for solver in solvers {
        let check = solver.check_async(case.text.clone()).await;
        runs.push(SolverRun {
            solver: solver.id(),
            response: check.response,
            coverage: check.coverage,
        });
    }
    CaseExecution { case, runs }
}

/// Runs one shard with up to `inflight` overlapped cases against the
/// latency-simulating in-process solver bank, reporting findings to
/// `sink` in case order (the same order [`crate::run_shard`] reports
/// them). `inflight = 1` degenerates to strict serial submission through
/// the same async plumbing.
///
/// # Panics
///
/// Panics when `inflight` is zero.
pub fn run_shard_overlapped(
    fuzzer: &mut dyn Fuzzer,
    shard_config: &CampaignConfig,
    shard: u32,
    sink: Option<&dyn FindingSink>,
    inflight: usize,
) -> CampaignResult {
    let solvers: Vec<Box<dyn AsyncSmtSolver>> = shard_config
        .solvers
        .iter()
        .enumerate()
        .map(|(lane, &(id, commit))| {
            Box::new(LatencySolver::new(
                solver_with_config(id, commit, shard_config.engine.clone()),
                lane_latency(shard_config.seed, lane),
            )) as Box<dyn AsyncSmtSolver>
        })
        .collect();
    let lanes: Vec<&dyn AsyncSmtSolver> = solvers.iter().map(Box::as_ref).collect();
    let result = run_shard_on(
        fuzzer,
        shard_config,
        shard,
        sink,
        inflight,
        &lanes,
        &mut || {},
        None,
    );
    if let Some(sink) = sink {
        sink.on_shard_complete(shard, &result);
    }
    result
}

/// Runs one shard with up to `inflight` overlapped cases against
/// **external solver processes** spawned from `backend`. While every
/// in-flight query waits on a child pipe, the worker blocks in the fd
/// reactor's `poll(2)` — no busy-wait — and a crashed or wedged child
/// becomes a crash finding, never a hang.
///
/// Lane ownership follows [`PipeBackend::mode`]: in spawn mode each lane
/// fans `inflight` queries out across up to `inflight` children; in
/// session mode `inflight = K` means **K `(push 1)`/`(pop 1)` scopes on
/// one persistent process per lane**, multiplexed over a single pipe.
/// Either way the per-lane transport counters (processes spawned,
/// respawns, scopes pushed) are folded into the shard's
/// [`o4a_core::CampaignStats`] before the sink sees the completed shard,
/// so process churn is measurable from any campaign summary.
///
/// # Panics
///
/// Panics when `inflight` is zero or the backend command is empty.
pub fn run_shard_piped(
    fuzzer: &mut dyn Fuzzer,
    shard_config: &CampaignConfig,
    shard: u32,
    sink: Option<&dyn FindingSink>,
    inflight: usize,
    backend: &PipeBackend,
) -> CampaignResult {
    let reactor = Rc::new(FdReactor::new());
    let solvers = backend.bank(shard_config, shard, &reactor);
    let lanes: Vec<&dyn AsyncSmtSolver> = solvers
        .iter()
        .map(|lane| lane as &dyn AsyncSmtSolver)
        .collect();
    // On deadlock the pool panics with the reactor's registration dump —
    // which fds were armed, their deadlines, and the last-poll age —
    // instead of a bare count.
    let diagnostics = || reactor.debug_dump();
    let mut result = run_shard_on(
        fuzzer,
        shard_config,
        shard,
        sink,
        inflight,
        &lanes,
        &mut || {
            reactor
                .poll_io(None)
                .expect("fd reactor poll(2) failed while queries were in flight");
        },
        Some(&diagnostics),
    );
    for lane in &solvers {
        result.stats.processes_spawned += lane.processes_spawned();
        result.stats.process_respawns += lane.respawns();
        result.stats.scopes_pushed += lane.scopes_pushed();
        result.stats.cache_hits += lane.cache_hits();
        result.stats.cache_misses += lane.cache_misses();
        result.stats.prefix_reuses += lane.prefix_reuses();
    }
    if let Some(sink) = sink {
        sink.on_shard_complete(shard, &result);
    }
    result
}

/// The transport-agnostic overlapped shard loop: generate in case order,
/// keep up to `inflight` [`case_future`]s resident, re-sequence
/// completions, apply in order. `idle` runs when a poll round finds no
/// runnable future and must wake at least one (a no-op for tick-driven
/// banks, the reactor's blocking `poll(2)` for pipe-driven ones).
///
/// Findings stream to `sink` during the run; the **caller** reports
/// shard completion (after folding in any transport-level stats), so
/// `sink.on_shard_complete` always sees the final result.
#[allow(clippy::too_many_arguments)]
fn run_shard_on(
    fuzzer: &mut dyn Fuzzer,
    shard_config: &CampaignConfig,
    shard: u32,
    sink: Option<&dyn FindingSink>,
    inflight: usize,
    solvers: &[&dyn AsyncSmtSolver],
    idle: &mut dyn FnMut(),
    diagnostics: Option<&dyn Fn() -> String>,
) -> CampaignResult {
    assert!(inflight >= 1, "need at least one in-flight slot");
    let mut rng = StdRng::seed_from_u64(shard_config.seed);
    let mut stepper = CampaignStepper::apply_only(shard_config);
    stepper.charge_setup(fuzzer.setup(&mut rng));

    let mut pool: InFlightPool<CaseExecution> = InFlightPool::new(inflight);
    if let Some(diagnostics) = diagnostics {
        pool.set_diagnostics(diagnostics);
    }
    let mut sequencer: Sequencer<CaseExecution> = Sequencer::new();
    let mut next_case: u64 = 0;

    loop {
        // Fill the window. Exhaustion is judged on the *applied* prefix,
        // which lags the generated prefix by up to `inflight` cases — the
        // overshoot is speculative and discarded at apply time. The gate
        // counts completions still parked in the sequencer, not just pool
        // occupancy: futures that resolve synchronously (verdict-cache
        // hits) free their slot immediately, and refilling past the
        // window would both speculate unboundedly and starve the idle
        // hook — a perpetually runnable pool never reaches the reactor,
        // so the one pipe-bound case blocking the sequencer never gets
        // its I/O wake.
        while pool.len() + sequencer.held() < inflight && !stepper.is_exhausted() {
            let case = fuzzer.next_case(&mut rng);
            pool.submit(next_case, case_future(solvers, case));
            next_case += 1;
        }
        if pool.is_empty() {
            break; // budget spent and nothing left in flight
        }
        for (index, execution) in pool.wait_any_with(&mut *idle) {
            sequencer.push(index, execution);
        }
        while let Some((_, execution)) = sequencer.pop() {
            if let StepOutcome::Ran {
                recorded_finding: true,
            } = stepper.apply_case(execution)
            {
                if let Some(sink) = sink {
                    let finding = stepper.findings().last().expect("finding just recorded");
                    sink.on_finding(shard, finding);
                }
            }
        }
    }
    debug_assert_eq!(sequencer.held(), 0, "completions drained in order");

    stepper.finish(fuzzer.name())
}
