//! The overlapped shard runner: `K` solver queries in flight per worker.
//!
//! A shard worker running [`crate::run_shard`] serializes on every solver
//! query; against real external solvers (the pipe-driven backends the
//! async trait is designed for) that leaves the worker idle for the whole
//! round-trip. This module drives the same campaign as a **pipeline**:
//!
//! 1. **Generate** — test cases are drawn from the fuzzer in case-index
//!    order (the RNG stream is untouched by overlap);
//! 2. **Execute** — up to `K` cases are in flight at once on an
//!    [`InFlightPool`] of [`AsyncSmtSolver`] futures, completing in
//!    latency order, not submission order;
//! 3. **Re-sequence** — completions pass through a [`Sequencer`] and are
//!    applied to the [`CampaignStepper`] strictly in case-index order.
//!
//! Because execution is campaign-state-free
//! ([`CampaignStepper::execute_case`]'s contract) and application is
//! in-order, the result is **bit-identical to the serial engine** for any
//! `K` — including the campaign-end boundary: cases generated
//! speculatively while the last real cases were still in flight are
//! discarded by [`CampaignStepper::apply_case`] once the budget is spent,
//! exactly reproducing the serial stopping point. `crates/executor/README.md`
//! spells out the full determinism argument.

use crate::shard::FindingSink;
use o4a_core::{
    CampaignConfig, CampaignResult, CampaignStepper, CaseExecution, Fuzzer, SolverRun, StepOutcome,
    TestCase,
};
use o4a_executor::{InFlightPool, Sequencer};
use o4a_solvers::{solver_with_config, AsyncSmtSolver, LatencyModel, LatencySolver};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Latency ceiling (in executor ticks) of the simulated solver lanes.
/// High enough that neighbouring in-flight cases routinely complete out
/// of order, low enough to stay negligible next to solver compute.
const MAX_LATENCY_TICKS: u64 = 16;

/// The latency stream of one solver lane in one shard: decorrelated from
/// the campaign RNG (which must stay bit-identical to the serial engine)
/// and from the other lanes.
fn lane_latency(shard_seed: u64, lane: usize) -> LatencyModel {
    let seed = shard_seed
        .rotate_left(17)
        .wrapping_add((lane as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    LatencyModel::uniform(seed, 0, MAX_LATENCY_TICKS)
}

/// One case's in-flight work: every solver lane queried in campaign
/// order, with each lane's seeded latency awaited before its compute.
async fn case_future(solvers: &[LatencySolver], case: TestCase) -> CaseExecution {
    let mut runs = Vec::with_capacity(solvers.len());
    for solver in solvers {
        let check = solver.check_async(case.text.clone()).await;
        runs.push(SolverRun {
            solver: solver.id(),
            response: check.response,
            coverage: check.coverage,
        });
    }
    CaseExecution { case, runs }
}

/// Runs one shard with up to `inflight` overlapped cases, reporting
/// findings to `sink` in case order (the same order [`crate::run_shard`]
/// reports them). `inflight = 1` degenerates to strict serial submission
/// through the same async plumbing.
///
/// # Panics
///
/// Panics when `inflight` is zero.
pub fn run_shard_overlapped(
    fuzzer: &mut dyn Fuzzer,
    shard_config: &CampaignConfig,
    shard: u32,
    sink: Option<&dyn FindingSink>,
    inflight: usize,
) -> CampaignResult {
    assert!(inflight >= 1, "need at least one in-flight slot");
    let mut rng = StdRng::seed_from_u64(shard_config.seed);
    let mut stepper = CampaignStepper::apply_only(shard_config);
    stepper.charge_setup(fuzzer.setup(&mut rng));

    // The async solver bank: latency-wrapped instances of the solvers
    // under test (the apply-only stepper holds none of its own).
    let solvers: Vec<LatencySolver> = shard_config
        .solvers
        .iter()
        .enumerate()
        .map(|(lane, &(id, commit))| {
            LatencySolver::new(
                solver_with_config(id, commit, shard_config.engine.clone()),
                lane_latency(shard_config.seed, lane),
            )
        })
        .collect();

    let mut pool: InFlightPool<CaseExecution> = InFlightPool::new(inflight);
    let mut sequencer: Sequencer<CaseExecution> = Sequencer::new();
    let mut next_case: u64 = 0;

    loop {
        // Fill the window. Exhaustion is judged on the *applied* prefix,
        // which lags the generated prefix by up to `inflight` cases — the
        // overshoot is speculative and discarded at apply time.
        while pool.has_capacity() && !stepper.is_exhausted() {
            let case = fuzzer.next_case(&mut rng);
            pool.submit(next_case, case_future(&solvers, case));
            next_case += 1;
        }
        if pool.is_empty() {
            break; // budget spent and nothing left in flight
        }
        for (index, execution) in pool.wait_any() {
            sequencer.push(index, execution);
        }
        while let Some((_, execution)) = sequencer.pop() {
            if let StepOutcome::Ran {
                recorded_finding: true,
            } = stepper.apply_case(execution)
            {
                if let Some(sink) = sink {
                    let finding = stepper.findings().last().expect("finding just recorded");
                    sink.on_finding(shard, finding);
                }
            }
        }
    }
    debug_assert_eq!(sequencer.held(), 0, "completions drained in order");

    let result = stepper.finish(fuzzer.name());
    if let Some(sink) = sink {
        sink.on_shard_complete(shard, &result);
    }
    result
}
