//! The resumable findings store: an append-only JSONL journal of campaign
//! findings plus per-shard completion records.
//!
//! ## File format
//!
//! One JSON object per line:
//!
//! * `{"t":"campaign", ...}` — header: a fingerprint of the campaign
//!   configuration and shard count. Written once, first. Resuming against
//!   a store whose fingerprint differs is refused.
//! * `{"t":"finding","shard":i, ...}` — one bug-triggering finding, written
//!   (and flushed) the moment shard `i` records it. This is the
//!   crash-durability point: findings survive a killed process even when
//!   their shard never completes.
//! * `{"t":"shard_done","shard":i, ...}` — shard `i` ran to completion;
//!   carries its stats, hourly snapshots, exported coverage maps, and
//!   per-hour coverage-map **deltas** (the newly-covered branch bits at
//!   each hour boundary), from which the cumulative hourly maps — and
//!   therefore an *exact* merged hourly snapshot series — reconstruct.
//!
//! ## Resume semantics
//!
//! On load, a shard counts as **complete** iff its `shard_done` record is
//! present; its result is reconstructed from the record plus its finding
//! lines. Findings from shards without a completion record are *dropped*
//! and the shard re-runs from scratch — shard execution is deterministic,
//! so the re-run regenerates exactly the findings the kill lost, and a
//! resumed campaign reports the same deduplicated issue set as an
//! uninterrupted one. Exact-duplicate lines (possible when a crash falls
//! between write and flush boundaries) are dropped on load.

use crate::json::{obj, parse, Json};
use crate::shard::FindingSink;
use o4a_core::{
    CampaignConfig, CampaignResult, CampaignStats, CoveragePoint, Finding, FoundKind,
    HourlySnapshot,
};
use o4a_smtlib::Theory;
use o4a_solvers::bugs::registry;
use o4a_solvers::coverage::universe;
use o4a_solvers::{CoverageMap, SolverId};
use std::collections::{BTreeMap, BTreeSet};
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// A findings store bound to one JSONL file path.
#[derive(Clone, Debug)]
pub struct FindingsStore {
    path: PathBuf,
}

impl FindingsStore {
    /// Binds a store to `path` (the file need not exist yet).
    pub fn new(path: impl Into<PathBuf>) -> FindingsStore {
        FindingsStore { path: path.into() }
    }

    /// The journal path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Opens the journal for a campaign: creates it (writing the header)
    /// when absent, or loads it and returns the shards that already ran to
    /// completion. The returned session appends to the same file.
    ///
    /// # Errors
    ///
    /// I/O errors, a corrupt journal, or a journal whose header fingerprint
    /// does not match `config`/`shards` (resuming a different campaign).
    pub fn resume_or_create(
        &self,
        config: &CampaignConfig,
        shards: u32,
    ) -> io::Result<(StoreSession, BTreeMap<u32, CampaignResult>)> {
        let fingerprint = header_record(config, shards);
        let mut completed = BTreeMap::new();
        let exists = self.path.exists() && std::fs::metadata(&self.path)?.len() > 0;
        if exists {
            completed = load_journal(&self.path, &fingerprint)?;
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        let mut writer = BufWriter::new(file);
        if !exists {
            writeln!(writer, "{}", fingerprint.to_line())?;
            writer.flush()?;
        }
        Ok((
            StoreSession {
                writer: Mutex::new(writer),
            },
            completed,
        ))
    }

    /// Loads and unions the completed shards of **several journals of the
    /// same campaign** — the distributed-merge API. Each worker process of
    /// an `o4a-dist` campaign appends to its own journal; the coordinator
    /// hands every journal path (including those of workers that died
    /// mid-lease) to this function and merges the union with
    /// [`crate::merge_shard_results`].
    ///
    /// The single-journal laws extend across files:
    ///
    /// * a shard counts as complete iff some journal holds its
    ///   `shard_done` record; findings journaled by a worker that died
    ///   before completing the shard are dropped (the re-issued lease
    ///   re-derives them deterministically), so a finding discovered by
    ///   two workers survives **exactly once**;
    /// * a shard completed in two journals (a re-issued lease whose
    ///   original holder finished after all) decodes identically —
    ///   shard execution is deterministic — and the first journal's copy
    ///   is kept;
    /// * missing or empty files are skipped (a worker may die before its
    ///   journal gains a header).
    ///
    /// # Errors
    ///
    /// I/O errors, corrupt journals (a torn *final* line is tolerated, as
    /// on resume), and journals whose header does not match
    /// `config`/`shards`.
    pub fn merge_from(
        config: &CampaignConfig,
        shards: u32,
        paths: &[PathBuf],
    ) -> io::Result<BTreeMap<u32, CampaignResult>> {
        let fingerprint = header_record(config, shards);
        let mut completed: BTreeMap<u32, CampaignResult> = BTreeMap::new();
        for path in paths {
            if !path.exists() || std::fs::metadata(path)?.len() == 0 {
                continue;
            }
            for (shard, result) in load_journal(path, &fingerprint)? {
                completed.entry(shard).or_insert(result);
            }
        }
        Ok(completed)
    }
}

/// An open, appendable journal. Implements [`FindingSink`], so it plugs
/// directly into the sharded engine; every record is flushed on write.
pub struct StoreSession {
    writer: Mutex<BufWriter<File>>,
}

impl StoreSession {
    /// Appends one record **crash-safely**: the line is written, flushed
    /// to the kernel, and fsync'd to stable storage before this returns —
    /// and the sink callbacks only return after `append`. The engine
    /// therefore never reports a case complete (or moves past it) while
    /// its finding could still be lost to a crash of *this* process or
    /// the machine. That ordering is what makes "solver process died"
    /// findings from the pipe backend durable: the external solver is
    /// already gone when the finding is recorded, so the journal line is
    /// the only evidence the crash ever happened.
    fn append(&self, record: Json) {
        let mut writer = self.writer.lock().expect("store writer poisoned");
        // Persistence failures must not corrupt campaign results; they
        // surface on resume instead (the journal just ends early).
        let _ = writeln!(writer, "{}", record.to_line());
        let _ = writer.flush();
        let _ = writer.get_ref().sync_data();
    }
}

impl FindingSink for StoreSession {
    fn on_finding(&self, shard: u32, finding: &Finding) {
        self.append(finding_record(shard, finding));
    }

    fn on_shard_complete(&self, shard: u32, result: &CampaignResult) {
        self.append(shard_done_record(shard, result));
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

// ---------------------------------------------------------------- encoding

fn header_record(config: &CampaignConfig, shards: u32) -> Json {
    let solvers: Vec<Json> = config
        .solvers
        .iter()
        .map(|(id, commit)| {
            Json::Arr(vec![
                Json::Str(id.name().to_string()),
                Json::U64(*commit as u64),
            ])
        })
        .collect();
    obj(vec![
        ("t", Json::Str("campaign".into())),
        ("version", Json::U64(1)),
        ("seed", Json::U64(config.seed)),
        ("shards", Json::U64(shards as u64)),
        ("virtual_hours", Json::U64(config.virtual_hours as u64)),
        ("time_scale", Json::U64(config.time_scale)),
        ("max_cases", Json::U64(config.max_cases as u64)),
        ("bugs_enabled", Json::Bool(config.engine.bugs_enabled)),
        ("solvers", Json::Arr(solvers)),
    ])
}

fn kind_name(kind: FoundKind) -> &'static str {
    match kind {
        FoundKind::Crash => "crash",
        FoundKind::Soundness => "soundness",
        FoundKind::InvalidModel => "invalid-model",
    }
}

fn kind_from_name(name: &str) -> Option<FoundKind> {
    match name {
        "crash" => Some(FoundKind::Crash),
        "soundness" => Some(FoundKind::Soundness),
        "invalid-model" => Some(FoundKind::InvalidModel),
        _ => None,
    }
}

fn solver_from_name(name: &str) -> Option<SolverId> {
    SolverId::ALL.into_iter().find(|s| s.name() == name)
}

fn finding_record(shard: u32, finding: &Finding) -> Json {
    obj(vec![
        ("t", Json::Str("finding".into())),
        ("shard", Json::U64(shard as u64)),
        ("solver", Json::Str(finding.solver.name().to_string())),
        ("kind", Json::Str(kind_name(finding.kind).to_string())),
        (
            "sig",
            finding
                .signature
                .as_ref()
                .map(|s| Json::Str(s.clone()))
                .unwrap_or(Json::Null),
        ),
        (
            "theories",
            Json::Arr(
                finding
                    .theories
                    .iter()
                    .map(|t| Json::Str(t.name().to_string()))
                    .collect(),
            ),
        ),
        (
            "bug",
            finding
                .attributed
                .map(|spec| Json::Str(spec.id.to_string()))
                .unwrap_or(Json::Null),
        ),
        ("vhour", Json::F64(finding.vhour)),
        ("case", Json::Str(finding.case_text.clone())),
    ])
}

fn stats_record(stats: &CampaignStats) -> Json {
    obj(vec![
        ("cases", Json::U64(stats.cases)),
        ("total_bytes", Json::U64(stats.total_bytes)),
        ("bug_triggering", Json::U64(stats.bug_triggering)),
        ("rejected", Json::U64(stats.rejected)),
        ("decisive", Json::U64(stats.decisive)),
        ("virtual_seconds", Json::U64(stats.virtual_seconds)),
        (
            "setup_virtual_seconds",
            Json::U64(stats.setup_virtual_seconds),
        ),
        ("processes_spawned", Json::U64(stats.processes_spawned)),
        ("process_respawns", Json::U64(stats.process_respawns)),
        ("scopes_pushed", Json::U64(stats.scopes_pushed)),
        ("leases_granted", Json::U64(stats.leases_granted)),
        ("leases_reissued", Json::U64(stats.leases_reissued)),
        ("cache_hits", Json::U64(stats.cache_hits)),
        ("cache_misses", Json::U64(stats.cache_misses)),
        ("prefix_reuses", Json::U64(stats.prefix_reuses)),
    ])
}

/// Encodes [`o4a_core::CampaignResult::hourly_coverage`] as per-hour
/// **deltas**: for each hour and solver, only the branch-mask bits newly
/// covered since the previous hour boundary. Coverage accumulation is
/// monotone, so the cumulative per-hour maps reconstruct exactly by
/// folding the deltas forward — the journal stays small while the merged
/// hourly snapshot series stays bit-exact. Every configured solver
/// appears every hour (possibly with an empty delta list) so the decoded
/// maps keep the full solver key set.
fn hourly_delta_records(result: &CampaignResult) -> Json {
    let mut prev_masks: BTreeMap<SolverId, BTreeMap<String, u32>> = BTreeMap::new();
    let mut hours = Vec::with_capacity(result.hourly_coverage.len());
    for maps in &result.hourly_coverage {
        let mut hour: Vec<(&str, Json)> = Vec::new();
        for (&solver, map) in maps {
            let u = universe(solver);
            let seen = prev_masks.entry(solver).or_default();
            let mut deltas = Vec::new();
            for (name, mask) in map.export(&u) {
                let new_bits = mask & !seen.get(&name).copied().unwrap_or(0);
                if new_bits != 0 {
                    deltas.push(Json::Arr(vec![
                        Json::Str(name.clone()),
                        Json::U64(new_bits as u64),
                    ]));
                }
                seen.insert(name, mask);
            }
            hour.push((solver.name(), Json::Arr(deltas)));
        }
        hours.push(obj(hour));
    }
    Json::Arr(hours)
}

fn shard_done_record(shard: u32, result: &CampaignResult) -> Json {
    let snapshots: Vec<Json> = result
        .snapshots
        .iter()
        .map(|snap| {
            let cov: Vec<(&str, Json)> = snap
                .coverage
                .iter()
                .map(|(id, point)| {
                    (
                        id.name(),
                        Json::Arr(vec![
                            Json::F64(point.line_pct),
                            Json::F64(point.function_pct),
                        ]),
                    )
                })
                .collect();
            obj(vec![
                ("hour", Json::U64(snap.hour as u64)),
                ("cases", Json::U64(snap.cases)),
                ("issues", Json::U64(snap.issues as u64)),
                ("cov", obj(cov)),
            ])
        })
        .collect();
    let coverage: Vec<(&str, Json)> = result
        .coverage
        .iter()
        .map(|(id, map)| {
            let entries: Vec<Json> = map
                .export(&universe(*id))
                .into_iter()
                .map(|(name, mask)| Json::Arr(vec![Json::Str(name), Json::U64(mask as u64)]))
                .collect();
            (id.name(), Json::Arr(entries))
        })
        .collect();
    obj(vec![
        ("t", Json::Str("shard_done".into())),
        ("shard", Json::U64(shard as u64)),
        ("fuzzer", Json::Str(result.fuzzer.clone())),
        ("findings", Json::U64(result.findings.len() as u64)),
        ("stats", stats_record(&result.stats)),
        ("snapshots", Json::Arr(snapshots)),
        ("coverage", obj(coverage)),
        ("hourly", hourly_delta_records(result)),
    ])
}

// ---------------------------------------------------------------- decoding

fn str_field<'j>(record: &'j Json, key: &str) -> io::Result<&'j str> {
    record
        .get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| bad(format!("missing string field '{key}'")))
}

fn u64_field(record: &Json, key: &str) -> io::Result<u64> {
    record
        .get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| bad(format!("missing integer field '{key}'")))
}

/// A `u64` field that may be absent (journal forward-compat): `0` when
/// missing.
fn opt_u64_field(record: &Json, key: &str) -> u64 {
    record.get(key).and_then(Json::as_u64).unwrap_or(0)
}

fn f64_field(record: &Json, key: &str) -> io::Result<f64> {
    record
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| bad(format!("missing number field '{key}'")))
}

fn decode_finding(record: &Json) -> io::Result<Finding> {
    let solver_name = str_field(record, "solver")?;
    let solver = solver_from_name(solver_name)
        .ok_or_else(|| bad(format!("unknown solver '{solver_name}'")))?;
    let kind_text = str_field(record, "kind")?;
    let kind =
        kind_from_name(kind_text).ok_or_else(|| bad(format!("unknown kind '{kind_text}'")))?;
    let signature = match record.get("sig") {
        Some(Json::Str(s)) => Some(s.clone()),
        _ => None,
    };
    let mut theories = Vec::new();
    for t in record
        .get("theories")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("missing theories"))?
    {
        let name = t.as_str().ok_or_else(|| bad("non-string theory"))?;
        theories
            .push(Theory::from_name(name).ok_or_else(|| bad(format!("unknown theory '{name}'")))?);
    }
    let attributed = match record.get("bug") {
        Some(Json::Str(id)) => Some(
            registry()
                .iter()
                .find(|spec| spec.id == id.as_str())
                .ok_or_else(|| bad(format!("unknown bug id '{id}'")))?,
        ),
        _ => None,
    };
    Ok(Finding {
        case_text: str_field(record, "case")?.to_string(),
        solver,
        kind,
        signature,
        theories,
        attributed,
        vhour: f64_field(record, "vhour")?,
    })
}

fn decode_stats(record: &Json) -> io::Result<CampaignStats> {
    Ok(CampaignStats {
        cases: u64_field(record, "cases")?,
        total_bytes: u64_field(record, "total_bytes")?,
        bug_triggering: u64_field(record, "bug_triggering")?,
        rejected: u64_field(record, "rejected")?,
        decisive: u64_field(record, "decisive")?,
        virtual_seconds: u64_field(record, "virtual_seconds")?,
        setup_virtual_seconds: u64_field(record, "setup_virtual_seconds")?,
        // Transport counters are absent from journals written before the
        // session-lane engine; read them leniently so old journals resume.
        processes_spawned: opt_u64_field(record, "processes_spawned"),
        process_respawns: opt_u64_field(record, "process_respawns"),
        scopes_pushed: opt_u64_field(record, "scopes_pushed"),
        leases_granted: opt_u64_field(record, "leases_granted"),
        leases_reissued: opt_u64_field(record, "leases_reissued"),
        cache_hits: opt_u64_field(record, "cache_hits"),
        cache_misses: opt_u64_field(record, "cache_misses"),
        prefix_reuses: opt_u64_field(record, "prefix_reuses"),
    })
}

fn decode_shard_done(record: &Json, findings: Vec<Finding>) -> io::Result<CampaignResult> {
    let expected = u64_field(record, "findings")? as usize;
    if expected != findings.len() {
        return Err(bad(format!(
            "shard_done expects {expected} findings but the journal holds {}",
            findings.len()
        )));
    }
    let stats = decode_stats(record.get("stats").ok_or_else(|| bad("missing stats"))?)?;

    let mut snapshots = Vec::new();
    for snap in record
        .get("snapshots")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("missing snapshots"))?
    {
        let mut coverage = BTreeMap::new();
        if let Some(Json::Obj(cov)) = snap.get("cov") {
            for (name, point) in cov {
                let solver = solver_from_name(name)
                    .ok_or_else(|| bad(format!("unknown solver '{name}'")))?;
                let pair = point.as_arr().ok_or_else(|| bad("bad coverage point"))?;
                if pair.len() != 2 {
                    return Err(bad("coverage point needs [line, function]"));
                }
                coverage.insert(
                    solver,
                    CoveragePoint {
                        line_pct: pair[0].as_f64().ok_or_else(|| bad("bad line pct"))?,
                        function_pct: pair[1].as_f64().ok_or_else(|| bad("bad function pct"))?,
                    },
                );
            }
        }
        snapshots.push(HourlySnapshot {
            hour: u64_field(snap, "hour")? as u32,
            coverage,
            cases: u64_field(snap, "cases")?,
            issues: u64_field(snap, "issues")? as usize,
        });
    }

    let mut coverage: BTreeMap<SolverId, CoverageMap> = BTreeMap::new();
    let mut final_coverage = BTreeMap::new();
    let mut covered_functions = BTreeMap::new();
    if let Some(Json::Obj(cov)) = record.get("coverage") {
        for (name, entries) in cov {
            let solver =
                solver_from_name(name).ok_or_else(|| bad(format!("unknown solver '{name}'")))?;
            let u = universe(solver);
            let mut map = CoverageMap::new();
            for entry in entries.as_arr().ok_or_else(|| bad("bad coverage list"))? {
                let pair = entry.as_arr().ok_or_else(|| bad("bad coverage entry"))?;
                if pair.len() != 2 {
                    return Err(bad("coverage entry needs [name, mask]"));
                }
                let fn_name = pair[0].as_str().ok_or_else(|| bad("bad function name"))?;
                let mask = pair[1].as_u64().ok_or_else(|| bad("bad branch mask"))? as u32;
                map.absorb_mask(&u, fn_name, mask);
            }
            final_coverage.insert(
                solver,
                CoveragePoint {
                    line_pct: map.line_coverage_pct(&u),
                    function_pct: map.function_coverage_pct(&u),
                },
            );
            covered_functions.insert(
                solver,
                map.covered_function_names(&u)
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
            );
            coverage.insert(solver, map);
        }
    }

    // Per-hour coverage deltas fold forward into the cumulative maps the
    // lossless hourly merge unions. Absent from journals written before
    // the delta records (forward-compat: the merge then falls back to
    // the per-shard-max lower bound).
    let mut hourly_coverage = Vec::new();
    if let Some(hours) = record.get("hourly").and_then(Json::as_arr) {
        let mut running: BTreeMap<SolverId, CoverageMap> = BTreeMap::new();
        for hour in hours {
            let Json::Obj(by_solver) = hour else {
                return Err(bad("hourly entry is not an object"));
            };
            for (name, deltas) in by_solver {
                let solver = solver_from_name(name)
                    .ok_or_else(|| bad(format!("unknown solver '{name}'")))?;
                let u = universe(solver);
                let map = running.entry(solver).or_default();
                for entry in deltas
                    .as_arr()
                    .ok_or_else(|| bad("bad hourly delta list"))?
                {
                    let pair = entry.as_arr().ok_or_else(|| bad("bad hourly delta"))?;
                    if pair.len() != 2 {
                        return Err(bad("hourly delta needs [name, mask]"));
                    }
                    let fn_name = pair[0].as_str().ok_or_else(|| bad("bad function name"))?;
                    let mask = pair[1].as_u64().ok_or_else(|| bad("bad branch mask"))? as u32;
                    map.absorb_mask(&u, fn_name, mask);
                }
            }
            hourly_coverage.push(running.clone());
        }
    }

    Ok(CampaignResult {
        fuzzer: str_field(record, "fuzzer")?.to_string(),
        snapshots,
        findings,
        stats,
        final_coverage,
        covered_functions,
        coverage,
        hourly_coverage,
    })
}

fn load_journal(path: &Path, fingerprint: &Json) -> io::Result<BTreeMap<u32, CampaignResult>> {
    let reader = BufReader::new(File::open(path)?);
    let mut lines = Vec::new();
    for line in reader.lines() {
        let line = line?;
        if !line.trim().is_empty() {
            lines.push(line);
        }
    }
    if lines.is_empty() {
        return Ok(BTreeMap::new());
    }
    let header = parse(&lines[0]).map_err(|e| bad(format!("corrupt header: {e}")))?;
    if &header != fingerprint {
        return Err(bad(format!(
            "findings store at {} belongs to a different campaign \
             (header {} != expected {})",
            path.display(),
            header.to_line(),
            fingerprint.to_line()
        )));
    }

    // Dedup-on-load: drop byte-identical repeats of a shard's lines.
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut findings_by_shard: BTreeMap<u32, Vec<Finding>> = BTreeMap::new();
    let mut done_by_shard: BTreeMap<u32, Json> = BTreeMap::new();
    for (lineno, line) in lines.iter().enumerate().skip(1) {
        if !seen.insert(line.clone()) {
            continue;
        }
        let decoded: io::Result<()> = (|| {
            let record = parse(line)
                .map_err(|e| bad(format!("corrupt record on line {}: {e}", lineno + 1)))?;
            let tag = str_field(&record, "t")?;
            let shard = u64_field(&record, "shard")? as u32;
            match tag {
                "finding" => {
                    findings_by_shard
                        .entry(shard)
                        .or_default()
                        .push(decode_finding(&record)?);
                }
                "shard_done" => {
                    done_by_shard.insert(shard, record);
                }
                other => return Err(bad(format!("unknown record type '{other}'"))),
            }
            Ok(())
        })();
        if let Err(e) = decoded {
            // A kill can tear the *final* line mid-write; the shard it
            // belongs to has no completion record, so dropping the torn
            // tail loses nothing — the shard re-runs deterministically.
            // Corruption anywhere earlier is real damage and stays fatal.
            if lineno + 1 == lines.len() {
                break;
            }
            return Err(e);
        }
    }

    let mut completed = BTreeMap::new();
    for (shard, record) in done_by_shard {
        let findings = findings_by_shard.remove(&shard).unwrap_or_default();
        completed.insert(shard, decode_shard_done(&record, findings)?);
    }
    // Findings of shards without a shard_done record are dropped here:
    // those shards re-run deterministically on resume.
    Ok(completed)
}
