//! # o4a-exec
//!
//! The sharded parallel campaign engine. The paper's experiment grid is
//! embarrassingly parallel across fuzzers, solver commits, and seeds; this
//! crate turns `o4a-core`'s serial, in-memory campaign loop into a
//! production-shaped engine:
//!
//! * **Deterministic sharding** — a [`CampaignConfig`] splits into `N`
//!   shards with independent RNG streams (`seed ⊕ shard-index`), executed
//!   on a `std::thread` worker pool sized by [`Parallelism`]. Results
//!   merge in shard order, so two runs with the same seed produce
//!   identical aggregates regardless of thread scheduling.
//! * **Mergeable results** — shard results combine without loss: stats
//!   sum, findings concatenate, and raw coverage maps union
//!   ([`o4a_solvers::CoverageMap::merge`]) with percentages recomputed
//!   from the union. See `README.md` for the full merge model.
//! * **A resumable findings store** — [`FindingsStore`] journals findings
//!   to JSONL as they are discovered and records shard completion;
//!   [`run_campaign_resumable`] skips completed shards on restart and
//!   re-runs interrupted ones deterministically, so a killed campaign
//!   resumes to the same deduplicated issue set an uninterrupted run
//!   reports. [`FindingsStore::merge_from`] extends the same laws across
//!   many journals of one campaign — the distributed merge.
//! * **Lease-granular execution** — [`run_shard_lease`] runs one shard
//!   of an N-way plan as a standalone unit (a pure function of
//!   `(config, shards, shard)`), which is what the `o4a-dist`
//!   coordinator hands its worker processes as dynamic leases.
//! * **Overlapped in-flight queries** — with [`ExecConfig::inflight`]
//!   `= K > 1` each shard worker pipelines `K` cases through the async
//!   solver backend ([`o4a_solvers::AsyncSmtSolver`]) on a tokio-free
//!   poll-loop executor (`o4a-executor`), re-sequencing out-of-order
//!   completions by case index so results stay bit-identical to the
//!   serial engine ([`run_shard_overlapped`]).
//!
//! * **External solver processes** — with [`ExecConfig::solver_cmd`]
//!   (the `O4A_SOLVER_CMD` knob) each shard worker spawns the named
//!   solver binary per lane and drives it **over stdin/stdout pipes**
//!   ([`run_shard_piped`], [`o4a_solvers::PipeSolver`]): scripts stream
//!   to the child's stdin, replies parse incrementally from its stdout
//!   via the fd reactor's `poll(2)`, and crashed or wedged processes
//!   become crash findings (killed + respawned), never hangs.
//!   [`ExecConfig::solver_mode`] (the `O4A_SOLVER_MODE` knob) picks the
//!   transport: `spawn` fans `K` in-flight queries out across up to `K`
//!   children per lane, `session` multiplexes them as `(push 1)` /
//!   `(pop 1)` scopes on **one persistent incremental process per
//!   lane**. The overlap-equivalence law holds over both — proven
//!   against the deterministic mock solver in
//!   `crates/bench/tests/pipe_backend.rs`, crash injection included —
//!   and per-lane process churn surfaces in
//!   [`o4a_core::CampaignStats`] (`processes_spawned`,
//!   `process_respawns`, `scopes_pushed`).
//!
//! ```no_run
//! use o4a_core::{CampaignConfig, Fuzzer, Once4AllFuzzer};
//! use o4a_exec::{run_campaign_sharded, ExecConfig, Parallelism};
//!
//! let exec = ExecConfig {
//!     shards: 4,
//!     parallelism: Parallelism::Auto,
//!     inflight: 8,
//!     solver_cmd: None, // Some("z3 -in".into()) drives real Z3 over pipes
//!     ..ExecConfig::default()
//! };
//! let result = run_campaign_sharded(
//!     |_shard| Box::new(Once4AllFuzzer::with_defaults()) as Box<dyn Fuzzer>,
//!     &CampaignConfig::default(),
//!     &exec,
//! );
//! println!("{} cases across 4 shards, 8 queries in flight each", result.stats.cases);
//! ```

#![warn(missing_docs)]

pub use o4a_cache::{CacheSession, CacheStore};
pub use o4a_obs::json;

pub mod overlap;
pub mod shard;
pub mod store;

pub use overlap::{run_shard_overlapped, run_shard_piped, PipeBackend};
pub use shard::{
    merge_shard_results, parallel_map, run_campaign_sharded, run_campaign_sharded_with, run_shard,
    run_shard_lease, shard_config, shard_configs, shard_seed, ExecConfig, FindingSink, Parallelism,
};
pub use store::{FindingsStore, StoreSession};

use o4a_core::{CampaignConfig, CampaignResult, Fuzzer};

/// Runs a sharded campaign journaled through a [`FindingsStore`]: shards
/// already completed in the journal are loaded instead of re-run, findings
/// stream to disk as they are discovered, and the merged result is
/// identical to an uninterrupted [`run_campaign_sharded`] of the same
/// configuration.
///
/// # Errors
///
/// I/O errors opening or reading the journal, and journals whose header
/// does not match `config`/`exec.shards`.
pub fn run_campaign_resumable<F>(
    factory: F,
    config: &CampaignConfig,
    exec: &ExecConfig,
    store: &FindingsStore,
) -> std::io::Result<CampaignResult>
where
    F: Fn(u32) -> Box<dyn Fuzzer> + Sync,
{
    let (session, completed) = store.resume_or_create(config, exec.shards)?;
    Ok(shard::run_campaign_sharded_with(
        &factory,
        config,
        exec,
        Some(&session),
        completed,
    ))
}
